//! Offline shim for `proptest`: deterministic property testing with the
//! proptest API shape — `proptest!`, `Strategy` combinators,
//! `prop_oneof!`, regex-lite string strategies, `collection::vec`,
//! `option::of`, `any::<T>()`, and `prop_assert*` macros.
//!
//! Cases are generated from a per-test deterministic seed (derived from
//! the test's module path and name), so failures reproduce across runs.
//! Unlike real proptest there is no shrinking: a failure panics with the
//! generating inputs printed verbatim.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------- RNG ----------

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test identity and case number, so every case is
    /// reproducible without storing a seed file.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ (case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, n); n must be non-zero.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

// ---------- errors & config ----------

/// A failed property (assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------- Strategy core ----------

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }

    /// Build a recursive strategy: `f` receives the strategy for the
    /// previous depth level and returns the branching level. Depth is
    /// bounded by `depth`; `_desired_size`/`_expected_branch` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth.max(1) {
            let branch = f(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    l.generate(rng)
                } else {
                    branch.generate(rng)
                }
            }));
        }
        cur
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------- primitive strategies ----------

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix raw-bit values with the special values that matter for
        // round-trip properties (NaN, infinities, signed zero).
        match rng.below(8) {
            0 => {
                const SPECIAL: [f64; 7] =
                    [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, f64::MAX, f64::MIN_POSITIVE];
                SPECIAL[rng.below(SPECIAL.len() as u64) as usize]
            }
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

pub struct ArbitraryStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — canonical strategy for a primitive type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy { _marker: std::marker::PhantomData }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (frac as f32) * (self.end - self.start)
    }
}

// ---------- tuples ----------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------- regex-lite string strategies ----------

// A pattern item: a set of char ranges plus a repetition count range.
struct PatItem {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatItem> {
    let chars: Vec<char> = pat.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut ranges = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in pattern {pat:?}");
                i += 1; // skip ']'
            }
            '\\' => {
                i += 1;
                ranges.push((chars[i], chars[i]));
                i += 1;
            }
            c => {
                ranges.push((c, c));
                i += 1;
            }
        }
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {} quantifier") + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
                    } else {
                        let n: usize = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        items.push(PatItem { ranges, min, max });
    }
    items
}

fn sample_pattern(items: &[PatItem], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for item in items {
        let reps = rng.usize_in(item.min, item.max);
        let total: u64 = item.ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
        for _ in 0..reps {
            let mut k = rng.below(total);
            for &(lo, hi) in &item.ranges {
                let span = hi as u64 - lo as u64 + 1;
                if k < span {
                    out.push(char::from_u32(lo as u32 + k as u32).expect("invalid char range"));
                    break;
                }
                k -= span;
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        sample_pattern(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        sample_pattern(&parse_pattern(self), rng)
    }
}

// ---------- collections ----------

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.min, self.size.max);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Strategy producing `None` about a fifth of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(5) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------- macros ----------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!("{:#?}", ($(&$arg,)+));
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}\ninputs = {}",
                            stringify!($name), case, cfg.cases, err, inputs
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_respects_classes() {
        let mut rng = TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z][a-zA-Z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
            let t = Strategy::generate(&"[ -~]{0,24}", &mut rng);
            assert!(t.len() <= 24 && t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("same", 3);
        let mut b = TestRng::for_case("same", 3);
        let strat = crate::collection::vec(any::<i64>(), 0..20);
        assert_eq!(Strategy::generate(&strat, &mut a), Strategy::generate(&strat, &mut b));
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("arms", 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // fields only exist to give the strategy shape
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let leaf = any::<i64>().prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_case("tree", 1);
        for _ in 0..50 {
            let _ = Strategy::generate(&strat, &mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke(x in 0i32..100, v in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(v.len() < 10);
            prop_assert_eq!(x, x);
        }
    }
}
