//! Offline shim for the `bytes` crate: `Bytes`/`BytesMut` plus the
//! `Buf`/`BufMut` accessors this workspace uses (big-endian and
//! little-endian fixed-width put/get, slicing, freezing).
//!
//! Both buffer types are a `Vec<u8>` with a read cursor; `advance`
//! and the `get_*` methods move the cursor, `put_*` appends.

use std::ops::Deref;

macro_rules! buf_trait {
    ($($be:ident, $le:ident -> $ty:ty),+ $(,)?) => {
        /// Read-side accessors over a consumable byte buffer.
        pub trait Buf {
            fn remaining(&self) -> usize;
            fn chunk(&self) -> &[u8];
            fn advance(&mut self, cnt: usize);

            fn has_remaining(&self) -> bool {
                self.remaining() > 0
            }

            fn copy_to_slice(&mut self, dst: &mut [u8]) {
                assert!(self.remaining() >= dst.len(), "buffer underflow");
                dst.copy_from_slice(&self.chunk()[..dst.len()]);
                self.advance(dst.len());
            }

            fn get_u8(&mut self) -> u8 {
                let mut b = [0u8; 1];
                self.copy_to_slice(&mut b);
                b[0]
            }

            fn get_i8(&mut self) -> i8 {
                self.get_u8() as i8
            }

            $(
                fn $be(&mut self) -> $ty {
                    let mut b = [0u8; std::mem::size_of::<$ty>()];
                    self.copy_to_slice(&mut b);
                    <$ty>::from_be_bytes(b)
                }

                fn $le(&mut self) -> $ty {
                    let mut b = [0u8; std::mem::size_of::<$ty>()];
                    self.copy_to_slice(&mut b);
                    <$ty>::from_le_bytes(b)
                }
            )+
        }
    };
}

buf_trait! {
    get_i16, get_i16_le -> i16,
    get_u16, get_u16_le -> u16,
    get_i32, get_i32_le -> i32,
    get_u32, get_u32_le -> u32,
    get_i64, get_i64_le -> i64,
    get_u64, get_u64_le -> u64,
    get_f32, get_f32_le -> f32,
    get_f64, get_f64_le -> f64,
}

macro_rules! buf_mut_trait {
    ($($be:ident, $le:ident -> $ty:ty),+ $(,)?) => {
        /// Write-side accessors appending to a growable byte buffer.
        pub trait BufMut {
            fn put_slice(&mut self, src: &[u8]);

            fn put_u8(&mut self, v: u8) {
                self.put_slice(&[v]);
            }

            fn put_i8(&mut self, v: i8) {
                self.put_slice(&[v as u8]);
            }

            $(
                fn $be(&mut self, v: $ty) {
                    self.put_slice(&v.to_be_bytes());
                }

                fn $le(&mut self, v: $ty) {
                    self.put_slice(&v.to_le_bytes());
                }
            )+
        }
    };
}

buf_mut_trait! {
    put_i16, put_i16_le -> i16,
    put_u16, put_u16_le -> u16,
    put_i32, put_i32_le -> i32,
    put_u32, put_u32_le -> u32,
    put_i64, put_i64_le -> i64,
    put_u64, put_u64_le -> u64,
    put_f32, put_f32_le -> f32,
    put_f64, put_f64_le -> f64,
}

/// Growable byte buffer with a read cursor (shim for `bytes::BytesMut`).
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    off: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap), off: 0 }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.off
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.off = 0;
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Split off the first `at` readable bytes into their own buffer.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.off..self.off + at].to_vec();
        self.advance_cursor(at);
        BytesMut { buf: head, off: 0 }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf, off: self.off }
    }

    fn advance_cursor(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.off += cnt;
        // Reclaim space once the consumed prefix dominates the buffer.
        if self.off > 4096 && self.off * 2 > self.buf.len() {
            self.buf.drain(..self.off);
            self.off = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.off..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self[..])
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        self.advance_cursor(cnt);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer with a read cursor (shim for `bytes::Bytes`).
#[derive(Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
    off: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { buf: data.to_vec(), off: 0 }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.off
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off the first `at` readable bytes.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.off..self.off + at].to_vec();
        self.off += at;
        Bytes { buf: head, off: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.off..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes { buf, off: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.off += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_i8(-7);
        b.put_i16(-300);
        b.put_i16_le(-301);
        b.put_i32(1 << 20);
        b.put_i32_le(-(1 << 20));
        b.put_u32(0xdead_beef);
        b.put_i64_le(i64::MIN + 1);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i8(), -7);
        assert_eq!(r.get_i16(), -300);
        assert_eq!(r.get_i16_le(), -301);
        assert_eq!(r.get_i32(), 1 << 20);
        assert_eq!(r.get_i32_le(), -(1 << 20));
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_i64_le(), i64::MIN + 1);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert!(r.is_empty());
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        b.advance(6);
        assert_eq!(&b[..], b"world");
        let head = b.split_to(3);
        assert_eq!(&head[..], b"wor");
        assert_eq!(&b[..], b"ld");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 2);
    }

    #[test]
    fn copy_to_slice_reads_exact() {
        let mut r = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let mut out = [0u8; 4];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(r.remaining(), 1);
    }
}
