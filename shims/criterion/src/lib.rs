//! Offline shim for `criterion`: a plain wall-clock micro-bench harness
//! with criterion's API shape (groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!`/`criterion_main!`).
//!
//! Each benchmark is calibrated so one sample runs for at least ~2ms,
//! then `sample_size` samples are taken and min/median/max per-iteration
//! times are printed. No statistics, plots, or baselines beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle (shim for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.to_string(), f);
        group.finish();
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", name.into(), param) }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { full: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.label(&id.to_string());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&label);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.label(&id.to_string());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&label);
        self
    }

    pub fn finish(self) {}

    fn label(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new() }
    }

    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: find an iteration count whose batch takes >= ~2ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("increment", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            });
        });
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>());
        });
        group.finish();
        assert!(count > 0);
    }
}
