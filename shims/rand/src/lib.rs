//! Offline shim for `rand 0.8`: `StdRng` + `SeedableRng::seed_from_u64`
//! + `Rng::gen_range` over integer and float ranges.
//!
//! `StdRng` is a SplitMix64 generator — deterministic per seed (so
//! workload generation is reproducible run-to-run) but the streams are
//! not bit-identical to upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding API (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

/// Element types uniform ranges can produce. The single generic
/// `SampleRange` impl per range shape keeps type inference working for
/// unsuffixed literals (`gen_range(100..900)`), matching real rand.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<G: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

macro_rules! int_uniform {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_between<G: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $ty
                }
            }
        )+
    };
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<G: RngCore>(lo: Self, hi: Self, _inclusive: bool, rng: &mut G) -> Self {
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + frac * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<G: RngCore>(lo: Self, hi: Self, _inclusive: bool, rng: &mut G) -> Self {
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (frac as f32) * (hi - lo)
    }
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64) standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x1f12_3bb5_159a_55e5 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(100..900);
            assert!((100..900).contains(&v));
            let f = r.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let i = r.gen_range(1..=50i64);
            assert!((1..=50).contains(&i));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.gen_range(0..=3u8) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
