//! Quickstart: run Q queries against a PostgreSQL-compatible backend.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This is the paper's Figure 1 pipeline in miniature: a Q program is
//! parsed, algebrized into XTRA, transformed, serialized to SQL, executed
//! on the `pgdb` backend, and the results are pivoted back into Q values.

use hyperq::{loader, HyperQSession};
use qlang::value::{Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A backend database ("Greenplum" in the paper's deployments).
    let db = pgdb::Db::new();
    let mut session = HyperQSession::with_direct(&db);

    // Load a small trades table — the paper assumes data is loaded
    // independently (§1); the loader maps the Q schema (adding the
    // implicit ordcol the ordered-list semantics require).
    let trades = Table::new(
        vec!["Symbol".into(), "Price".into(), "Size".into()],
        vec![
            Value::Symbols(vec!["GOOG".into(), "IBM".into(), "GOOG".into(), "MSFT".into()]),
            Value::Floats(vec![100.0, 50.5, 101.25, 70.0]),
            Value::Longs(vec![100, 200, 150, 300]),
        ],
    )?;
    loader::load_table(&mut session, "trades", &trades)?;

    // Q queries run unchanged.
    println!("== select from trades ==");
    println!("{}", session.execute("select from trades")?);

    println!("== select Price from trades where Symbol=`GOOG ==");
    println!("{}", session.execute("select Price from trades where Symbol=`GOOG")?);

    println!("== select mx: max Price, n: count i by Symbol from trades ==");
    println!("{}", session.execute("select mx: max Price, n: count i by Symbol from trades")?);

    // Peek behind the curtain: the SQL Hyper-Q generated.
    let (_, translations) =
        session.execute_traced("select Price from trades where Symbol=`GOOG")?;
    println!("== generated SQL ==");
    for tr in &translations {
        for stmt in &tr.statements {
            println!("{}", stmt.sql);
        }
        println!(
            "(stages: parse {:?}, algebrize {:?}, optimize {:?}, serialize {:?})",
            tr.timings.parse, tr.timings.algebrize, tr.timings.optimize, tr.timings.serialize
        );
    }
    Ok(())
}
