//! Side-by-side validation: the paper's §5 correctness framework.
//!
//! ```sh
//! cargo run --example side_by_side
//! ```
//!
//! The same market data is loaded into the reference Q engine (the kdb+
//! stand-in) and into the SQL backend through Hyper-Q; every query in the
//! batch runs on both paths and results are diffed under Q equality.
//! "We needed a way to ensure the exact same behavior to the application
//! as before" — this is that tool.

use hyperq::side_by_side::SideBySide;
use hyperq_workload::taq::{generate_trades, TaqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = pgdb::Db::new();
    let mut framework = SideBySide::new(&db);
    framework.load(
        "trades",
        &generate_trades(&TaqConfig { rows: 400, symbols: 4, days: 2, seed: 7 }),
    )?;

    let workload = [
        "select from trades",
        "select Price, Size from trades where Symbol=`GOOG",
        "select Price from trades where Date=2016.06.26, Symbol in `GOOG`IBM",
        "select mx: max Price, mn: min Price, vwap: (sum Price*Size) % sum Size from trades",
        "select n: count i, avgPx: avg Price by Symbol from trades",
        "select s: sum Size by Date from trades",
        "update Notional: Price*Size from trades where Symbol=`IBM",
        "delete from trades where Size < 1000",
        "`Price xdesc trades",
        "SYMS: `GOOG`MSFT; select from trades where Symbol in SYMS",
        "f: {[s] dt: select Price from trades where Symbol=s; :select max Price from dt}; f[`GOOG]",
        "exec avg Price by Symbol from trades",
        "2#trades",
        "select from trades where Price within 40.0 80.0",
    ];

    let mut passed = 0;
    for q in &workload {
        let c = framework.check(q);
        if c.is_match() {
            passed += 1;
            println!("MATCH     {q}");
        } else {
            println!("MISMATCH  {q}\n  -> {c:?}");
        }
    }
    println!("\n{passed}/{} queries behave identically on kdb+-reference and Hyper-Q paths", workload.len());
    if passed != workload.len() {
        std::process::exit(1);
    }
    Ok(())
}
