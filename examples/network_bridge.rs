//! Full wire-level deployment: every protocol in the paper's Figure 1,
//! over real TCP sockets.
//!
//! ```sh
//! cargo run --example network_bridge
//! ```
//!
//! Topology:
//!
//! ```text
//!  Q app (QIPC client)  ──QIPC/TCP──▶  Hyper-Q endpoint
//!                                        │ translate Q → SQL
//!                                        ▼
//!                                      pgdb session (backend)
//! ```
//!
//! plus a separate demonstration of the Gateway speaking PG v3 to the
//! pgdb TCP server with MD5 authentication — the same start-up flow a
//! Greenplum deployment would use (§4.2).

use hyperq::backend::Backend;
use hyperq::endpoint::{EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::{loader, HyperQSession};
use hyperq_workload::taq::{generate_trades, TaqConfig};
use pgdb::server::{AuthMode, PgServer, ServerConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Backend database with data loaded. ---
    let db = pgdb::Db::new();
    let mut loader_session = HyperQSession::with_direct(&db);
    loader::load_table(
        &mut loader_session,
        "trades",
        &generate_trades(&TaqConfig { rows: 300, symbols: 3, days: 1, seed: 3 }),
    )?;

    // --- PG v3 TCP server (the "Greenplum"), with MD5 auth. ---
    let mut creds = HashMap::new();
    creds.insert("hyperq".to_string(), "s3cret".to_string());
    let pg_server = PgServer::start(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig { auth: AuthMode::Md5(creds), ..ServerConfig::default() },
    )?;
    println!("pgdb PG-v3 server listening on {}", pg_server.addr);

    // The Gateway authenticates over the wire (MD5 challenge/response).
    let mut gateway = PgWireBackend::connect(
        &pg_server.addr.to_string(),
        &Credentials {
            user: "hyperq".into(),
            password: "s3cret".into(),
            database: "hist".into(),
        },
    )?;
    println!("gateway connected: {}", gateway.describe());
    if let pgdb::QueryResult::Rows(rows) =
        gateway.execute_sql("SELECT count(*) AS n FROM \"trades\"")?
    {
        println!("gateway sanity check — trades rows: {}", rows.data[0][0]);
    }

    // --- Hyper-Q QIPC endpoint (the "kdb+ server" the app sees). ---
    let endpoint = QipcEndpoint::start(
        db.clone(),
        "127.0.0.1:0",
        EndpointConfig {
            authenticator: Arc::new(|user, pass| user == "trader" && pass == "pw"),
            ..EndpointConfig::default()
        },
    )?;
    println!("Hyper-Q QIPC endpoint listening on {}", endpoint.addr);

    // --- The unchanged Q application. ---
    let mut app = QipcClient::connect(&endpoint.addr.to_string(), "trader", "pw")?;
    println!("\nQ application connected over QIPC; running queries:");

    for q in [
        "select mx: max Price by Symbol from trades",
        "select vwap: (sum Price*Size) % sum Size from trades",
        "select n: count i from trades where Price > 50.0",
    ] {
        println!("\nq) {q}");
        println!("{}", app.query(q)?);
    }

    // Errors travel back as kdb+-style error frames.
    match app.query("select from not_a_table") {
        Err(e) => println!("\nerror round trip (verbose, per §5): {e}"),
        Ok(_) => unreachable!(),
    }

    endpoint.detach();
    pg_server.detach();
    Ok(())
}
