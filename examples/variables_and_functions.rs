//! Variables, functions and eager materialization — the paper's
//! Example 3 and §4.3, end to end.
//!
//! ```sh
//! cargo run --example variables_and_functions
//! ```
//!
//! Demonstrates the scope hierarchy of Figure 3 (locals shadow session
//! variables shadow server state), function unrolling (no UDFs created in
//! the backend — §5), and both materialization policies: *logical*
//! (variable definitions inlined from Hyper-Q's variable store) and
//! *physical* (`CREATE TEMPORARY TABLE HQ_TEMP_n AS ...`, exactly the
//! SQL shown in §4.3).

use algebrizer::MaterializationPolicy;
use hyperq::{loader, HyperQSession, SessionConfig};
use hyperq_workload::taq::{generate_trades, TaqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trades = generate_trades(&TaqConfig { rows: 200, symbols: 4, days: 1, seed: 1 });

    // ---------- Logical materialization (default) ----------
    let db = pgdb::Db::new();
    let mut session = HyperQSession::with_direct(&db);
    loader::load_table(&mut session, "trades", &trades)?;

    println!("== paper Example 3 (logical materialization) ==");
    session.execute(
        "f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}",
    )?;
    let (v, trs) = session.execute_traced("f[`GOOG]")?;
    println!("result:\n{v}");
    println!("generated SQL (function unrolled, dt inlined):");
    for tr in &trs {
        for s in &tr.statements {
            println!("  {}", s.sql);
        }
    }

    // Session variables and shadowing.
    println!("\n== scope hierarchy ==");
    session.execute("lim: 60.0")?;
    let n1 = session.execute("exec count i from trades where Price > lim")?;
    println!("rows with Price > lim(60.0): {n1}");
    session.execute("lim: 80.0")?;
    let n2 = session.execute("exec count i from trades where Price > lim")?;
    println!("rows with Price > lim(80.0): {n2}");
    // A function parameter shadows the session variable of the same name.
    session.execute("g: {[lim] exec count i from trades where Price > lim}")?;
    let n3 = session.execute("g[100.0]")?;
    println!("g[100.0] (param shadows session lim): {n3}");

    // ---------- Physical materialization ----------
    println!("\n== paper Example 3 (physical materialization) ==");
    let db2 = pgdb::Db::new();
    let cfg = SessionConfig { policy: MaterializationPolicy::Physical, ..Default::default() };
    let mut phys = HyperQSession::with_direct_config(&db2, cfg);
    loader::load_table(&mut phys, "trades", &trades)?;
    phys.execute(
        "f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}",
    )?;
    let (v, trs) = phys.execute_traced("f[`GOOG]")?;
    println!("result:\n{v}");
    println!("generated SQL (note the CREATE TEMPORARY TABLE, as in the paper):");
    for tr in &trs {
        for s in &tr.statements {
            println!("  {}", s.sql);
        }
    }
    Ok(())
}
