//! Market analytics: the paper's Example 1 — "a standard point-in-time
//! query to get the prevailing quote as of each trade" — over TAQ-style
//! market data, virtualized onto the SQL backend.
//!
//! ```sh
//! cargo run --example market_analytics
//! ```
//!
//! The as-of join is the query "most commonly used by financial market
//! analysts" (paper §2.2); Hyper-Q binds it to a left outer join over a
//! window function on the quotes input (Figure 2).

use hyperq::{loader, HyperQSession};
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = pgdb::Db::new();
    let mut session = HyperQSession::with_direct(&db);

    let cfg = TaqConfig { rows: 500, symbols: 4, days: 1, seed: 2016 };
    loader::load_table(&mut session, "trades", &generate_trades(&cfg))?;
    loader::load_table(
        &mut session,
        "quotes",
        &generate_quotes(&TaqConfig { rows: 2000, ..cfg }),
    )?;

    // Paper Example 1, verbatim shape.
    let q = concat!(
        "aj[`Symbol`Time; ",
        "select Symbol, Time, Price from trades where Date=2016.06.26, Symbol in `GOOG`IBM; ",
        "select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]"
    );
    println!("Q: {q}\n");

    let (result, translations) = session.execute_traced(q)?;
    println!("== generated SQL ==");
    for tr in &translations {
        for stmt in &tr.statements {
            println!("{}\n", stmt.sql);
        }
    }

    match &result {
        qlang::Value::Table(t) => {
            println!("== prevailing quote as of each trade (first 10 rows) ==");
            println!("{}", t.names.join("  "));
            for i in 0..t.rows().min(10) {
                let row: Vec<String> = t
                    .columns
                    .iter()
                    .map(|c| c.index(i).map(|v| v.to_string()).unwrap_or_default())
                    .collect();
                println!("{}", row.join("  "));
            }
            println!("({} rows total)", t.rows());
        }
        other => println!("{other}"),
    }

    // Slippage analysis: trade price vs prevailing mid-quote.
    let slippage = concat!(
        "t: aj[`Symbol`Time; ",
        "select Symbol, Time, Price from trades where Date=2016.06.26; ",
        "select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]; ",
        "select avgSlip: avg Price - (Bid + Ask) % 2.0 by Symbol from t"
    );
    println!("\n== average slippage vs prevailing mid, by symbol ==");
    println!("{}", session.execute(slippage)?);
    Ok(())
}
