//! Q temporal types.
//!
//! Q anchors all temporal types at the millennium: dates count days since
//! 2000.01.01, timestamps count nanoseconds since 2000.01.01D00:00:00, and
//! times count milliseconds since midnight. These differ from both Unix
//! epochs and PostgreSQL's 2000-01-01 *microsecond* timestamps, so the
//! Cross Compiler needs explicit conversions in both directions.

/// Days between 1970-01-01 (Unix epoch) and 2000-01-01 (Q epoch).
pub const UNIX_TO_Q_EPOCH_DAYS: i32 = 10_957;

/// Nanoseconds per day.
pub const NANOS_PER_DAY: i64 = 86_400_000_000_000;

/// Milliseconds per day.
pub const MILLIS_PER_DAY: i32 = 86_400_000;

/// Is `year` a Gregorian leap year?
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn days_in_month(year: i32, month: u32) -> i32 {
    if month == 2 && is_leap_year(year) { 29 } else { DAYS_IN_MONTH[(month - 1) as usize] }
}

/// Number of days from 2000-01-01 to the first day of `year`.
fn days_to_year(year: i32) -> i32 {
    // Count days year by year; workloads span a few decades, so this is
    // never hot enough to need the civil-days closed form.
    let mut days = 0;
    if year >= 2000 {
        for y in 2000..year {
            days += if is_leap_year(y) { 366 } else { 365 };
        }
    } else {
        for y in year..2000 {
            days -= if is_leap_year(y) { 366 } else { 365 };
        }
    }
    days
}

/// Convert a calendar date to a Q date (days since 2000-01-01).
///
/// Returns `None` for out-of-range month/day components.
pub fn ymd_to_days(year: i32, month: u32, day: u32) -> Option<i32> {
    if !(1..=12).contains(&month) || day < 1 || day as i32 > days_in_month(year, month) {
        return None;
    }
    let mut days = days_to_year(year);
    for m in 1..month {
        days += days_in_month(year, m);
    }
    Some(days + day as i32 - 1)
}

/// Convert a Q date (days since 2000-01-01) back to `(year, month, day)`.
pub fn days_to_ymd(mut days: i32) -> (i32, u32, u32) {
    let mut year = 2000;
    loop {
        let len = if is_leap_year(year) { 366 } else { 365 };
        if days >= 0 && days < len {
            break;
        }
        if days < 0 {
            year -= 1;
            days += if is_leap_year(year) { 366 } else { 365 };
        } else {
            days -= len;
            year += 1;
        }
    }
    let mut month = 1u32;
    while days >= days_in_month(year, month) {
        days -= days_in_month(year, month);
        month += 1;
    }
    (year, month, days as u32 + 1)
}

/// Format a Q date as kdb+ prints it: `2016.06.26`.
pub fn format_date(days: i32) -> String {
    if days == i32::MIN {
        return "0Nd".to_string();
    }
    let (y, m, d) = days_to_ymd(days);
    format!("{y:04}.{m:02}.{d:02}")
}

/// Format a Q time (ms since midnight) as `09:30:00.000`.
pub fn format_time(millis: i32) -> String {
    if millis == i32::MIN {
        return "0Nt".to_string();
    }
    let ms = millis.rem_euclid(1000);
    let total_secs = millis.div_euclid(1000);
    let s = total_secs % 60;
    let m = (total_secs / 60) % 60;
    let h = total_secs / 3600;
    format!("{h:02}:{m:02}:{s:02}.{ms:03}")
}

/// Format a Q timestamp (ns since 2000-01-01) as
/// `2016.06.26D09:30:00.000000000`.
pub fn format_timestamp(nanos: i64) -> String {
    if nanos == i64::MIN {
        return "0Np".to_string();
    }
    let days = nanos.div_euclid(NANOS_PER_DAY);
    let intraday = nanos.rem_euclid(NANOS_PER_DAY);
    let ns = intraday % 1_000_000_000;
    let total_secs = intraday / 1_000_000_000;
    let s = total_secs % 60;
    let m = (total_secs / 60) % 60;
    let h = total_secs / 3600;
    let (y, mo, d) = days_to_ymd(days as i32);
    format!("{y:04}.{mo:02}.{d:02}D{h:02}:{m:02}:{s:02}.{ns:09}")
}

/// Parse `HH:MM:SS[.mmm]` into milliseconds since midnight.
pub fn parse_time(text: &str) -> Option<i32> {
    let (hms, frac) = match text.split_once('.') {
        Some((a, b)) => (a, Some(b)),
        None => (text, None),
    };
    let mut parts = hms.split(':');
    let h: i32 = parts.next()?.parse().ok()?;
    let m: i32 = parts.next()?.parse().ok()?;
    let s: i32 = match parts.next() {
        Some(p) => p.parse().ok()?,
        None => 0,
    };
    if parts.next().is_some() || !(0..60).contains(&m) || !(0..60).contains(&s) {
        return None;
    }
    let ms: i32 = match frac {
        Some(f) => {
            // Fractional seconds: right-pad/truncate to milliseconds.
            let f3: String = format!("{f:0<3}").chars().take(3).collect();
            f3.parse().ok()?
        }
        None => 0,
    };
    Some(h * 3_600_000 + m * 60_000 + s * 1000 + ms)
}

/// Parse `YYYY.MM.DD` into days since 2000-01-01.
pub fn parse_date(text: &str) -> Option<i32> {
    let mut parts = text.split('.');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    ymd_to_days(y, m, d)
}

/// Parse `YYYY.MM.DDDHH:MM:SS[.frac]` into nanoseconds since 2000-01-01.
pub fn parse_timestamp(text: &str) -> Option<i64> {
    let (date_part, time_part) = text.split_once('D')?;
    let days = parse_date(date_part)? as i64;
    let (hms, frac) = match time_part.split_once('.') {
        Some((a, b)) => (a, Some(b)),
        None => (time_part, None),
    };
    let mut parts = hms.split(':');
    let h: i64 = parts.next()?.parse().ok()?;
    let m: i64 = match parts.next() {
        Some(p) => p.parse().ok()?,
        None => 0,
    };
    let s: i64 = match parts.next() {
        Some(p) => p.parse().ok()?,
        None => 0,
    };
    let ns: i64 = match frac {
        Some(f) => {
            let f9: String = format!("{f:0<9}").chars().take(9).collect();
            f9.parse().ok()?
        }
        None => 0,
    };
    Some(days * NANOS_PER_DAY + h * 3_600_000_000_000 + m * 60_000_000_000 + s * 1_000_000_000 + ns)
}

/// Convert a Q date to a Q timestamp at midnight.
pub fn date_to_timestamp(days: i32) -> i64 {
    if days == i32::MIN { i64::MIN } else { days as i64 * NANOS_PER_DAY }
}

/// Convert a Q timestamp to the Q date containing it.
pub fn timestamp_to_date(nanos: i64) -> i32 {
    if nanos == i64::MIN { i32::MIN } else { nanos.div_euclid(NANOS_PER_DAY) as i32 }
}

/// Convert a Q timestamp to the Q time-of-day within it.
pub fn timestamp_to_time(nanos: i64) -> i32 {
    if nanos == i64::MIN { i32::MIN } else { (nanos.rem_euclid(NANOS_PER_DAY) / 1_000_000) as i32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_epoch_is_day_zero() {
        assert_eq!(ymd_to_days(2000, 1, 1), Some(0));
        assert_eq!(days_to_ymd(0), (2000, 1, 1));
    }

    #[test]
    fn known_dates_round_trip() {
        // 2016.06.26: SIGMOD'16 start date, used throughout the paper.
        let d = ymd_to_days(2016, 6, 26).unwrap();
        assert_eq!(days_to_ymd(d), (2016, 6, 26));
        assert_eq!(format_date(d), "2016.06.26");
        assert_eq!(parse_date("2016.06.26"), Some(d));
    }

    #[test]
    fn dates_before_epoch() {
        let d = ymd_to_days(1999, 12, 31).unwrap();
        assert_eq!(d, -1);
        assert_eq!(days_to_ymd(-1), (1999, 12, 31));
        assert_eq!(days_to_ymd(-366), (1998, 12, 31));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2015));
        assert_eq!(ymd_to_days(2000, 2, 29), Some(59));
        assert_eq!(ymd_to_days(2001, 2, 29), None);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert_eq!(ymd_to_days(2016, 13, 1), None);
        assert_eq!(ymd_to_days(2016, 0, 1), None);
        assert_eq!(ymd_to_days(2016, 4, 31), None);
        assert_eq!(parse_date("2016.06"), None);
        assert_eq!(parse_date("2016.06.26.01"), None);
    }

    #[test]
    fn times_parse_and_format() {
        assert_eq!(parse_time("09:30:00.000"), Some(9 * 3_600_000 + 30 * 60_000));
        assert_eq!(parse_time("00:00:00"), Some(0));
        assert_eq!(parse_time("23:59:59.999"), Some(MILLIS_PER_DAY - 1));
        assert_eq!(format_time(parse_time("09:30:01.500").unwrap()), "09:30:01.500");
        // Minute-resolution literal.
        assert_eq!(parse_time("09:30"), Some(9 * 3_600_000 + 30 * 60_000));
    }

    #[test]
    fn invalid_times_rejected() {
        assert_eq!(parse_time("09:60:00"), None);
        assert_eq!(parse_time("09:30:61"), None);
        assert_eq!(parse_time("junk"), None);
    }

    #[test]
    fn timestamps_round_trip() {
        let ts = parse_timestamp("2016.06.26D09:30:00.123456789").unwrap();
        assert_eq!(format_timestamp(ts), "2016.06.26D09:30:00.123456789");
        assert_eq!(timestamp_to_date(ts), parse_date("2016.06.26").unwrap());
        assert_eq!(timestamp_to_time(ts), parse_time("09:30:00.123").unwrap());
    }

    #[test]
    fn timestamp_date_conversions() {
        let d = parse_date("2016.06.26").unwrap();
        assert_eq!(timestamp_to_date(date_to_timestamp(d)), d);
        assert_eq!(timestamp_to_time(date_to_timestamp(d)), 0);
    }

    #[test]
    fn null_values_format_as_nulls() {
        assert_eq!(format_date(i32::MIN), "0Nd");
        assert_eq!(format_time(i32::MIN), "0Nt");
        assert_eq!(format_timestamp(i64::MIN), "0Np");
    }

    #[test]
    fn fractional_second_padding() {
        // ".5" means 500ms, not 5ms.
        assert_eq!(parse_time("00:00:00.5"), Some(500));
        let ts = parse_timestamp("2000.01.01D00:00:00.5").unwrap();
        assert_eq!(ts, 500_000_000);
    }
}
