//! Error types shared across the Q front end.

use std::fmt;

/// An error raised while lexing, parsing or evaluating Q.
///
/// kdb+ error messages are famously terse (often a single quoted token);
/// Hyper-Q deliberately produces more verbose diagnostics — the paper's §5
/// case study calls this out as an area where the virtualization layer
/// *improves* on the emulated system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QError {
    /// Error category, mirroring kdb+'s one-word error classes
    /// (`type`, `rank`, `length`, `domain`, ...).
    pub kind: QErrorKind,
    /// Human-readable explanation of what went wrong.
    pub message: String,
    /// Byte offset into the source text, when known.
    pub offset: Option<usize>,
}

/// Category of a [`QError`], mirroring kdb+'s error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QErrorKind {
    /// Tokenization failure (unterminated string, bad literal, ...).
    Lex,
    /// Grammar violation.
    Parse,
    /// Operation applied to a value of the wrong type (`'type`).
    Type,
    /// Function applied with the wrong number of arguments (`'rank`).
    Rank,
    /// Vector operation over lists of incompatible lengths (`'length`).
    Length,
    /// Value outside an operation's domain (`'domain`).
    Domain,
    /// Reference to an undefined variable (`'value`).
    Value,
    /// Anything else.
    Other,
}

impl QError {
    /// Create an error of the given kind with a formatted message.
    pub fn new(kind: QErrorKind, message: impl Into<String>) -> Self {
        QError { kind, message: message.into(), offset: None }
    }

    /// Attach a source offset for diagnostics.
    #[must_use]
    pub fn at(mut self, offset: usize) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Convenience constructor for `'type` errors.
    pub fn type_err(message: impl Into<String>) -> Self {
        Self::new(QErrorKind::Type, message)
    }

    /// Convenience constructor for `'rank` errors.
    pub fn rank(message: impl Into<String>) -> Self {
        Self::new(QErrorKind::Rank, message)
    }

    /// Convenience constructor for `'length` errors.
    pub fn length(message: impl Into<String>) -> Self {
        Self::new(QErrorKind::Length, message)
    }

    /// Convenience constructor for `'domain` errors.
    pub fn domain(message: impl Into<String>) -> Self {
        Self::new(QErrorKind::Domain, message)
    }

    /// Convenience constructor for `'value` (undefined name) errors.
    pub fn undefined(name: &str) -> Self {
        Self::new(QErrorKind::Value, format!("undefined variable: {name}"))
    }

    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(QErrorKind::Parse, message)
    }
}

impl fmt::Display for QError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = match self.kind {
            QErrorKind::Lex => "lex",
            QErrorKind::Parse => "parse",
            QErrorKind::Type => "type",
            QErrorKind::Rank => "rank",
            QErrorKind::Length => "length",
            QErrorKind::Domain => "domain",
            QErrorKind::Value => "value",
            QErrorKind::Other => "error",
        };
        match self.offset {
            Some(off) => write!(f, "'{class}: {} (at byte {off})", self.message),
            None => write!(f, "'{class}: {}", self.message),
        }
    }
}

impl std::error::Error for QError {}

/// Result alias used throughout the Q front end.
pub type QResult<T> = Result<T, QError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_class_and_message() {
        let e = QError::type_err("cannot add symbol to int");
        assert_eq!(e.to_string(), "'type: cannot add symbol to int");
    }

    #[test]
    fn display_includes_offset_when_present() {
        let e = QError::parse("unexpected ]").at(17);
        assert!(e.to_string().contains("byte 17"));
    }

    #[test]
    fn kind_is_preserved() {
        assert_eq!(QError::rank("f").kind, QErrorKind::Rank);
        assert_eq!(QError::length("f").kind, QErrorKind::Length);
        assert_eq!(QError::domain("f").kind, QErrorKind::Domain);
        assert_eq!(QError::undefined("x").kind, QErrorKind::Value);
    }
}
