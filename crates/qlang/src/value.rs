//! The Q data model.
//!
//! Q is a list-processing language: besides scalar atoms it has typed
//! vectors, dictionaries (ordered key→value maps), tables (flipped
//! dictionaries of equal-length columns) and keyed tables. Three properties
//! distinguish it from the relational model and drive the design of the
//! whole translation stack (paper §2.2):
//!
//! 1. **Ordering**: all lists are ordered; every table has an implicit row
//!    order. SQL's bag semantics must be augmented with explicit order
//!    columns to preserve this.
//! 2. **Typed nulls with two-valued logic**: each scalar type has its own
//!    null (`0N`, `0n`, `` ` ``, `0Nd`, ...), and two nulls compare *equal*
//!    — unlike SQL's three-valued `NULL`.
//! 3. **Column orientation**: homogeneous lists are stored unboxed; tables
//!    are collections of column vectors, not rows.

use crate::ast::LambdaDef;
use crate::error::{QError, QResult};
use crate::temporal;
use std::fmt;

/// A Q scalar atom.
///
/// Integral nulls are the minimum value of the type (kdb+ convention);
/// float null is NaN; the symbol null is the empty symbol; the char null is
/// a space.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `1b` / `0b`. Booleans have no null in Q.
    Bool(bool),
    /// `0x00`..`0xff`.
    Byte(u8),
    /// 16-bit integer, suffix `h`. Null is `0Nh` = `i16::MIN`.
    Short(i16),
    /// 32-bit integer, suffix `i`. Null is `0Ni` = `i32::MIN`.
    Int(i32),
    /// 64-bit integer, suffix `j` (the default integer type since kdb+ 3.0).
    /// Null is `0N` = `i64::MIN`.
    Long(i64),
    /// 32-bit float, suffix `e`. Null is NaN.
    Real(f32),
    /// 64-bit float, suffix `f` or a decimal point. Null is `0n` = NaN.
    Float(f64),
    /// A single character.
    Char(char),
    /// An interned name, written `` `name``. Null is the empty symbol `` ` ``.
    Symbol(String),
    /// Nanoseconds since 2000.01.01D00:00:00. Null is `0Np` = `i64::MIN`.
    Timestamp(i64),
    /// Days since 2000.01.01. Null is `0Nd` = `i32::MIN`.
    Date(i32),
    /// Milliseconds since midnight. Null is `0Nt` = `i32::MIN`.
    Time(i32),
}

impl Atom {
    /// kdb+ type code of this atom (negative, as kdb+ reports for atoms).
    pub fn type_code(&self) -> i8 {
        match self {
            Atom::Bool(_) => -1,
            Atom::Byte(_) => -4,
            Atom::Short(_) => -5,
            Atom::Int(_) => -6,
            Atom::Long(_) => -7,
            Atom::Real(_) => -8,
            Atom::Float(_) => -9,
            Atom::Char(_) => -10,
            Atom::Symbol(_) => -11,
            Atom::Timestamp(_) => -12,
            Atom::Date(_) => -14,
            Atom::Time(_) => -19,
        }
    }

    /// Is this atom the typed null of its type?
    ///
    /// Q has no boolean null; bytes likewise have none.
    pub fn is_null(&self) -> bool {
        match self {
            Atom::Bool(_) | Atom::Byte(_) | Atom::Char(_) => false,
            Atom::Short(v) => *v == i16::MIN,
            Atom::Int(v) => *v == i32::MIN,
            Atom::Long(v) => *v == i64::MIN,
            Atom::Real(v) => v.is_nan(),
            Atom::Float(v) => v.is_nan(),
            Atom::Symbol(s) => s.is_empty(),
            Atom::Timestamp(v) => *v == i64::MIN,
            Atom::Date(v) => *v == i32::MIN,
            Atom::Time(v) => *v == i32::MIN,
        }
    }

    /// Q equality: **two-valued**. Nulls of the same type compare equal,
    /// and NaN = NaN (unlike IEEE and unlike SQL).
    pub fn q_eq(&self, other: &Atom) -> bool {
        use Atom::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a == b,
            (Byte(a), Byte(b)) => a == b,
            (Char(a), Char(b)) => a == b,
            (Symbol(a), Symbol(b)) => a == b,
            (Real(a), Real(b)) => (a.is_nan() && b.is_nan()) || a == b,
            (Float(a), Float(b)) => (a.is_nan() && b.is_nan()) || a == b,
            // Numeric cross-type comparisons promote to the wider type.
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => (a.is_nan() && b.is_nan()) || a == b,
                _ => false,
            },
        }
    }

    /// Numeric view of this atom, if it has one. Nulls map to `None`
    /// except float NaN which maps to NaN (callers that care check
    /// [`Atom::is_null`] first).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Atom::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Atom::Byte(v) => Some(*v as f64),
            Atom::Short(v) => Some(*v as f64),
            Atom::Int(v) => Some(*v as f64),
            Atom::Long(v) => Some(*v as f64),
            Atom::Real(v) => Some(*v as f64),
            Atom::Float(v) => Some(*v),
            Atom::Timestamp(v) => Some(*v as f64),
            Atom::Date(v) => Some(*v as f64),
            Atom::Time(v) => Some(*v as f64),
            Atom::Char(_) | Atom::Symbol(_) => None,
        }
    }

    /// Integral view of this atom, if it has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Atom::Bool(b) => Some(*b as i64),
            Atom::Byte(v) => Some(*v as i64),
            Atom::Short(v) => Some(*v as i64),
            Atom::Int(v) => Some(*v as i64),
            Atom::Long(v) => Some(*v),
            Atom::Timestamp(v) => Some(*v),
            Atom::Date(v) => Some(*v as i64),
            Atom::Time(v) => Some(*v as i64),
            Atom::Real(_) | Atom::Float(_) | Atom::Char(_) | Atom::Symbol(_) => None,
        }
    }

    /// Total order used by sorting primitives (`asc`, `xasc`, as-of join).
    /// Nulls sort first, as in kdb+.
    pub fn q_cmp(&self, other: &Atom) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        match (self, other) {
            (Atom::Symbol(a), Atom::Symbol(b)) => a.cmp(b),
            (Atom::Char(a), Atom::Char(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                _ => Ordering::Equal,
            },
        }
    }
}

/// A Q dictionary: an *ordered* mapping from a key list to a value list of
/// the same length. Unlike hash maps, lookup is positional (first match)
/// and iteration order is insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Dict {
    /// Key list.
    pub keys: Value,
    /// Value list, same length as `keys`.
    pub values: Value,
}

/// A Q table: an ordered collection of named, equal-length column vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Column names, in declaration order.
    pub names: Vec<String>,
    /// Column vectors, parallel to `names`; each is a Q list value.
    pub columns: Vec<Value>,
}

/// A keyed table: key columns plus value columns, supporting lookup joins.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedTable {
    /// The key columns.
    pub key: Table,
    /// The value columns; same row count as `key`.
    pub value: Table,
}

/// A Q value: an atom, a typed vector, a general (mixed) list, a
/// dictionary, a table, a keyed table, a function, or the generic null.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// A scalar.
    Atom(Atom),
    /// Boolean vector `101b`.
    Bools(Vec<bool>),
    /// Byte vector `0x0102`.
    Bytes(Vec<u8>),
    /// Short vector `1 2 3h`.
    Shorts(Vec<i16>),
    /// Int vector `1 2 3i`.
    Ints(Vec<i32>),
    /// Long vector `1 2 3`.
    Longs(Vec<i64>),
    /// Real vector `1 2 3e`.
    Reals(Vec<f32>),
    /// Float vector `1.0 2.5`.
    Floats(Vec<f64>),
    /// Character vector (Q string) `"abc"`.
    Chars(String),
    /// Symbol vector `` `a`b`c``.
    Symbols(Vec<String>),
    /// Timestamp vector.
    Timestamps(Vec<i64>),
    /// Date vector.
    Dates(Vec<i32>),
    /// Time vector.
    Times(Vec<i32>),
    /// General (mixed-type) list `(1;`a;"x")`.
    Mixed(Vec<Value>),
    /// Dictionary.
    Dict(Box<Dict>),
    /// Table.
    Table(Box<Table>),
    /// Keyed table.
    KeyedTable(Box<KeyedTable>),
    /// Function value (lambda), carrying its definition.
    Lambda(Box<LambdaDef>),
    /// The generic null `::`.
    #[default]
    Nil,
}

impl Table {
    /// Create a table, validating that all columns have equal length.
    pub fn new(names: Vec<String>, columns: Vec<Value>) -> QResult<Self> {
        if names.len() != columns.len() {
            return Err(QError::length("table column name/vector count mismatch"));
        }
        let mut len = None;
        for (n, c) in names.iter().zip(&columns) {
            let cl = c.len().ok_or_else(|| {
                QError::type_err(format!("table column {n} must be a list, got {}", c.type_name()))
            })?;
            match len {
                None => len = Some(cl),
                Some(l) if l != cl => {
                    return Err(QError::length(format!(
                        "table column {n} has length {cl}, expected {l}"
                    )))
                }
                _ => {}
            }
        }
        Ok(Table { names, columns })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().and_then(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Option<&Value> {
        self.names.iter().position(|n| n == name).map(|i| &self.columns[i])
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Extract row `i` as a vector of atoms-or-values, one per column.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.index(i).unwrap_or(Value::Nil)).collect()
    }

    /// Build a new table containing only the rows at `indices`, in order.
    pub fn take_rows(&self, indices: &[usize]) -> Table {
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take_indices(indices)).collect(),
        }
    }

    /// Append a column. Errors if the length disagrees with existing rows.
    pub fn push_column(&mut self, name: String, col: Value) -> QResult<()> {
        let cl = col
            .len()
            .ok_or_else(|| QError::type_err("table column must be a list"))?;
        if !self.columns.is_empty() && cl != self.rows() {
            return Err(QError::length(format!(
                "column {name} has length {cl}, table has {} rows",
                self.rows()
            )));
        }
        self.names.push(name);
        self.columns.push(col);
        Ok(())
    }
}

impl Dict {
    /// Create a dictionary, validating equal key/value lengths.
    pub fn new(keys: Value, values: Value) -> QResult<Self> {
        match (keys.len(), values.len()) {
            (Some(a), Some(b)) if a == b => Ok(Dict { keys, values }),
            (Some(_), Some(_)) => Err(QError::length("dict key/value length mismatch")),
            _ => Err(QError::type_err("dict keys and values must be lists")),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len().unwrap_or(0)
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Positional lookup: value associated with the first key equal
    /// (under Q equality) to `key`, or the value type's null.
    pub fn get(&self, key: &Value) -> Value {
        let n = self.len();
        for i in 0..n {
            if let Some(k) = self.keys.index(i) {
                if k.q_eq(key) {
                    return self.values.index(i).unwrap_or(Value::Nil);
                }
            }
        }
        self.values.null_element()
    }
}

impl Value {
    /// kdb+ type code: negative for atoms, positive for vectors, 0 for a
    /// general list, 98 for tables, 99 for dictionaries, 100 for lambdas.
    pub fn type_code(&self) -> i8 {
        match self {
            Value::Atom(a) => a.type_code(),
            Value::Bools(_) => 1,
            Value::Bytes(_) => 4,
            Value::Shorts(_) => 5,
            Value::Ints(_) => 6,
            Value::Longs(_) => 7,
            Value::Reals(_) => 8,
            Value::Floats(_) => 9,
            Value::Chars(_) => 10,
            Value::Symbols(_) => 11,
            Value::Timestamps(_) => 12,
            Value::Dates(_) => 14,
            Value::Times(_) => 19,
            Value::Mixed(_) => 0,
            Value::Table(_) => 98,
            Value::Dict(_) | Value::KeyedTable(_) => 99,
            Value::Lambda(_) => 100,
            Value::Nil => 101,
        }
    }

    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Atom(Atom::Bool(_)) => "boolean",
            Value::Atom(Atom::Byte(_)) => "byte",
            Value::Atom(Atom::Short(_)) => "short",
            Value::Atom(Atom::Int(_)) => "int",
            Value::Atom(Atom::Long(_)) => "long",
            Value::Atom(Atom::Real(_)) => "real",
            Value::Atom(Atom::Float(_)) => "float",
            Value::Atom(Atom::Char(_)) => "char",
            Value::Atom(Atom::Symbol(_)) => "symbol",
            Value::Atom(Atom::Timestamp(_)) => "timestamp",
            Value::Atom(Atom::Date(_)) => "date",
            Value::Atom(Atom::Time(_)) => "time",
            Value::Bools(_) => "boolean list",
            Value::Bytes(_) => "byte list",
            Value::Shorts(_) => "short list",
            Value::Ints(_) => "int list",
            Value::Longs(_) => "long list",
            Value::Reals(_) => "real list",
            Value::Floats(_) => "float list",
            Value::Chars(_) => "string",
            Value::Symbols(_) => "symbol list",
            Value::Timestamps(_) => "timestamp list",
            Value::Dates(_) => "date list",
            Value::Times(_) => "time list",
            Value::Mixed(_) => "list",
            Value::Dict(_) => "dict",
            Value::Table(_) => "table",
            Value::KeyedTable(_) => "keyed table",
            Value::Lambda(_) => "lambda",
            Value::Nil => "nil",
        }
    }

    /// Is this value an atom (scalar)?
    pub fn is_atom(&self) -> bool {
        matches!(self, Value::Atom(_))
    }

    /// List length; `None` for atoms and other non-list values.
    /// Tables report their row count, dictionaries their entry count.
    /// (No `is_empty` counterpart: `None` vs `Some(0)` are distinct.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> Option<usize> {
        match self {
            Value::Atom(_) | Value::Lambda(_) | Value::Nil => None,
            Value::Bools(v) => Some(v.len()),
            Value::Bytes(v) => Some(v.len()),
            Value::Shorts(v) => Some(v.len()),
            Value::Ints(v) => Some(v.len()),
            Value::Longs(v) => Some(v.len()),
            Value::Reals(v) => Some(v.len()),
            Value::Floats(v) => Some(v.len()),
            Value::Chars(s) => Some(s.chars().count()),
            Value::Symbols(v) => Some(v.len()),
            Value::Timestamps(v) => Some(v.len()),
            Value::Dates(v) => Some(v.len()),
            Value::Times(v) => Some(v.len()),
            Value::Mixed(v) => Some(v.len()),
            Value::Dict(d) => Some(d.len()),
            Value::Table(t) => Some(t.rows()),
            Value::KeyedTable(k) => Some(k.key.rows()),
        }
    }

    /// `count` semantics: atoms count as 1.
    pub fn count(&self) -> usize {
        self.len().unwrap_or(1)
    }

    /// Element at position `i` for list-like values; `None` out of range
    /// or for atoms. Tables yield row dictionaries.
    pub fn index(&self, i: usize) -> Option<Value> {
        match self {
            Value::Bools(v) => v.get(i).map(|&b| Value::Atom(Atom::Bool(b))),
            Value::Bytes(v) => v.get(i).map(|&b| Value::Atom(Atom::Byte(b))),
            Value::Shorts(v) => v.get(i).map(|&x| Value::Atom(Atom::Short(x))),
            Value::Ints(v) => v.get(i).map(|&x| Value::Atom(Atom::Int(x))),
            Value::Longs(v) => v.get(i).map(|&x| Value::Atom(Atom::Long(x))),
            Value::Reals(v) => v.get(i).map(|&x| Value::Atom(Atom::Real(x))),
            Value::Floats(v) => v.get(i).map(|&x| Value::Atom(Atom::Float(x))),
            Value::Chars(s) => s.chars().nth(i).map(|c| Value::Atom(Atom::Char(c))),
            Value::Symbols(v) => v.get(i).map(|s| Value::Atom(Atom::Symbol(s.clone()))),
            Value::Timestamps(v) => v.get(i).map(|&x| Value::Atom(Atom::Timestamp(x))),
            Value::Dates(v) => v.get(i).map(|&x| Value::Atom(Atom::Date(x))),
            Value::Times(v) => v.get(i).map(|&x| Value::Atom(Atom::Time(x))),
            Value::Mixed(v) => v.get(i).cloned(),
            Value::Table(t) => {
                if i < t.rows() {
                    let d = Dict {
                        keys: Value::Symbols(t.names.clone()),
                        values: Value::Mixed(t.row(i)),
                    };
                    Some(Value::Dict(Box::new(d)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Gather the elements at `indices` into a new list of the same type.
    /// Out-of-range indices yield the type's null element.
    pub fn take_indices(&self, indices: &[usize]) -> Value {
        fn gather<T: Clone>(v: &[T], idx: &[usize], null: T) -> Vec<T> {
            idx.iter().map(|&i| v.get(i).cloned().unwrap_or_else(|| null.clone())).collect()
        }
        match self {
            Value::Bools(v) => Value::Bools(gather(v, indices, false)),
            Value::Bytes(v) => Value::Bytes(gather(v, indices, 0)),
            Value::Shorts(v) => Value::Shorts(gather(v, indices, i16::MIN)),
            Value::Ints(v) => Value::Ints(gather(v, indices, i32::MIN)),
            Value::Longs(v) => Value::Longs(gather(v, indices, i64::MIN)),
            Value::Reals(v) => Value::Reals(gather(v, indices, f32::NAN)),
            Value::Floats(v) => Value::Floats(gather(v, indices, f64::NAN)),
            Value::Chars(s) => {
                let chars: Vec<char> = s.chars().collect();
                Value::Chars(indices.iter().map(|&i| chars.get(i).copied().unwrap_or(' ')).collect())
            }
            Value::Symbols(v) => Value::Symbols(gather(v, indices, String::new())),
            Value::Timestamps(v) => Value::Timestamps(gather(v, indices, i64::MIN)),
            Value::Dates(v) => Value::Dates(gather(v, indices, i32::MIN)),
            Value::Times(v) => Value::Times(gather(v, indices, i32::MIN)),
            Value::Mixed(v) => {
                Value::Mixed(indices.iter().map(|&i| v.get(i).cloned().unwrap_or(Value::Nil)).collect())
            }
            Value::Table(t) => Value::Table(Box::new(t.take_rows(indices))),
            other => other.clone(),
        }
    }

    /// The typed null that belongs in this list (used when lookups miss).
    pub fn null_element(&self) -> Value {
        match self {
            Value::Bools(_) => Value::Atom(Atom::Bool(false)),
            Value::Bytes(_) => Value::Atom(Atom::Byte(0)),
            Value::Shorts(_) => Value::Atom(Atom::Short(i16::MIN)),
            Value::Ints(_) => Value::Atom(Atom::Int(i32::MIN)),
            Value::Longs(_) => Value::Atom(Atom::Long(i64::MIN)),
            Value::Reals(_) => Value::Atom(Atom::Real(f32::NAN)),
            Value::Floats(_) => Value::Atom(Atom::Float(f64::NAN)),
            Value::Chars(_) => Value::Atom(Atom::Char(' ')),
            Value::Symbols(_) => Value::Atom(Atom::Symbol(String::new())),
            Value::Timestamps(_) => Value::Atom(Atom::Timestamp(i64::MIN)),
            Value::Dates(_) => Value::Atom(Atom::Date(i32::MIN)),
            Value::Times(_) => Value::Atom(Atom::Time(i32::MIN)),
            _ => Value::Nil,
        }
    }

    /// Q equality over whole values: element-wise for lists, with
    /// two-valued null semantics (see [`Atom::q_eq`]).
    pub fn q_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Atom(a), Value::Atom(b)) => a.q_eq(b),
            (Value::Nil, Value::Nil) => true,
            (Value::Table(a), Value::Table(b)) => {
                a.names == b.names
                    && a.columns.len() == b.columns.len()
                    && a.columns.iter().zip(&b.columns).all(|(x, y)| x.q_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => a.keys.q_eq(&b.keys) && a.values.q_eq(&b.values),
            (Value::KeyedTable(a), Value::KeyedTable(b)) => {
                Value::Table(Box::new(a.key.clone())).q_eq(&Value::Table(Box::new(b.key.clone())))
                    && Value::Table(Box::new(a.value.clone()))
                        .q_eq(&Value::Table(Box::new(b.value.clone())))
            }
            (a, b) => {
                // List comparison: lengths equal and element-wise q_eq.
                match (a.len(), b.len()) {
                    (Some(la), Some(lb)) if la == lb => (0..la).all(|i| match (a.index(i), b.index(i)) {
                        (Some(x), Some(y)) => x.q_eq(&y),
                        _ => false,
                    }),
                    _ => false,
                }
            }
        }
    }

    /// Promote this value to a one-element list if it is an atom
    /// (the `enlist` primitive).
    pub fn enlist(self) -> Value {
        match self {
            Value::Atom(Atom::Bool(b)) => Value::Bools(vec![b]),
            Value::Atom(Atom::Byte(b)) => Value::Bytes(vec![b]),
            Value::Atom(Atom::Short(x)) => Value::Shorts(vec![x]),
            Value::Atom(Atom::Int(x)) => Value::Ints(vec![x]),
            Value::Atom(Atom::Long(x)) => Value::Longs(vec![x]),
            Value::Atom(Atom::Real(x)) => Value::Reals(vec![x]),
            Value::Atom(Atom::Float(x)) => Value::Floats(vec![x]),
            Value::Atom(Atom::Char(c)) => Value::Chars(c.to_string()),
            Value::Atom(Atom::Symbol(s)) => Value::Symbols(vec![s]),
            Value::Atom(Atom::Timestamp(x)) => Value::Timestamps(vec![x]),
            Value::Atom(Atom::Date(x)) => Value::Dates(vec![x]),
            Value::Atom(Atom::Time(x)) => Value::Times(vec![x]),
            other => Value::Mixed(vec![other]),
        }
    }

    /// Build the most specific homogeneous vector possible from a sequence
    /// of values; falls back to a mixed list.
    pub fn from_elements(elems: Vec<Value>) -> Value {
        if elems.is_empty() {
            return Value::Mixed(vec![]);
        }
        macro_rules! try_collect {
            ($variant:ident, $atom:ident, $ty:ty) => {{
                if elems.iter().all(|e| matches!(e, Value::Atom(Atom::$atom(_)))) {
                    let v: Vec<$ty> = elems
                        .iter()
                        .map(|e| match e {
                            Value::Atom(Atom::$atom(x)) => x.clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    return Value::$variant(v);
                }
            }};
        }
        try_collect!(Bools, Bool, bool);
        try_collect!(Bytes, Byte, u8);
        try_collect!(Shorts, Short, i16);
        try_collect!(Ints, Int, i32);
        try_collect!(Longs, Long, i64);
        try_collect!(Reals, Real, f32);
        try_collect!(Floats, Float, f64);
        try_collect!(Symbols, Symbol, String);
        try_collect!(Timestamps, Timestamp, i64);
        try_collect!(Dates, Date, i32);
        try_collect!(Times, Time, i32);
        if elems.iter().all(|e| matches!(e, Value::Atom(Atom::Char(_)))) {
            return Value::Chars(
                elems
                    .iter()
                    .map(|e| match e {
                        Value::Atom(Atom::Char(c)) => *c,
                        _ => unreachable!(),
                    })
                    .collect(),
            );
        }
        Value::Mixed(elems)
    }

    /// Construct a long-vector value from a `Vec<i64>` (common case helper).
    pub fn longs(v: Vec<i64>) -> Value {
        Value::Longs(v)
    }

    /// Construct a symbol atom.
    pub fn symbol(s: impl Into<String>) -> Value {
        Value::Atom(Atom::Symbol(s.into()))
    }

    /// Construct a long atom.
    pub fn long(v: i64) -> Value {
        Value::Atom(Atom::Long(v))
    }

    /// Construct a float atom.
    pub fn float(v: f64) -> Value {
        Value::Atom(Atom::Float(v))
    }

    /// Construct a boolean atom.
    pub fn bool(v: bool) -> Value {
        Value::Atom(Atom::Bool(v))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            let s = match self {
                Atom::Short(_) => "0Nh",
                Atom::Int(_) => "0Ni",
                Atom::Long(_) => "0N",
                Atom::Real(_) => "0Ne",
                Atom::Float(_) => "0n",
                Atom::Symbol(_) => "`",
                Atom::Timestamp(_) => "0Np",
                Atom::Date(_) => "0Nd",
                Atom::Time(_) => "0Nt",
                _ => unreachable!("no null for this type"),
            };
            return f.write_str(s);
        }
        match self {
            Atom::Bool(b) => write!(f, "{}b", *b as u8),
            Atom::Byte(b) => write!(f, "0x{b:02x}"),
            Atom::Short(v) => write!(f, "{v}h"),
            Atom::Int(v) => write!(f, "{v}i"),
            Atom::Long(v) => write!(f, "{v}"),
            Atom::Real(v) => write!(f, "{v}e"),
            Atom::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v}f")
                } else {
                    write!(f, "{v}")
                }
            }
            Atom::Char(c) => write!(f, "\"{c}\""),
            Atom::Symbol(s) => write!(f, "`{s}"),
            Atom::Timestamp(v) => f.write_str(&temporal::format_timestamp(*v)),
            Atom::Date(v) => f.write_str(&temporal::format_date(*v)),
            Atom::Time(v) => f.write_str(&temporal::format_time(*v)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => a.fmt(f),
            Value::Chars(s) => write!(f, "\"{s}\""),
            Value::Symbols(v) => {
                for s in v {
                    write!(f, "`{s}")?;
                }
                Ok(())
            }
            Value::Table(t) => {
                // Console-style rendering: header row, separator, then rows.
                writeln!(f, "{}", t.names.join(" "))?;
                writeln!(f, "{}", "-".repeat(t.names.join(" ").len().max(3)))?;
                for i in 0..t.rows() {
                    let row: Vec<String> =
                        t.columns.iter().map(|c| c.index(i).map(|v| v.to_string()).unwrap_or_default()).collect();
                    writeln!(f, "{}", row.join(" "))?;
                }
                Ok(())
            }
            Value::KeyedTable(k) => {
                let combined = Table {
                    names: k.key.names.iter().chain(&k.value.names).cloned().collect(),
                    columns: k.key.columns.iter().chain(&k.value.columns).cloned().collect(),
                };
                Value::Table(Box::new(combined)).fmt(f)
            }
            Value::Dict(d) => {
                let n = d.len();
                for i in 0..n {
                    let k = d.keys.index(i).unwrap_or(Value::Nil);
                    let v = d.values.index(i).unwrap_or(Value::Nil);
                    writeln!(f, "{k}| {v}")?;
                }
                Ok(())
            }
            Value::Lambda(l) => write!(f, "{{[{}] ...}}", l.params.join(";")),
            Value::Nil => f.write_str("::"),
            other => {
                // Space-separated vector rendering; mixed lists in parens.
                let n = other.len().unwrap_or(0);
                if let Value::Mixed(items) = other {
                    f.write_str("(")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(";")?;
                        }
                        item.fmt(f)?;
                    }
                    return f.write_str(")");
                }
                for i in 0..n {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    match other.index(i) {
                        Some(Value::Atom(a)) => {
                            // Suppress per-element suffixes inside vectors the
                            // way kdb+ does for longs/floats.
                            match a {
                                Atom::Long(v) => write!(f, "{v}")?,
                                Atom::Float(v) => write!(f, "{v}")?,
                                other => other.fmt(f)?,
                            }
                        }
                        Some(v) => v.fmt(f)?,
                        None => {}
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Atom {
        Atom::Symbol(s.to_string())
    }

    #[test]
    fn type_codes_match_kdb() {
        assert_eq!(Value::Atom(Atom::Long(1)).type_code(), -7);
        assert_eq!(Value::Longs(vec![1]).type_code(), 7);
        assert_eq!(Value::Atom(sym("a")).type_code(), -11);
        assert_eq!(Value::Symbols(vec![]).type_code(), 11);
        assert_eq!(Value::Table(Box::default()).type_code(), 98);
    }

    #[test]
    fn typed_nulls_detected() {
        assert!(Atom::Long(i64::MIN).is_null());
        assert!(!Atom::Long(0).is_null());
        assert!(Atom::Float(f64::NAN).is_null());
        assert!(Atom::Symbol(String::new()).is_null());
        assert!(Atom::Date(i32::MIN).is_null());
        assert!(!Atom::Bool(false).is_null());
    }

    #[test]
    fn two_valued_null_equality() {
        // The paper's headline semantic gap: null = null is TRUE in Q.
        assert!(Atom::Long(i64::MIN).q_eq(&Atom::Long(i64::MIN)));
        assert!(Atom::Float(f64::NAN).q_eq(&Atom::Float(f64::NAN)));
        assert!(sym("").q_eq(&sym("")));
        assert!(!Atom::Long(i64::MIN).q_eq(&Atom::Long(0)));
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert!(Atom::Int(3).q_eq(&Atom::Long(3)));
        assert!(Atom::Long(3).q_eq(&Atom::Float(3.0)));
        assert!(!Atom::Long(3).q_eq(&sym("3")));
    }

    #[test]
    fn nulls_sort_first() {
        let mut v = [Atom::Long(2), Atom::Long(i64::MIN), Atom::Long(1)];
        v.sort_by(|a, b| a.q_cmp(b));
        assert!(v[0].is_null());
        assert_eq!(v[1], Atom::Long(1));
        assert_eq!(v[2], Atom::Long(2));
    }

    #[test]
    fn table_construction_validates_lengths() {
        let ok = Table::new(
            vec!["a".into(), "b".into()],
            vec![Value::Longs(vec![1, 2]), Value::Symbols(vec!["x".into(), "y".into()])],
        );
        assert!(ok.is_ok());
        let bad = Table::new(
            vec!["a".into(), "b".into()],
            vec![Value::Longs(vec![1, 2]), Value::Symbols(vec!["x".into()])],
        );
        assert!(bad.is_err());
        let atom_col = Table::new(vec!["a".into()], vec![Value::long(1)]);
        assert!(atom_col.is_err());
    }

    #[test]
    fn table_row_and_column_access() {
        let t = Table::new(
            vec!["px".into(), "sym".into()],
            vec![Value::Floats(vec![10.0, 11.5]), Value::Symbols(vec!["A".into(), "B".into()])],
        )
        .unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.width(), 2);
        assert!(t.column("px").is_some());
        assert!(t.column("nope").is_none());
        let row = t.row(1);
        assert!(row[0].q_eq(&Value::float(11.5)));
        assert!(row[1].q_eq(&Value::symbol("B")));
    }

    #[test]
    fn take_rows_reorders_and_pads() {
        let t = Table::new(vec!["a".into()], vec![Value::Longs(vec![10, 20, 30])]).unwrap();
        let picked = t.take_rows(&[2, 0]);
        assert!(picked.columns[0].q_eq(&Value::Longs(vec![30, 10])));
        // Out-of-range index produces null.
        let padded = t.take_rows(&[5]);
        match &padded.columns[0] {
            Value::Longs(v) => assert_eq!(v[0], i64::MIN),
            other => panic!("expected longs, got {other:?}"),
        }
    }

    #[test]
    fn dict_lookup_positional_with_null_miss() {
        let d = Dict::new(
            Value::Symbols(vec!["a".into(), "b".into()]),
            Value::Longs(vec![1, 2]),
        )
        .unwrap();
        assert!(d.get(&Value::symbol("b")).q_eq(&Value::long(2)));
        // Miss yields typed null, matching kdb+ lookup semantics.
        let miss = d.get(&Value::symbol("zz"));
        match miss {
            Value::Atom(Atom::Long(v)) => assert_eq!(v, i64::MIN),
            other => panic!("expected long null, got {other:?}"),
        }
    }

    #[test]
    fn from_elements_builds_typed_vectors() {
        let v = Value::from_elements(vec![Value::long(1), Value::long(2)]);
        assert!(matches!(v, Value::Longs(_)));
        let v = Value::from_elements(vec![Value::symbol("a"), Value::symbol("b")]);
        assert!(matches!(v, Value::Symbols(_)));
        let v = Value::from_elements(vec![Value::long(1), Value::symbol("a")]);
        assert!(matches!(v, Value::Mixed(_)));
    }

    #[test]
    fn enlist_promotes_atoms() {
        assert!(matches!(Value::long(7).enlist(), Value::Longs(v) if v == vec![7]));
        assert!(matches!(Value::symbol("s").enlist(), Value::Symbols(_)));
        let t = Value::Table(Box::default());
        assert!(matches!(t.enlist(), Value::Mixed(_)));
    }

    #[test]
    fn indexing_tables_yields_row_dicts() {
        let t = Table::new(
            vec!["a".into()],
            vec![Value::Longs(vec![5, 6])],
        )
        .unwrap();
        let row = Value::Table(Box::new(t)).index(1).unwrap();
        match row {
            Value::Dict(d) => assert!(d.get(&Value::symbol("a")).q_eq(&Value::long(6))),
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::long(42).to_string(), "42");
        assert_eq!(Value::symbol("GOOG").to_string(), "`GOOG");
        assert_eq!(Value::Longs(vec![1, 2, 3]).to_string(), "1 2 3");
        assert_eq!(Value::Symbols(vec!["a".into(), "b".into()]).to_string(), "`a`b");
        assert_eq!(Value::bool(true).to_string(), "1b");
        assert_eq!(Value::Atom(Atom::Long(i64::MIN)).to_string(), "0N");
    }

    #[test]
    fn list_q_eq_elementwise() {
        assert!(Value::Longs(vec![1, i64::MIN]).q_eq(&Value::Longs(vec![1, i64::MIN])));
        assert!(!Value::Longs(vec![1]).q_eq(&Value::Longs(vec![1, 2])));
        // Cross-width numeric lists compare element-wise.
        assert!(Value::Ints(vec![1, 2]).q_eq(&Value::Longs(vec![1, 2])));
    }

    #[test]
    fn count_semantics() {
        assert_eq!(Value::long(9).count(), 1);
        assert_eq!(Value::Longs(vec![1, 2, 3]).count(), 3);
    }
}
