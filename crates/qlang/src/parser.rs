//! Right-to-left expression parser for Q.
//!
//! Q has **no operator precedence**: `2*3+4` is `2*(3+4)` because
//! everything to the right of a verb binds first (paper §2.2). The parser
//! mirrors this by recursing on the right operand. It also handles the
//! grammar quirks that make Q terse:
//!
//! * juxtaposition application (`til 10`, `count x`),
//! * bracket application with elided arguments (`f[;2]` projection),
//! * space-separated numeric vector literals (`1 2 3`),
//! * q-sql templates (`select c by g from t where p1, p2`) where `,`
//!   separates clauses instead of acting as the join verb,
//! * named infix verbs (`x in y`, `t lj kt`, `` `Sym xasc t``),
//! * function literals with explicit or implicit parameters,
//! * table literals `([] c1:...; c2:...)` and keyed variants,
//! * `$[c;t;f]` conditional evaluation.
//!
//! The output AST is untyped; all name resolution happens in the binder.

use crate::ast::{Expr, LambdaDef, SelectKind, TemplateExpr};
use crate::error::{QError, QResult};
use crate::lexer::{lex, Tok, Token};
use crate::value::{Atom, Value};

/// Parse a Q program: statements separated by `;` at the top level.
pub fn parse(src: &str) -> QResult<Vec<Expr>> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, src };
    let mut stmts = Vec::new();
    loop {
        while p.cur() == Some(&Tok::Semi) {
            p.pos += 1;
        }
        if p.pos >= p.tokens.len() {
            break;
        }
        let e = p.parse_expr(Stop::NONE)?;
        stmts.push(e);
        match p.cur() {
            None => break,
            Some(Tok::Semi) => p.pos += 1,
            Some(other) => {
                return Err(QError::parse(format!(
                    "unexpected token after statement: {other:?}"
                ))
                .at(p.offset()))
            }
        }
    }
    Ok(stmts)
}

/// Parse exactly one expression; error on trailing input.
pub fn parse_one(src: &str) -> QResult<Expr> {
    let stmts = parse(src)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().unwrap()),
        0 => Err(QError::parse("empty input")),
        n => Err(QError::parse(format!("expected one expression, found {n} statements"))),
    }
}

/// What terminates the current expression, beyond closing delimiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stop {
    /// Stop at a top-level `,` (clause separator in q-sql templates).
    comma: bool,
    /// Stop at the template keywords `by` / `from` / `where`.
    keywords: bool,
}

impl Stop {
    const NONE: Stop = Stop { comma: false, keywords: false };
    const CLAUSE: Stop = Stop { comma: true, keywords: true };
    const FROM: Stop = Stop { comma: false, keywords: true };
}

/// Named verbs that can be used infix between two nouns.
fn is_infix_name(name: &str) -> bool {
    matches!(
        name,
        "in" | "within"
            | "like"
            | "mod"
            | "div"
            | "and"
            | "or"
            | "xasc"
            | "xdesc"
            | "xkey"
            | "xcol"
            | "xcols"
            | "lj"
            | "ij"
            | "uj"
            | "pj"
            | "cross"
            | "except"
            | "inter"
            | "union"
            | "each"
            | "over"
            | "scan"
            | "vs"
            | "sv"
            | "set"
            | "insert"
            | "upsert"
            | "take"
            | "bin"
            | "binr"
            | "xbar"
    )
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    #[allow(dead_code)]
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn cur(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn cur_token(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(0)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> QResult<()> {
        if self.cur() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(QError::parse(format!("expected {what}, found {:?}", self.cur())).at(self.offset()))
        }
    }

    /// Is the current token an end-of-expression marker under `stop`?
    fn at_end(&self, stop: Stop) -> bool {
        match self.cur() {
            None => true,
            Some(Tok::Semi) | Some(Tok::RParen) | Some(Tok::RBracket) | Some(Tok::RBrace) => true,
            Some(Tok::Op(",")) if stop.comma => true,
            Some(Tok::Ident(k)) if stop.keywords && matches!(k.as_str(), "by" | "from" | "where") => {
                true
            }
            _ => false,
        }
    }

    /// Right-to-left expression parser.
    fn parse_expr(&mut self, stop: Stop) -> QResult<Expr> {
        if self.at_end(stop) {
            return Ok(Expr::Empty);
        }

        // Leading `:` = explicit return (function bodies).
        if self.cur() == Some(&Tok::Colon) {
            self.pos += 1;
            let e = self.parse_expr(stop)?;
            return Ok(Expr::Return(Box::new(e)));
        }
        // `::` alone = generic null.
        if self.cur() == Some(&Tok::DoubleColon) && {
            let save = self.pos;
            self.pos += 1;
            let end = self.at_end(stop);
            self.pos = save;
            end
        } {
            self.pos += 1;
            return Ok(Expr::Lit(Value::Nil));
        }

        // Prefix operator → monadic application.
        if let Some(Tok::Op(op)) = self.cur() {
            let op = *op;
            // `$[c;t;f]` conditional.
            if op == "$" && self.tokens.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::LBracket) {
                self.pos += 2;
                let args = self.parse_bracket_args()?;
                let exprs: Vec<Expr> =
                    args.into_iter().map(|a| a.unwrap_or(Expr::Empty)).collect();
                let cond = Expr::Cond(exprs);
                return self.continue_after_noun(cond, stop);
            }
            self.pos += 1;
            // Operator + adverb: `+/ x` (fold), `+\ x` (scan), ...
            if let Some(Tok::Adverb(a)) = self.cur() {
                let a = *a;
                self.pos += 1;
                let derived =
                    Expr::AdverbApply { verb: Box::new(Expr::Var(op.to_string())), adverb: a };
                if self.at_end(stop) {
                    return Ok(derived);
                }
                // Bracket application of a derived verb: `+/[seed; list]`.
                if self.cur() == Some(&Tok::LBracket) {
                    self.pos += 1;
                    let args = self.parse_bracket_args()?;
                    return Ok(Expr::Call { func: Box::new(derived), args });
                }
                let rhs = self.parse_expr(stop)?;
                return Ok(Expr::Apply { func: Box::new(derived), arg: Box::new(rhs) });
            }
            if self.at_end(stop) {
                // Operator as a value, e.g. `(+)`.
                return Ok(Expr::Var(op.to_string()));
            }
            // Operator with bracket args: `+[1;2]`.
            if self.cur() == Some(&Tok::LBracket) {
                let func = Expr::Var(op.to_string());
                return self.continue_after_noun(func, stop);
            }
            let rhs = self.parse_expr(stop)?;
            return Ok(Expr::Unary { op: op.to_string(), arg: Box::new(rhs) });
        }

        let noun = self.parse_noun(stop)?;
        self.continue_after_noun(noun, stop)
    }

    /// After parsing a noun, decide among: end, assignment, infix verb,
    /// adverb derivation, or juxtaposition application.
    fn continue_after_noun(&mut self, noun: Expr, stop: Stop) -> QResult<Expr> {
        // Assignment forms.
        if let Expr::Var(name) = &noun {
            match self.cur() {
                Some(Tok::Colon) => {
                    let name = name.clone();
                    self.pos += 1;
                    let value = self.parse_expr(stop)?;
                    return Ok(Expr::Assign { name, global: false, value: Box::new(value) });
                }
                Some(Tok::DoubleColon) => {
                    let name = name.clone();
                    self.pos += 1;
                    let value = self.parse_expr(stop)?;
                    return Ok(Expr::Assign { name, global: true, value: Box::new(value) });
                }
                _ => {}
            }
        }
        if let Expr::Call { func, args } = &noun {
            if let Expr::Var(name) = func.as_ref() {
                if self.cur() == Some(&Tok::Colon) {
                    let name = name.clone();
                    let indices: Vec<Expr> =
                        args.iter().map(|a| a.clone().unwrap_or(Expr::Empty)).collect();
                    self.pos += 1;
                    let value = self.parse_expr(stop)?;
                    return Ok(Expr::IndexAssign { name, indices, value: Box::new(value) });
                }
            }
        }

        if self.at_end(stop) {
            return Ok(noun);
        }

        match self.cur().cloned() {
            Some(Tok::Op(op)) => {
                self.pos += 1;
                // Infix verb + adverb: `x +/ y`, `x ,' y`.
                if let Some(Tok::Adverb(a)) = self.cur() {
                    let a = *a;
                    self.pos += 1;
                    let derived =
                        Expr::AdverbApply { verb: Box::new(Expr::Var(op.to_string())), adverb: a };
                    let rhs = self.parse_expr(stop)?;
                    return Ok(Expr::Call {
                        func: Box::new(derived),
                        args: vec![Some(noun), Some(rhs)],
                    });
                }
                let rhs = self.parse_expr(stop)?;
                Ok(Expr::binary(op, noun, rhs))
            }
            Some(Tok::Adverb(a)) => {
                self.pos += 1;
                let derived = Expr::AdverbApply { verb: Box::new(noun), adverb: a };
                if self.at_end(stop) {
                    return Ok(derived);
                }
                let rhs = self.parse_expr(stop)?;
                Ok(Expr::Apply { func: Box::new(derived), arg: Box::new(rhs) })
            }
            Some(Tok::Ident(name)) if is_infix_name(&name) => {
                self.pos += 1;
                let rhs = self.parse_expr(stop)?;
                Ok(Expr::binary(name, noun, rhs))
            }
            _ => {
                // Juxtaposition: `f x` applies f monadically to x.
                let rhs = self.parse_expr(stop)?;
                Ok(Expr::Apply { func: Box::new(noun), arg: Box::new(rhs) })
            }
        }
    }

    /// Parse a noun: literal, variable, parenthesized list/expression,
    /// table literal, lambda, or q-sql template; then apply postfix
    /// bracket applications.
    fn parse_noun(&mut self, _stop: Stop) -> QResult<Expr> {
        let base = match self.cur().cloned() {
            Some(Tok::Num(_)) => self.parse_numeric_run()?,
            Some(Tok::Sym(syms)) => {
                self.pos += 1;
                let v = if syms.len() == 1 {
                    Value::Atom(Atom::Symbol(syms.into_iter().next().unwrap()))
                } else {
                    Value::Symbols(syms)
                };
                Expr::Lit(v)
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                if s.chars().count() == 1 {
                    Expr::Lit(Value::Atom(Atom::Char(s.chars().next().unwrap())))
                } else {
                    Expr::Lit(Value::Chars(s))
                }
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "select" => self.parse_template(SelectKind::Select)?,
                "exec" => self.parse_template(SelectKind::Exec)?,
                "update" => self.parse_template(SelectKind::Update)?,
                "delete" => self.parse_template(SelectKind::Delete)?,
                _ => {
                    self.pos += 1;
                    Expr::Var(name)
                }
            },
            Some(Tok::LParen) => self.parse_paren()?,
            Some(Tok::LBrace) => self.parse_lambda()?,
            other => {
                return Err(
                    QError::parse(format!("expected expression, found {other:?}")).at(self.offset())
                )
            }
        };
        self.parse_postfix(base)
    }

    /// Postfix bracket application: `f[a;b]`, possibly chained `m[i][j]`.
    fn parse_postfix(&mut self, mut base: Expr) -> QResult<Expr> {
        while self.cur() == Some(&Tok::LBracket) {
            self.pos += 1;
            let args = self.parse_bracket_args()?;
            base = Expr::Call { func: Box::new(base), args };
        }
        Ok(base)
    }

    /// Arguments between `[` and `]`, separated by `;`. Elided slots
    /// (`f[;2]`) become `None` (projection).
    fn parse_bracket_args(&mut self) -> QResult<Vec<Option<Expr>>> {
        let mut args = Vec::new();
        if self.cur() == Some(&Tok::RBracket) {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            if self.cur() == Some(&Tok::Semi) {
                args.push(None);
                self.pos += 1;
                continue;
            }
            let e = self.parse_expr(Stop::NONE)?;
            args.push(if matches!(e, Expr::Empty) { None } else { Some(e) });
            match self.cur() {
                Some(Tok::Semi) => {
                    self.pos += 1;
                    if self.cur() == Some(&Tok::RBracket) {
                        args.push(None);
                    }
                }
                Some(Tok::RBracket) => break,
                other => {
                    return Err(QError::parse(format!("expected ; or ] in argument list, found {other:?}"))
                        .at(self.offset()))
                }
            }
        }
        self.expect(&Tok::RBracket, "]")?;
        Ok(args)
    }

    /// Space-separated numeric literals form one vector: `1 2 3`.
    fn parse_numeric_run(&mut self) -> QResult<Expr> {
        let mut items = Vec::new();
        while let Some(Tok::Num(v)) = self.cur() {
            items.push(v.clone());
            self.pos += 1;
        }
        if items.len() == 1 {
            return Ok(Expr::Lit(items.into_iter().next().unwrap()));
        }
        Ok(Expr::Lit(merge_numeric_literals(items)?))
    }

    /// `(...)`: empty list, parenthesized expression, general list, or
    /// table literal `([keys] cols)`.
    fn parse_paren(&mut self) -> QResult<Expr> {
        self.expect(&Tok::LParen, "(")?;
        if self.cur() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(Expr::Lit(Value::Mixed(vec![])));
        }
        // Table literal starts with `[`.
        if self.cur() == Some(&Tok::LBracket) {
            return self.parse_table_literal();
        }
        let mut items = Vec::new();
        loop {
            let e = self.parse_expr(Stop::NONE)?;
            items.push(e);
            match self.cur() {
                Some(Tok::Semi) => {
                    self.pos += 1;
                }
                Some(Tok::RParen) => break,
                other => {
                    return Err(QError::parse(format!("expected ; or ) in list, found {other:?}"))
                        .at(self.offset()))
                }
            }
        }
        self.expect(&Tok::RParen, ")")?;
        if items.len() == 1 {
            Ok(items.into_iter().next().unwrap())
        } else {
            Ok(Expr::List(items))
        }
    }

    /// `([k1:e1; ...] c1:e1; c2:e2)` after the opening `(` has been eaten.
    fn parse_table_literal(&mut self) -> QResult<Expr> {
        self.expect(&Tok::LBracket, "[")?;
        let mut keys = Vec::new();
        while self.cur() != Some(&Tok::RBracket) {
            let (name, expr) = self.parse_named_column()?;
            keys.push((name, expr));
            if self.cur() == Some(&Tok::Semi) {
                self.pos += 1;
            }
        }
        self.expect(&Tok::RBracket, "]")?;
        let mut columns = Vec::new();
        while self.cur() != Some(&Tok::RParen) {
            if self.cur() == Some(&Tok::Semi) {
                self.pos += 1;
                continue;
            }
            let (name, expr) = self.parse_named_column()?;
            columns.push((name, expr));
        }
        self.expect(&Tok::RParen, ")")?;
        Ok(Expr::TableLit { keys, columns })
    }

    /// `name: expr` within a table literal.
    fn parse_named_column(&mut self) -> QResult<(String, Expr)> {
        let name = match self.advance() {
            Some(Tok::Ident(n)) => n,
            other => {
                return Err(QError::parse(format!("expected column name, found {other:?}"))
                    .at(self.offset()))
            }
        };
        self.expect(&Tok::Colon, ":")?;
        let expr = self.parse_expr(Stop { comma: false, keywords: false })?;
        Ok((name, expr))
    }

    /// `{[p1;p2] stmt; stmt}` — explicit params; or `{x+y}` — implicit.
    fn parse_lambda(&mut self) -> QResult<Expr> {
        let start_tok = self.cur_token().map(|t| t.offset).unwrap_or(0);
        self.expect(&Tok::LBrace, "{")?;
        let mut params = Vec::new();
        if self.cur() == Some(&Tok::LBracket) {
            self.pos += 1;
            while self.cur() != Some(&Tok::RBracket) {
                match self.advance() {
                    Some(Tok::Ident(n)) => params.push(n),
                    other => {
                        return Err(QError::parse(format!("expected parameter name, found {other:?}"))
                            .at(self.offset()))
                    }
                }
                if self.cur() == Some(&Tok::Semi) {
                    self.pos += 1;
                }
            }
            self.expect(&Tok::RBracket, "]")?;
        }
        let mut body = Vec::new();
        loop {
            while self.cur() == Some(&Tok::Semi) {
                self.pos += 1;
            }
            if self.cur() == Some(&Tok::RBrace) {
                break;
            }
            if self.cur().is_none() {
                return Err(QError::parse("unterminated function literal").at(start_tok));
            }
            let before = self.pos;
            body.push(self.parse_expr(Stop::NONE)?);
            if self.pos == before {
                // Stray closer (e.g. `{)`) — the expression parser treats
                // it as end-of-expression without consuming it.
                return Err(QError::parse(format!(
                    "unexpected token in function body: {:?}",
                    self.cur()
                ))
                .at(self.offset()));
            }
        }
        let end = self.cur_token().map(|t| t.offset + 1).unwrap_or(self.src.len());
        self.expect(&Tok::RBrace, "}")?;
        let source = self.src.get(start_tok..end).unwrap_or("").to_string();
        Ok(Expr::Lambda(LambdaDef { params, body, source }))
    }

    /// q-sql template: `select cols by groups from t where p1, p2`.
    fn parse_template(&mut self, kind: SelectKind) -> QResult<Expr> {
        self.pos += 1; // keyword
        let mut columns = Vec::new();
        let mut by = Vec::new();

        // Column clauses until `by` or `from`.
        loop {
            match self.cur() {
                Some(Tok::Ident(k)) if k == "by" || k == "from" => break,
                None => return Err(QError::parse("template missing `from`").at(self.offset())),
                _ => {}
            }
            columns.push(self.parse_clause()?);
            if self.cur() == Some(&Tok::Op(",")) {
                self.pos += 1;
            } else {
                break;
            }
        }

        if self.cur() == Some(&Tok::Ident("by".to_string())) {
            self.pos += 1;
            loop {
                match self.cur() {
                    Some(Tok::Ident(k)) if k == "from" => break,
                    None => return Err(QError::parse("template missing `from`").at(self.offset())),
                    _ => {}
                }
                by.push(self.parse_clause()?);
                if self.cur() == Some(&Tok::Op(",")) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        match self.cur() {
            Some(Tok::Ident(k)) if k == "from" => {
                self.pos += 1;
            }
            other => {
                return Err(QError::parse(format!("expected `from` in template, found {other:?}"))
                    .at(self.offset()))
            }
        }

        let from = self.parse_expr(Stop::FROM)?;

        let mut predicates = Vec::new();
        if self.cur() == Some(&Tok::Ident("where".to_string())) {
            self.pos += 1;
            loop {
                let e = self.parse_expr(Stop::CLAUSE)?;
                predicates.push(e);
                if self.cur() == Some(&Tok::Op(",")) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        Ok(Expr::Template(TemplateExpr {
            kind,
            columns,
            by,
            from: Box::new(from),
            predicates,
        }))
    }

    /// One select/by clause: optionally named `name: expr`.
    fn parse_clause(&mut self) -> QResult<(Option<String>, Expr)> {
        // Lookahead for `name:`.
        if let (Some(Tok::Ident(name)), Some(tok2)) =
            (self.cur().cloned(), self.tokens.get(self.pos + 1).map(|t| &t.tok))
        {
            if *tok2 == Tok::Colon && !matches!(name.as_str(), "by" | "from" | "where") {
                self.pos += 2;
                let e = self.parse_expr(Stop::CLAUSE)?;
                return Ok((Some(name), e));
            }
        }
        let e = self.parse_expr(Stop::CLAUSE)?;
        Ok((None, e))
    }
}

/// Merge space-separated numeric literals into a single typed vector,
/// promoting mixed integer/float runs to floats (kdb+ behaviour).
fn merge_numeric_literals(items: Vec<Value>) -> QResult<Value> {
    // Homogeneous case first.
    let merged = Value::from_elements(
        items.clone(),
    );
    if !matches!(merged, Value::Mixed(_)) {
        return Ok(merged);
    }
    // Mixed numerics promote to float.
    let mut floats = Vec::with_capacity(items.len());
    for it in &items {
        match it {
            Value::Atom(a) => match a.as_f64() {
                Some(f) => floats.push(f),
                None => {
                    return Err(QError::type_err(format!(
                        "cannot mix {} into a numeric vector literal",
                        it.type_name()
                    )))
                }
            },
            _ => {
                return Err(QError::type_err(
                    "cannot mix list literal into a numeric vector literal",
                ))
            }
        }
    }
    Ok(Value::Floats(floats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Adverb;

    fn one(src: &str) -> Expr {
        parse_one(src).unwrap_or_else(|e| panic!("parse {src:?} failed: {e}"))
    }

    #[test]
    fn literal_atoms() {
        assert_eq!(one("42"), Expr::long(42));
        assert_eq!(one("`GOOG"), Expr::symbol("GOOG"));
        assert_eq!(one("\"hello\""), Expr::Lit(Value::Chars("hello".into())));
    }

    #[test]
    fn numeric_vector_literals() {
        assert_eq!(one("1 2 3"), Expr::Lit(Value::Longs(vec![1, 2, 3])));
        assert_eq!(one("1 2.5"), Expr::Lit(Value::Floats(vec![1.0, 2.5])));
        assert_eq!(one("1 -2 3"), Expr::Lit(Value::Longs(vec![1, -2, 3])));
    }

    #[test]
    fn right_to_left_no_precedence() {
        // 2*3+4 parses as 2*(3+4).
        let e = one("2*3+4");
        assert_eq!(
            e,
            Expr::binary("*", Expr::long(2), Expr::binary("+", Expr::long(3), Expr::long(4)))
        );
    }

    #[test]
    fn assignment() {
        let e = one("x:1");
        assert_eq!(
            e,
            Expr::Assign { name: "x".into(), global: false, value: Box::new(Expr::long(1)) }
        );
        let e = one("x::1");
        assert!(matches!(e, Expr::Assign { global: true, .. }));
    }

    #[test]
    fn assignment_of_list() {
        let e = one("x: 1 2 3");
        assert!(matches!(e, Expr::Assign { name, .. } if name == "x"));
    }

    #[test]
    fn juxtaposition_application() {
        let e = one("til 10");
        assert_eq!(
            e,
            Expr::Apply { func: Box::new(Expr::var("til")), arg: Box::new(Expr::long(10)) }
        );
        let e = one("count trades");
        assert!(matches!(e, Expr::Apply { .. }));
    }

    #[test]
    fn bracket_application() {
        let e = one("f[1;2]");
        assert_eq!(
            e,
            Expr::Call {
                func: Box::new(Expr::var("f")),
                args: vec![Some(Expr::long(1)), Some(Expr::long(2))],
            }
        );
    }

    #[test]
    fn elided_arguments_project() {
        let e = one("f[;2]");
        assert_eq!(
            e,
            Expr::Call { func: Box::new(Expr::var("f")), args: vec![None, Some(Expr::long(2))] }
        );
    }

    #[test]
    fn niladic_call() {
        let e = one("f[]");
        assert_eq!(e, Expr::Call { func: Box::new(Expr::var("f")), args: vec![] });
    }

    #[test]
    fn paper_example_2_aj() {
        // aj[`Symbol`Time; trades; quotes]
        let e = one("aj[`Symbol`Time; trades; quotes]");
        match e {
            Expr::Call { func, args } => {
                assert_eq!(*func, Expr::var("aj"));
                assert_eq!(args.len(), 3);
                assert_eq!(
                    args[0],
                    Some(Expr::Lit(Value::Symbols(vec!["Symbol".into(), "Time".into()])))
                );
                assert_eq!(args[1], Some(Expr::var("trades")));
                assert_eq!(args[2], Some(Expr::var("quotes")));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let e = one("select Price from trades");
        match e {
            Expr::Template(t) => {
                assert_eq!(t.kind, SelectKind::Select);
                assert_eq!(t.columns.len(), 1);
                assert_eq!(t.columns[0], (None, Expr::var("Price")));
                assert_eq!(*t.from, Expr::var("trades"));
                assert!(t.predicates.is_empty());
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn select_all() {
        let e = one("select from trades");
        match e {
            Expr::Template(t) => assert!(t.columns.is_empty()),
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_1_select_with_where() {
        let e = one("select Price from trades where Date=2016.06.26, Symbol in `GOOG`IBM");
        match e {
            Expr::Template(t) => {
                assert_eq!(t.predicates.len(), 2);
                assert!(matches!(&t.predicates[0], Expr::Binary { op, .. } if op == "="));
                assert!(matches!(&t.predicates[1], Expr::Binary { op, .. } if op == "in"));
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn select_with_by_and_named_columns() {
        let e = one("select mx:max Price, mn:min Price by Symbol from trades");
        match e {
            Expr::Template(t) => {
                assert_eq!(t.columns.len(), 2);
                assert_eq!(t.columns[0].0.as_deref(), Some("mx"));
                assert_eq!(t.columns[1].0.as_deref(), Some("mn"));
                assert_eq!(t.by.len(), 1);
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn update_and_delete_and_exec() {
        assert!(matches!(
            one("update Price:2*Price from trades"),
            Expr::Template(TemplateExpr { kind: SelectKind::Update, .. })
        ));
        assert!(matches!(
            one("delete from trades where Price<0"),
            Expr::Template(TemplateExpr { kind: SelectKind::Delete, .. })
        ));
        assert!(matches!(
            one("exec Price from trades"),
            Expr::Template(TemplateExpr { kind: SelectKind::Exec, .. })
        ));
    }

    #[test]
    fn lambda_with_params() {
        let e = one("{[Sym] select from trades where Symbol=Sym}");
        match e {
            Expr::Lambda(l) => {
                assert_eq!(l.params, vec!["Sym".to_string()]);
                assert_eq!(l.body.len(), 1);
                assert!(l.source.starts_with('{'));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn lambda_multi_statement_with_return() {
        let e = one("{[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}");
        match e {
            Expr::Lambda(l) => {
                assert_eq!(l.body.len(), 2);
                assert!(matches!(&l.body[0], Expr::Assign { name, .. } if name == "dt"));
                assert!(matches!(&l.body[1], Expr::Return(_)));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn general_list() {
        let e = one("(1;`a;\"xy\")");
        match e {
            Expr::List(items) => assert_eq!(items.len(), 3),
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn empty_list_and_paren_expr() {
        assert_eq!(one("()"), Expr::Lit(Value::Mixed(vec![])));
        assert_eq!(one("(1+2)"), Expr::binary("+", Expr::long(1), Expr::long(2)));
    }

    #[test]
    fn table_literal() {
        let e = one("([] Sym:`a`b; Px:1 2)");
        match e {
            Expr::TableLit { keys, columns } => {
                assert!(keys.is_empty());
                assert_eq!(columns.len(), 2);
                assert_eq!(columns[0].0, "Sym");
            }
            other => panic!("expected table literal, got {other:?}"),
        }
    }

    #[test]
    fn keyed_table_literal() {
        let e = one("([Sym:`a`b] Px:1 2)");
        match e {
            Expr::TableLit { keys, columns } => {
                assert_eq!(keys.len(), 1);
                assert_eq!(columns.len(), 1);
            }
            other => panic!("expected table literal, got {other:?}"),
        }
    }

    #[test]
    fn infix_named_verbs() {
        let e = one("Symbol in SYMLIST");
        assert!(matches!(e, Expr::Binary { op, .. } if op == "in"));
        let e = one("t lj kt");
        assert!(matches!(e, Expr::Binary { op, .. } if op == "lj"));
        let e = one("`Sym xasc t");
        assert!(matches!(e, Expr::Binary { op, .. } if op == "xasc"));
    }

    #[test]
    fn adverbs_fold() {
        let e = one("+/ 1 2 3");
        match e {
            Expr::Apply { func, .. } => {
                assert!(matches!(*func, Expr::AdverbApply { adverb: Adverb::Over, .. }));
            }
            other => panic!("expected apply, got {other:?}"),
        }
    }

    #[test]
    fn conditional() {
        let e = one("$[x>0;1;-1]");
        match e {
            Expr::Cond(items) => assert_eq!(items.len(), 3),
            other => panic!("expected cond, got {other:?}"),
        }
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse("x:1; y:2; x+y").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn function_call_then_statement() {
        let stmts = parse("f:{[Sym] select from t where s=Sym}; f[`GOOG]").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(&stmts[1], Expr::Call { .. }));
    }

    #[test]
    fn monadic_operator() {
        let e = one("-x");
        assert_eq!(e, Expr::Unary { op: "-".into(), arg: Box::new(Expr::var("x")) });
    }

    #[test]
    fn index_assignment() {
        let e = one("x[0]:5");
        assert!(matches!(e, Expr::IndexAssign { .. }));
    }

    #[test]
    fn nested_template_in_where() {
        let e = one("select from t where Sym in exec Sym from u");
        match e {
            Expr::Template(t) => {
                assert_eq!(t.predicates.len(), 1);
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_one("f[1;").is_err());
        assert!(parse_one("select Price trades").is_err());
        assert!(parse_one("(1;2").is_err());
        assert!(parse_one("{x+y").is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn generic_null() {
        assert_eq!(one("::"), Expr::Lit(Value::Nil));
    }
}
