//! Abstract syntax tree for Q.
//!
//! Per the paper (§3.2.1), the parser is deliberately *lightweight*: it
//! records structure only. The AST is untyped — `trades` might be a table,
//! a list or a scalar; only the binder, with access to the metadata
//! interface and variable scopes, can tell. Dynamic typing in Q makes any
//! earlier resolution impossible without a round trip to the backend.

use crate::value::Value;
use std::fmt;

/// A Q adverb, deriving a new verb from an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Adverb {
    /// `'` — apply item-wise (`each`).
    Each,
    /// `/` — fold (`over`).
    Over,
    /// `\` — fold emitting intermediates (`scan`).
    Scan,
    /// `/:` — apply with each element of the *right* argument.
    EachRight,
    /// `\:` — apply with each element of the *left* argument.
    EachLeft,
    /// `':` — apply to each adjacent pair (`each-prior`).
    EachPrior,
}

impl fmt::Display for Adverb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Adverb::Each => "'",
            Adverb::Over => "/",
            Adverb::Scan => "\\",
            Adverb::EachRight => "/:",
            Adverb::EachLeft => "\\:",
            Adverb::EachPrior => "':",
        })
    }
}

/// Which q-sql template an expression uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectKind {
    /// `select ... from t` — returns a table.
    Select,
    /// `exec ... from t` — returns a list or dictionary.
    Exec,
    /// `update ... from t` — replaces/adds columns **in the query output
    /// only**; the paper highlights that this does not modify persisted
    /// state, unlike SQL UPDATE.
    Update,
    /// `delete ... from t` — removes rows or columns from the output.
    Delete,
}

/// A q-sql template expression:
/// `select <cols> by <groups> from <table> where <conds>`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateExpr {
    /// Template variant.
    pub kind: SelectKind,
    /// Selected columns: optional result name and defining expression.
    /// Empty means "all columns" (`select from t`).
    pub columns: Vec<(Option<String>, Expr)>,
    /// Grouping expressions (the `by` clause).
    pub by: Vec<(Option<String>, Expr)>,
    /// Source expression (the `from` clause).
    pub from: Box<Expr>,
    /// Conjunctive filter expressions; q-sql applies them left to right,
    /// each seeing the rows that survived the previous one.
    pub predicates: Vec<Expr>,
}

/// A lambda (function literal) definition.
///
/// Stored as parsed structure *plus* source text: the paper (§4.3) stores
/// function definitions as plain text in the variable scope and
/// re-algebrizes them at invocation time, because the meaning of the body
/// depends on the scope contents at the call site.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaDef {
    /// Declared parameters; empty means implicit `x`, `y`, `z`.
    pub params: Vec<String>,
    /// Body statements, evaluated in order; the value of the last (or of an
    /// explicit `:expr` return) is the result.
    pub body: Vec<Expr>,
    /// Original source text of the whole literal.
    pub source: String,
}

/// A Q expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant (scalar or simple vector like `1 2 3` / `` `a`b``).
    Lit(Value),
    /// A variable reference. Untyped at parse time: may be a table in the
    /// backend, a session variable, a local, or a built-in function.
    Var(String),
    /// General list construction `(e1;e2;...)`.
    List(Vec<Expr>),
    /// Monadic application of a *verb* (operator), e.g. `-x`, `#:x`.
    Unary {
        /// Operator glyph or builtin name.
        op: String,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Dyadic infix application, e.g. `x+y`. Q has **no precedence**:
    /// everything to the right of the verb binds first (right-to-left
    /// evaluation), which the parser mirrors structurally.
    Binary {
        /// Operator glyph or builtin name.
        op: String,
        /// Left operand (a noun).
        lhs: Box<Expr>,
        /// Right operand (the rest of the expression).
        rhs: Box<Expr>,
    },
    /// Bracket application / indexing `f[a;b]` or `list[i]`.
    /// Elided arguments (`f[;b]`) are `None` — projection.
    Call {
        /// The callee expression.
        func: Box<Expr>,
        /// Arguments; `None` marks an elided (projected) slot.
        args: Vec<Option<Expr>>,
    },
    /// Juxtaposition application `f x` (monadic).
    Apply {
        /// The callee expression.
        func: Box<Expr>,
        /// The single argument.
        arg: Box<Expr>,
    },
    /// A function literal `{[a;b] ...}`.
    Lambda(LambdaDef),
    /// Verb derived by an adverb, e.g. `+/` (sum-over).
    AdverbApply {
        /// Underlying verb (operator glyph or expression).
        verb: Box<Expr>,
        /// The adverb.
        adverb: Adverb,
    },
    /// Assignment `name: expr` (local/session) or `name:: expr` (global).
    Assign {
        /// Target variable name.
        name: String,
        /// `true` for `::` (always writes the global/server scope).
        global: bool,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Indexed assignment `name[index]: expr`.
    IndexAssign {
        /// Target variable name.
        name: String,
        /// Index expressions.
        indices: Vec<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Explicit return `:expr` inside a function body.
    Return(Box<Expr>),
    /// A q-sql template.
    Template(TemplateExpr),
    /// Table literal `([] c1:e1; c2:e2)`; `keys` holds the key columns of
    /// keyed-table literals `([k:e] v:e)`.
    TableLit {
        /// Key columns (name, expression).
        keys: Vec<(String, Expr)>,
        /// Value columns (name, expression).
        columns: Vec<(String, Expr)>,
    },
    /// `$[cond;then;else]` conditional evaluation.
    Cond(Vec<Expr>),
    /// Empty expression (e.g. between consecutive semicolons).
    Empty,
}

impl Expr {
    /// Convenience: build a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: build a long literal.
    pub fn long(v: i64) -> Expr {
        Expr::Lit(Value::long(v))
    }

    /// Convenience: build a symbol literal.
    pub fn symbol(s: impl Into<String>) -> Expr {
        Expr::Lit(Value::symbol(s))
    }

    /// Convenience: build a dyadic application.
    pub fn binary(op: impl Into<String>, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op: op.into(), lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Does this expression (recursively) contain an assignment? Used by
    /// the Cross Compiler to decide whether eager materialization is
    /// needed before algebrizing subsequent statements (§4.3).
    pub fn has_assignment(&self) -> bool {
        match self {
            Expr::Assign { .. } | Expr::IndexAssign { .. } => true,
            Expr::Lit(_) | Expr::Var(_) | Expr::Empty => false,
            Expr::List(items) => items.iter().any(Expr::has_assignment),
            Expr::Unary { arg, .. } => arg.has_assignment(),
            Expr::Binary { lhs, rhs, .. } => lhs.has_assignment() || rhs.has_assignment(),
            Expr::Call { func, args } => {
                func.has_assignment()
                    || args.iter().flatten().any(Expr::has_assignment)
            }
            Expr::Apply { func, arg } => func.has_assignment() || arg.has_assignment(),
            Expr::Lambda(_) => false,
            Expr::AdverbApply { verb, .. } => verb.has_assignment(),
            Expr::Return(e) => e.has_assignment(),
            Expr::Template(t) => {
                t.columns.iter().any(|(_, e)| e.has_assignment())
                    || t.by.iter().any(|(_, e)| e.has_assignment())
                    || t.from.has_assignment()
                    || t.predicates.iter().any(Expr::has_assignment)
            }
            Expr::TableLit { keys, columns } => {
                keys.iter().any(|(_, e)| e.has_assignment())
                    || columns.iter().any(|(_, e)| e.has_assignment())
            }
            Expr::Cond(items) => items.iter().any(Expr::has_assignment),
        }
    }

    /// Collect free variable references into `out` (no scoping analysis —
    /// lambda parameters are *not* subtracted; the binder handles scopes).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(n) => out.push(n.clone()),
            Expr::Lit(_) | Expr::Empty => {}
            Expr::List(items) | Expr::Cond(items) => {
                items.iter().for_each(|e| e.collect_vars(out))
            }
            Expr::Unary { arg, .. } => arg.collect_vars(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Call { func, args } => {
                func.collect_vars(out);
                args.iter().flatten().for_each(|e| e.collect_vars(out));
            }
            Expr::Apply { func, arg } => {
                func.collect_vars(out);
                arg.collect_vars(out);
            }
            Expr::Lambda(l) => l.body.iter().for_each(|e| e.collect_vars(out)),
            Expr::AdverbApply { verb, .. } => verb.collect_vars(out),
            Expr::Assign { value, .. } => value.collect_vars(out),
            Expr::IndexAssign { indices, value, .. } => {
                indices.iter().for_each(|e| e.collect_vars(out));
                value.collect_vars(out);
            }
            Expr::Return(e) => e.collect_vars(out),
            Expr::Template(t) => {
                t.columns.iter().for_each(|(_, e)| e.collect_vars(out));
                t.by.iter().for_each(|(_, e)| e.collect_vars(out));
                t.from.collect_vars(out);
                t.predicates.iter().for_each(|e| e.collect_vars(out));
            }
            Expr::TableLit { keys, columns } => {
                keys.iter().for_each(|(_, e)| e.collect_vars(out));
                columns.iter().for_each(|(_, e)| e.collect_vars(out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_assignment_detects_nested() {
        let e = Expr::binary(
            "+",
            Expr::long(1),
            Expr::Assign { name: "x".into(), global: false, value: Box::new(Expr::long(2)) },
        );
        assert!(e.has_assignment());
        assert!(!Expr::long(1).has_assignment());
    }

    #[test]
    fn lambda_bodies_do_not_leak_assignments() {
        // A lambda *containing* an assignment only assigns when invoked;
        // defining it has no side effect.
        let lam = Expr::Lambda(LambdaDef {
            params: vec!["x".into()],
            body: vec![Expr::Assign {
                name: "y".into(),
                global: false,
                value: Box::new(Expr::long(1)),
            }],
            source: "{[x] y:1}".into(),
        });
        assert!(!lam.has_assignment());
    }

    #[test]
    fn collect_vars_walks_templates() {
        let t = Expr::Template(TemplateExpr {
            kind: SelectKind::Select,
            columns: vec![(None, Expr::var("Price"))],
            by: vec![],
            from: Box::new(Expr::var("trades")),
            predicates: vec![Expr::binary("=", Expr::var("Sym"), Expr::symbol("GOOG"))],
        });
        let mut vars = vec![];
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec!["Price".to_string(), "trades".into(), "Sym".into()]);
    }
}
