//! Tokenizer for Q source text.
//!
//! Q's lexical grammar packs a lot into very few characters: numeric
//! literals carry type suffixes (`1b`, `0x1f`, `2h`, `3i`, `4j`, `5e`,
//! `6f`), temporal literals look like arithmetic (`2016.06.26`,
//! `09:30:00.000`), backtick symbols glue together into symbol lists
//! (`` `Symbol`Time``), and `/` is *either* the `over` adverb or a comment
//! depending on preceding whitespace. The lexer resolves all of this so the
//! parser sees clean tokens.

use crate::ast::Adverb;
use crate::error::{QError, QErrorKind, QResult};
use crate::temporal;
use crate::value::{Atom, Value};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric or temporal literal, already converted to a typed value.
    Num(Value),
    /// One or more adjacent backtick symbols: `` `a`` or `` `a`b`c``.
    Sym(Vec<String>),
    /// A double-quoted string (a Q char vector).
    Str(String),
    /// An identifier (variable, builtin, or q-sql keyword).
    Ident(String),
    /// An operator glyph: `+ - * % & | ^ = <> < <= > >= ~ ! ? @ . # _ $ ,`.
    Op(&'static str),
    /// An adverb.
    Adverb(Adverb),
    /// `:` — assignment / return / column naming.
    Colon,
    /// `::` — global assignment / generic null.
    DoubleColon,
    /// `;`
    Semi,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
}

/// A token with position metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Byte offset of the first character in the source.
    pub offset: usize,
    /// Whether whitespace separated this token from the previous one.
    /// Q grammar is whitespace-sensitive: `x -1` applies `x` to `-1`
    /// while `x-1` subtracts.
    pub space_before: bool,
}

/// Does this token kind terminate a *noun* (so that a following `-digit`
/// without whitespace means subtraction, and `/` means the over adverb)?
fn ends_noun(tok: &Tok) -> bool {
    matches!(
        tok,
        Tok::Num(_) | Tok::Sym(_) | Tok::Str(_) | Tok::Ident(_) | Tok::RParen | Tok::RBracket | Tok::RBrace
    )
}

/// Tokenize Q source text.
pub fn lex(src: &str) -> QResult<Vec<Token>> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, out: Vec::new(), space: false }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
    space: bool,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn push(&mut self, tok: Tok, offset: usize) {
        self.out.push(Token { tok, offset, space_before: self.space });
        self.space = false;
    }

    fn prev_ends_noun(&self) -> bool {
        self.out.last().map(|t| ends_noun(&t.tok)).unwrap_or(false)
    }

    fn at_line_start(&self) -> bool {
        let mut i = self.pos;
        while i > 0 {
            match self.bytes[i - 1] {
                b'\n' => return true,
                b' ' | b'\t' | b'\r' => i -= 1,
                _ => return false,
            }
        }
        true
    }

    fn run(mut self) -> QResult<Vec<Token>> {
        while let Some(c) = self.peek() {
            let start = self.pos;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                    self.space = true;
                }
                b'/' => {
                    // Comment when preceded by whitespace or at line start;
                    // otherwise the over adverb (or /: each-right).
                    if self.space || self.at_line_start() {
                        while let Some(ch) = self.peek() {
                            if ch == b'\n' {
                                break;
                            }
                            self.pos += 1;
                        }
                    } else if self.peek_at(1) == Some(b':') {
                        self.pos += 2;
                        self.push(Tok::Adverb(Adverb::EachRight), start);
                    } else {
                        self.pos += 1;
                        self.push(Tok::Adverb(Adverb::Over), start);
                    }
                }
                b'\\' => {
                    if self.peek_at(1) == Some(b':') {
                        self.pos += 2;
                        self.push(Tok::Adverb(Adverb::EachLeft), start);
                    } else {
                        self.pos += 1;
                        self.push(Tok::Adverb(Adverb::Scan), start);
                    }
                }
                b'\'' => {
                    if self.peek_at(1) == Some(b':') {
                        self.pos += 2;
                        self.push(Tok::Adverb(Adverb::EachPrior), start);
                    } else {
                        self.pos += 1;
                        self.push(Tok::Adverb(Adverb::Each), start);
                    }
                }
                b'`' => self.lex_symbols(start)?,
                b'"' => self.lex_string(start)?,
                b'0'..=b'9' => self.lex_number(start)?,
                b'.' if self.peek_at(1).map(|c| c.is_ascii_digit()).unwrap_or(false) => {
                    self.lex_number(start)?
                }
                b'-' => {
                    // Negative literal iff a noun does NOT directly precede
                    // and a digit directly follows: `(-1)`, `x -1`, `1 -2 3`
                    // (after whitespace) vs `x-1` subtraction.
                    let digit_next =
                        self.peek_at(1).map(|c| c.is_ascii_digit() || c == b'.').unwrap_or(false);
                    let noun_before = self.prev_ends_noun() && !self.space;
                    if digit_next && !noun_before {
                        self.pos += 1;
                        self.lex_number_negated(start)?;
                    } else {
                        self.pos += 1;
                        self.push(Tok::Op("-"), start);
                    }
                }
                b':' => {
                    if self.peek_at(1) == Some(b':') {
                        self.pos += 2;
                        self.push(Tok::DoubleColon, start);
                    } else {
                        self.pos += 1;
                        self.push(Tok::Colon, start);
                    }
                }
                b'<' => {
                    match self.peek_at(1) {
                        Some(b'>') => {
                            self.pos += 2;
                            self.push(Tok::Op("<>"), start);
                        }
                        Some(b'=') => {
                            self.pos += 2;
                            self.push(Tok::Op("<="), start);
                        }
                        _ => {
                            self.pos += 1;
                            self.push(Tok::Op("<"), start);
                        }
                    }
                }
                b'>' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.pos += 2;
                        self.push(Tok::Op(">="), start);
                    } else {
                        self.pos += 1;
                        self.push(Tok::Op(">"), start);
                    }
                }
                b'+' | b'*' | b'%' | b'&' | b'|' | b'^' | b'=' | b'~' | b'!' | b'?' | b'@'
                | b'#' | b'$' | b',' => {
                    self.pos += 1;
                    let op = match c {
                        b'+' => "+",
                        b'*' => "*",
                        b'%' => "%",
                        b'&' => "&",
                        b'|' => "|",
                        b'^' => "^",
                        b'=' => "=",
                        b'~' => "~",
                        b'!' => "!",
                        b'?' => "?",
                        b'@' => "@",
                        b'#' => "#",
                        b'$' => "$",
                        b',' => ",",
                        _ => unreachable!(),
                    };
                    self.push(Tok::Op(op), start);
                }
                b'.' => {
                    self.pos += 1;
                    self.push(Tok::Op("."), start);
                }
                b'_' => {
                    self.pos += 1;
                    self.push(Tok::Op("_"), start);
                }
                b';' => {
                    self.pos += 1;
                    self.push(Tok::Semi, start);
                }
                b'(' => {
                    self.pos += 1;
                    self.push(Tok::LParen, start);
                }
                b')' => {
                    self.pos += 1;
                    self.push(Tok::RParen, start);
                }
                b'[' => {
                    self.pos += 1;
                    self.push(Tok::LBracket, start);
                }
                b']' => {
                    self.pos += 1;
                    self.push(Tok::RBracket, start);
                }
                b'{' => {
                    self.pos += 1;
                    self.push(Tok::LBrace, start);
                }
                b'}' => {
                    self.pos += 1;
                    self.push(Tok::RBrace, start);
                }
                c if c.is_ascii_alphabetic() => self.lex_ident(start),
                other => {
                    return Err(QError::new(
                        QErrorKind::Lex,
                        format!("unexpected character {:?}", other as char),
                    )
                    .at(start))
                }
            }
        }
        Ok(self.out)
    }

    fn lex_ident(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        self.push(Tok::Ident(text.to_string()), start);
    }

    fn lex_symbols(&mut self, start: usize) -> QResult<()> {
        let mut syms = Vec::new();
        while self.peek() == Some(b'`') {
            self.pos += 1;
            let s = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            syms.push(self.src[s..self.pos].to_string());
        }
        self.push(Tok::Sym(syms), start);
        Ok(())
    }

    fn lex_string(&mut self, start: usize) -> QResult<()> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(QError::new(QErrorKind::Lex, "unterminated string").at(start));
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        QError::new(QErrorKind::Lex, "unterminated escape").at(self.pos)
                    })?;
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'"' => '"',
                        b'\\' => '\\',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.push(Tok::Str(s), start);
        Ok(())
    }

    fn lex_number_negated(&mut self, start: usize) -> QResult<()> {
        let n = self.out.len();
        self.lex_number(self.pos)?;
        // Negate the literal we just produced, in place.
        if let Some(Token { tok: Tok::Num(v), offset, .. }) = self.out.last_mut() {
            *offset = start;
            *v = negate(std::mem::take(v))
                .map_err(|e| e.at(start))?;
        }
        debug_assert_eq!(self.out.len(), n + 1);
        Ok(())
    }

    /// Scan a numeric/temporal literal. Consumes digits plus the characters
    /// that can legally continue one: `.` (floats, dates), `:` followed by a
    /// digit (times), `D` (timestamp separator), `x` (hex) and type-suffix
    /// letters.
    fn lex_number(&mut self, start: usize) -> QResult<()> {
        // Hex byte (vector): 0x...
        if self.peek() == Some(b'0') && self.peek_at(1) == Some(b'x') {
            self.pos += 2;
            let s = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let hex = &self.src[s..self.pos];
            if hex.is_empty() || !hex.len().is_multiple_of(2) {
                return Err(QError::new(QErrorKind::Lex, "malformed byte literal").at(start));
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                bytes.push(u8::from_str_radix(&hex[i..i + 2], 16).unwrap());
            }
            let v = if bytes.len() == 1 {
                Value::Atom(Atom::Byte(bytes[0]))
            } else {
                Value::Bytes(bytes)
            };
            self.push(Tok::Num(v), start);
            return Ok(());
        }

        let s = self.pos;
        while let Some(c) = self.peek() {
            let continues = c.is_ascii_digit()
                || c == b'.'
                || c == b'D'
                || (c == b':' && self.peek_at(1).map(|n| n.is_ascii_digit()).unwrap_or(false))
                || matches!(c, b'b' | b'h' | b'i' | b'j' | b'e' | b'f' | b'n' | b'N' | b'p' | b't' | b'd' | b'W' | b'w');
            if continues {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[s..self.pos];
        let v = classify_number(text).ok_or_else(|| {
            QError::new(QErrorKind::Lex, format!("malformed numeric literal {text:?}")).at(start)
        })?;
        self.push(Tok::Num(v), start);
        Ok(())
    }
}

/// Negate a numeric literal value.
fn negate(v: Value) -> QResult<Value> {
    Ok(match v {
        Value::Atom(Atom::Long(x)) => Value::Atom(Atom::Long(-x)),
        Value::Atom(Atom::Int(x)) => Value::Atom(Atom::Int(-x)),
        Value::Atom(Atom::Short(x)) => Value::Atom(Atom::Short(-x)),
        Value::Atom(Atom::Real(x)) => Value::Atom(Atom::Real(-x)),
        Value::Atom(Atom::Float(x)) => Value::Atom(Atom::Float(-x)),
        other => {
            return Err(QError::new(
                QErrorKind::Lex,
                format!("cannot negate {}", other.type_name()),
            ))
        }
    })
}

/// Classify a scanned numeric/temporal literal into a typed [`Value`].
fn classify_number(text: &str) -> Option<Value> {
    // Nulls and infinities.
    match text {
        "0N" | "0Nj" => return Some(Value::Atom(Atom::Long(i64::MIN))),
        "0Ni" => return Some(Value::Atom(Atom::Int(i32::MIN))),
        "0Nh" => return Some(Value::Atom(Atom::Short(i16::MIN))),
        "0n" | "0Nf" => return Some(Value::Atom(Atom::Float(f64::NAN))),
        "0Ne" => return Some(Value::Atom(Atom::Real(f32::NAN))),
        "0Nd" => return Some(Value::Atom(Atom::Date(i32::MIN))),
        "0Nt" => return Some(Value::Atom(Atom::Time(i32::MIN))),
        "0Np" => return Some(Value::Atom(Atom::Timestamp(i64::MIN))),
        "0W" | "0Wj" => return Some(Value::Atom(Atom::Long(i64::MAX))),
        "0Wi" => return Some(Value::Atom(Atom::Int(i32::MAX))),
        "0w" | "0Wf" => return Some(Value::Atom(Atom::Float(f64::INFINITY))),
        _ => {}
    }

    // Timestamp: contains 'D'.
    if text.contains('D') {
        return temporal::parse_timestamp(text).map(|ns| Value::Atom(Atom::Timestamp(ns)));
    }
    // Time: contains ':'.
    if text.contains(':') {
        let core = text.strip_suffix('t').unwrap_or(text);
        return temporal::parse_time(core).map(|ms| Value::Atom(Atom::Time(ms)));
    }
    // Date: d.d.d (two dots, no suffix other than optional 'd').
    if text.matches('.').count() == 2 && !text.ends_with('f') {
        let core = text.strip_suffix('d').unwrap_or(text);
        if let Some(days) = temporal::parse_date(core) {
            return Some(Value::Atom(Atom::Date(days)));
        }
    }

    // Boolean atom/vector: all 0/1 digits with a 'b' suffix.
    if let Some(core) = text.strip_suffix('b') {
        if !core.is_empty() && core.bytes().all(|c| c == b'0' || c == b'1') {
            let bits: Vec<bool> = core.bytes().map(|c| c == b'1').collect();
            return Some(if bits.len() == 1 {
                Value::Atom(Atom::Bool(bits[0]))
            } else {
                Value::Bools(bits)
            });
        }
        return None;
    }

    // Suffixed integers/floats.
    if let Some(core) = text.strip_suffix('h') {
        return core.parse::<i16>().ok().map(|v| Value::Atom(Atom::Short(v)));
    }
    if let Some(core) = text.strip_suffix('i') {
        return core.parse::<i32>().ok().map(|v| Value::Atom(Atom::Int(v)));
    }
    if let Some(core) = text.strip_suffix('j') {
        return core.parse::<i64>().ok().map(|v| Value::Atom(Atom::Long(v)));
    }
    if let Some(core) = text.strip_suffix('e') {
        return core.parse::<f32>().ok().map(|v| Value::Atom(Atom::Real(v)));
    }
    if let Some(core) = text.strip_suffix('f') {
        return core.parse::<f64>().ok().map(|v| Value::Atom(Atom::Float(v)));
    }
    if let Some(core) = text.strip_suffix('d') {
        // `5d` style day literal → date offset; treat as long for arithmetic.
        return core.parse::<i64>().ok().map(|v| Value::Atom(Atom::Long(v)));
    }

    // Unsuffixed: float if it has a dot, else long.
    if text.contains('.') {
        text.parse::<f64>().ok().map(|v| Value::Atom(Atom::Float(v)))
    } else {
        text.parse::<i64>().ok().map(|v| Value::Atom(Atom::Long(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn integers_default_to_long() {
        assert_eq!(toks("42"), vec![Tok::Num(Value::long(42))]);
    }

    #[test]
    fn typed_suffixes() {
        assert_eq!(toks("1i"), vec![Tok::Num(Value::Atom(Atom::Int(1)))]);
        assert_eq!(toks("1h"), vec![Tok::Num(Value::Atom(Atom::Short(1)))]);
        assert_eq!(toks("1j"), vec![Tok::Num(Value::Atom(Atom::Long(1)))]);
        assert_eq!(toks("1.5"), vec![Tok::Num(Value::float(1.5))]);
        assert_eq!(toks("2f"), vec![Tok::Num(Value::float(2.0))]);
        assert_eq!(toks("1b"), vec![Tok::Num(Value::bool(true))]);
    }

    #[test]
    fn boolean_vectors() {
        assert_eq!(toks("101b"), vec![Tok::Num(Value::Bools(vec![true, false, true]))]);
    }

    #[test]
    fn byte_literals() {
        assert_eq!(toks("0x1f"), vec![Tok::Num(Value::Atom(Atom::Byte(0x1f)))]);
        assert_eq!(toks("0x0102"), vec![Tok::Num(Value::Bytes(vec![1, 2]))]);
        assert!(lex("0x1").is_err());
    }

    #[test]
    fn nulls() {
        assert_eq!(toks("0N"), vec![Tok::Num(Value::Atom(Atom::Long(i64::MIN)))]);
        assert!(matches!(&toks("0n")[0], Tok::Num(Value::Atom(Atom::Float(f))) if f.is_nan()));
        assert_eq!(toks("0Nd"), vec![Tok::Num(Value::Atom(Atom::Date(i32::MIN)))]);
    }

    #[test]
    fn dates_times_timestamps() {
        let d = temporal::parse_date("2016.06.26").unwrap();
        assert_eq!(toks("2016.06.26"), vec![Tok::Num(Value::Atom(Atom::Date(d)))]);
        let t = temporal::parse_time("09:30:00.000").unwrap();
        assert_eq!(toks("09:30:00.000"), vec![Tok::Num(Value::Atom(Atom::Time(t)))]);
        let ts = temporal::parse_timestamp("2016.06.26D09:30:00").unwrap();
        assert_eq!(toks("2016.06.26D09:30:00"), vec![Tok::Num(Value::Atom(Atom::Timestamp(ts)))]);
    }

    #[test]
    fn symbols_merge() {
        assert_eq!(toks("`GOOG"), vec![Tok::Sym(vec!["GOOG".into()])]);
        assert_eq!(toks("`Symbol`Time"), vec![Tok::Sym(vec!["Symbol".into(), "Time".into()])]);
        // Separated by whitespace -> two tokens.
        assert_eq!(
            toks("`a `b"),
            vec![Tok::Sym(vec!["a".into()]), Tok::Sym(vec!["b".into()])]
        );
        // Empty symbol.
        assert_eq!(toks("`"), vec![Tok::Sym(vec!["".into()])]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks(r#""ab\nc""#), vec![Tok::Str("ab\nc".into())]);
        assert_eq!(toks(r#""say \"hi\"""#), vec![Tok::Str("say \"hi\"".into())]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn minus_disambiguation() {
        // x-1: subtraction.
        assert_eq!(
            toks("x-1"),
            vec![Tok::Ident("x".into()), Tok::Op("-"), Tok::Num(Value::long(1))]
        );
        // x -1: negative literal (application).
        assert_eq!(
            toks("x -1"),
            vec![Tok::Ident("x".into()), Tok::Num(Value::long(-1))]
        );
        // (-1): negative literal after opener.
        assert_eq!(
            toks("(-1)"),
            vec![Tok::LParen, Tok::Num(Value::long(-1)), Tok::RParen]
        );
        // 3-1: subtraction.
        assert_eq!(
            toks("3-1"),
            vec![Tok::Num(Value::long(3)), Tok::Op("-"), Tok::Num(Value::long(1))]
        );
    }

    #[test]
    fn slash_is_comment_after_space_and_adverb_otherwise() {
        assert_eq!(
            toks("1 / this is a comment"),
            vec![Tok::Num(Value::long(1))]
        );
        assert_eq!(
            toks("+/"),
            vec![Tok::Op("+"), Tok::Adverb(Adverb::Over)]
        );
        assert_eq!(toks("/ whole line comment"), vec![]);
    }

    #[test]
    fn adverbs() {
        assert_eq!(toks("+/:"), vec![Tok::Op("+"), Tok::Adverb(Adverb::EachRight)]);
        assert_eq!(toks("+\\:"), vec![Tok::Op("+"), Tok::Adverb(Adverb::EachLeft)]);
        assert_eq!(toks("+'"), vec![Tok::Op("+"), Tok::Adverb(Adverb::Each)]);
    }

    #[test]
    fn colons() {
        assert_eq!(toks("x:1"), vec![Tok::Ident("x".into()), Tok::Colon, Tok::Num(Value::long(1))]);
        assert_eq!(
            toks("x::1"),
            vec![Tok::Ident("x".into()), Tok::DoubleColon, Tok::Num(Value::long(1))]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a<>b"),
            vec![Tok::Ident("a".into()), Tok::Op("<>"), Tok::Ident("b".into())]
        );
        assert_eq!(
            toks("a<=b"),
            vec![Tok::Ident("a".into()), Tok::Op("<="), Tok::Ident("b".into())]
        );
        assert_eq!(
            toks("a>=b"),
            vec![Tok::Ident("a".into()), Tok::Op(">="), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn space_before_flag_tracks_whitespace() {
        let ts = lex("f [1]").unwrap();
        assert!(ts[1].space_before);
        let ts = lex("f[1]").unwrap();
        assert!(!ts[1].space_before);
    }

    #[test]
    fn time_vs_assignment_colon() {
        // `t:09` must lex as ident colon number, not a time literal.
        let ts = toks("t:09");
        assert_eq!(ts[0], Tok::Ident("t".into()));
        assert_eq!(ts[1], Tok::Colon);
    }

    #[test]
    fn offsets_recorded() {
        let ts = lex("ab + cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
        assert_eq!(ts[2].offset, 5);
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("§").unwrap_err();
        assert_eq!(err.kind, QErrorKind::Lex);
    }
}
