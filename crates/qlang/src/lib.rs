//! # qlang — the Q language substrate
//!
//! This crate implements the front half of the kdb+/Q language surface that
//! Hyper-Q virtualizes (paper §2.2, §3.2.1):
//!
//! * [`value`] — the Q data model: atoms, *typed* vectors (Q is
//!   column-oriented, so homogeneous lists are stored unboxed), dictionaries,
//!   tables and keyed tables. Ordering is a first-class citizen: every list
//!   is ordered and every table carries an implicit row order.
//! * [`temporal`] — Q temporal types (dates are days since 2000.01.01,
//!   timestamps are nanoseconds since 2000.01.01, times are milliseconds
//!   since midnight) and their parsing/formatting.
//! * [`lexer`] — tokenizer for Q's terse syntax: typed numeric literals
//!   (`1b`, `0x1f`, `2h`, `3i`, `4j`, `5e`, `6.5`), backtick symbols
//!   (`` `GOOG``), temporal literals (`2016.06.26`, `09:30:00.000`),
//!   strings, adverbs and the full verb set.
//! * [`ast`] — the abstract syntax tree. Per the paper, the parser is
//!   deliberately *lightweight*: it only builds an untyped AST and defers
//!   all type inference and name resolution to the binder (the Algebrizer).
//! * [`parser`] — a right-to-left, no-precedence expression parser matching
//!   Q's evaluation order, with special handling for the q-sql templates
//!   (`select`/`update`/`delete`/`exec`), function literals, table literals
//!   and variable assignment.
//!
//! Two-valued logic, typed nulls and right-to-left evaluation — the exact
//! semantic mismatches the paper's Xformer must bridge — are faithfully
//! modeled here so the rest of the stack has something real to translate.
//!
//! # Example
//!
//! ```
//! use qlang::{parse_one, Expr};
//!
//! // The paper's Example 2: an as-of join call.
//! let ast = parse_one("aj[`Symbol`Time; trades; quotes]").unwrap();
//! assert!(matches!(ast, Expr::Call { .. }));
//!
//! // Two-valued logic: Q nulls compare equal.
//! use qlang::value::Atom;
//! assert!(Atom::Long(i64::MIN).q_eq(&Atom::Long(i64::MIN)));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod temporal;
pub mod value;

pub use ast::{Adverb, Expr, SelectKind, TemplateExpr};
pub use error::{QError, QResult};
pub use parser::{parse, parse_one};
pub use value::{Atom, Dict, KeyedTable, Table, Value};
