//! QIPC connection handshake.
//!
//! Paper §4.2: "When establishing a connection using QIPC specifications,
//! a client sends Hyper-Q a null-terminated ASCII string
//! `username:passwordN` where N is a single byte denoting client version.
//! If Hyper-Q accepts the credentials, it sends back a single byte
//! response. Otherwise, it closes the connection immediately."

use qlang::{QError, QResult};

/// Parsed client handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeReply {
    /// User name.
    pub user: String,
    /// Password (may be empty).
    pub password: String,
    /// Client capability version byte.
    pub version: u8,
}

/// Build the client's handshake bytes.
pub fn client_handshake(user: &str, password: &str, version: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(user.len() + password.len() + 3);
    out.extend_from_slice(user.as_bytes());
    out.push(b':');
    out.extend_from_slice(password.as_bytes());
    out.push(version);
    out.push(0);
    out
}

/// Parse a handshake from the head of `buf`. Returns the parse and the
/// consumed byte count, or `None` if more bytes are needed.
pub fn parse_handshake(buf: &[u8]) -> QResult<Option<(HandshakeReply, usize)>> {
    let Some(nul) = buf.iter().position(|&b| b == 0) else {
        // No terminator yet; cap runaway garbage.
        if buf.len() > 1024 {
            return Err(QError::length("handshake too long"));
        }
        return Ok(None);
    };
    if nul == 0 {
        return Err(QError::length("empty handshake"));
    }
    let body = &buf[..nul];
    // Last byte before the NUL is the version.
    let (creds, version) = body.split_at(body.len() - 1);
    let creds = String::from_utf8_lossy(creds);
    let (user, password) = match creds.split_once(':') {
        Some((u, p)) => (u.to_string(), p.to_string()),
        None => (creds.into_owned(), String::new()),
    };
    Ok(Some((HandshakeReply { user, password, version: version[0] }, nul + 1)))
}

/// The single capability byte the server replies with on success.
/// kdb+ answers with the negotiated protocol version; 3 supports
/// timestamps and the types Hyper-Q emits.
pub const SERVER_CAPABILITY: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_round_trip() {
        let bytes = client_handshake("trader", "s3cret", 3);
        let (parsed, used) = parse_handshake(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.user, "trader");
        assert_eq!(parsed.password, "s3cret");
        assert_eq!(parsed.version, 3);
    }

    #[test]
    fn empty_password_allowed() {
        let bytes = client_handshake("trader", "", 3);
        let (parsed, _) = parse_handshake(&bytes).unwrap().unwrap();
        assert_eq!(parsed.user, "trader");
        assert_eq!(parsed.password, "");
    }

    #[test]
    fn incomplete_handshake_waits() {
        let bytes = client_handshake("trader", "pw", 3);
        assert!(parse_handshake(&bytes[..3]).unwrap().is_none());
    }

    #[test]
    fn oversized_junk_rejected() {
        let junk = vec![b'x'; 2000];
        assert!(parse_handshake(&junk).is_err());
    }

    #[test]
    fn no_colon_means_user_only() {
        let mut bytes = b"justuser".to_vec();
        bytes.push(3);
        bytes.push(0);
        let (parsed, _) = parse_handshake(&bytes).unwrap().unwrap();
        assert_eq!(parsed.user, "justuser");
        assert_eq!(parsed.password, "");
        assert_eq!(parsed.version, 3);
    }
}
