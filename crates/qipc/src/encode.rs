//! QIPC serialization: Q values to bytes (little-endian).
//!
//! Layout follows the kdb+ IPC object format: a leading type byte
//! (negative = atom, positive = typed vector, 0 = general list,
//! 98 = table, 99 = dict, 101 = generic null), vectors carrying an
//! attribute byte and a 4-byte length, and the column-oriented table
//! encoding of paper Figure 5 (`98 00 99 <symbol vector of column
//! names> <general list of column vectors>`).

use crate::Message;
use bytes::{BufMut, BytesMut};
use qlang::value::{Atom, Value};
use qlang::{QError, QResult};

/// Serialize one value into `out`.
pub fn encode_value(v: &Value, out: &mut BytesMut) -> QResult<()> {
    match v {
        Value::Atom(a) => encode_atom(a, out),
        Value::Bools(xs) => {
            vec_header(1, xs.len(), out);
            for &b in xs {
                out.put_u8(b as u8);
            }
            Ok(())
        }
        Value::Bytes(xs) => {
            vec_header(4, xs.len(), out);
            out.extend_from_slice(xs);
            Ok(())
        }
        Value::Shorts(xs) => {
            vec_header(5, xs.len(), out);
            for &x in xs {
                out.put_i16_le(x);
            }
            Ok(())
        }
        Value::Ints(xs) => {
            vec_header(6, xs.len(), out);
            for &x in xs {
                out.put_i32_le(x);
            }
            Ok(())
        }
        Value::Longs(xs) => {
            vec_header(7, xs.len(), out);
            for &x in xs {
                out.put_i64_le(x);
            }
            Ok(())
        }
        Value::Reals(xs) => {
            vec_header(8, xs.len(), out);
            for &x in xs {
                out.put_f32_le(x);
            }
            Ok(())
        }
        Value::Floats(xs) => {
            vec_header(9, xs.len(), out);
            for &x in xs {
                out.put_f64_le(x);
            }
            Ok(())
        }
        Value::Chars(s) => {
            let bytes = s.as_bytes();
            vec_header(10, bytes.len(), out);
            out.extend_from_slice(bytes);
            Ok(())
        }
        Value::Symbols(xs) => {
            vec_header(11, xs.len(), out);
            for s in xs {
                out.extend_from_slice(s.as_bytes());
                out.put_u8(0);
            }
            Ok(())
        }
        Value::Timestamps(xs) => {
            vec_header(12, xs.len(), out);
            for &x in xs {
                out.put_i64_le(x);
            }
            Ok(())
        }
        Value::Dates(xs) => {
            vec_header(14, xs.len(), out);
            for &x in xs {
                out.put_i32_le(x);
            }
            Ok(())
        }
        Value::Times(xs) => {
            vec_header(19, xs.len(), out);
            for &x in xs {
                out.put_i32_le(x);
            }
            Ok(())
        }
        Value::Mixed(items) => {
            vec_header(0, items.len(), out);
            for item in items {
                encode_value(item, out)?;
            }
            Ok(())
        }
        Value::Dict(d) => {
            out.put_i8(99);
            encode_value(&d.keys, out)?;
            encode_value(&d.values, out)
        }
        Value::Table(t) => {
            out.put_i8(98);
            out.put_u8(0); // attributes
            out.put_i8(99);
            encode_value(&Value::Symbols(t.names.clone()), out)?;
            encode_value(&Value::Mixed(t.columns.clone()), out)
        }
        Value::KeyedTable(k) => {
            // Dict of key table to value table.
            out.put_i8(99);
            encode_value(&Value::Table(Box::new(k.key.clone())), out)?;
            encode_value(&Value::Table(Box::new(k.value.clone())), out)
        }
        Value::Nil => {
            out.put_i8(101);
            out.put_u8(0);
            Ok(())
        }
        Value::Lambda(def) => {
            // Functions travel as their source text (type 100: context +
            // char vector body).
            out.put_i8(100);
            out.put_u8(0); // empty context name
            encode_value(&Value::Chars(def.source.clone()), out)
        }
    }
}

fn vec_header(ty: i8, len: usize, out: &mut BytesMut) {
    out.put_i8(ty);
    out.put_u8(0); // attribute byte (sorted/unique markers unused here)
    out.put_i32_le(len as i32);
}

fn encode_atom(a: &Atom, out: &mut BytesMut) -> QResult<()> {
    match a {
        Atom::Bool(b) => {
            out.put_i8(-1);
            out.put_u8(*b as u8);
        }
        Atom::Byte(b) => {
            out.put_i8(-4);
            out.put_u8(*b);
        }
        Atom::Short(x) => {
            out.put_i8(-5);
            out.put_i16_le(*x);
        }
        Atom::Int(x) => {
            out.put_i8(-6);
            out.put_i32_le(*x);
        }
        Atom::Long(x) => {
            out.put_i8(-7);
            out.put_i64_le(*x);
        }
        Atom::Real(x) => {
            out.put_i8(-8);
            out.put_f32_le(*x);
        }
        Atom::Float(x) => {
            out.put_i8(-9);
            out.put_f64_le(*x);
        }
        Atom::Char(c) => {
            out.put_i8(-10);
            let mut buf = [0u8; 4];
            let encoded = c.encode_utf8(&mut buf);
            if encoded.len() != 1 {
                return Err(QError::type_err("QIPC chars are single bytes"));
            }
            out.put_u8(encoded.as_bytes()[0]);
        }
        Atom::Symbol(s) => {
            out.put_i8(-11);
            out.extend_from_slice(s.as_bytes());
            out.put_u8(0);
        }
        Atom::Timestamp(x) => {
            out.put_i8(-12);
            out.put_i64_le(*x);
        }
        Atom::Date(x) => {
            out.put_i8(-14);
            out.put_i32_le(*x);
        }
        Atom::Time(x) => {
            out.put_i8(-19);
            out.put_i32_le(*x);
        }
    }
    Ok(())
}

/// Encode a complete message, compressing payloads above the threshold
/// (falls back to the plain encoding when compression would not shrink).
///
/// Compressed layout: header byte 2 set to 1, total length = compressed
/// message length, then 4 bytes of uncompressed total length, then the
/// compressed payload stream.
pub fn encode_message_compressed(msg: &Message) -> QResult<Vec<u8>> {
    let mut payload = BytesMut::new();
    encode_value(&msg.value, &mut payload)?;
    if payload.len() >= crate::compress::COMPRESSION_THRESHOLD {
        if let Some(compressed) = crate::compress::compress(&payload) {
            let total = 12 + compressed.len();
            let mut out = Vec::with_capacity(total);
            out.push(1); // little endian
            out.push(msg.msg_type.as_byte());
            out.push(1); // compressed
            out.push(0);
            out.extend_from_slice(&(total as u32).to_le_bytes());
            out.extend_from_slice(&((8 + payload.len()) as u32).to_le_bytes());
            out.extend_from_slice(&compressed);
            return Ok(out);
        }
    }
    encode_message(msg)
}

/// Encode a complete message: 8-byte header then the payload object.
pub fn encode_message(msg: &Message) -> QResult<Vec<u8>> {
    let mut payload = BytesMut::new();
    encode_value(&msg.value, &mut payload)?;
    let total = 8 + payload.len();
    let mut out = Vec::with_capacity(total);
    out.push(1); // little endian
    out.push(msg.msg_type.as_byte());
    out.push(0); // no compression
    out.push(0); // reserved
    out.extend_from_slice(&(total as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_atom_layout() {
        let mut buf = BytesMut::new();
        encode_value(&Value::long(7), &mut buf).unwrap();
        assert_eq!(buf[0] as i8, -7);
        assert_eq!(&buf[1..9], &7i64.to_le_bytes());
    }

    #[test]
    fn symbol_atom_is_null_terminated() {
        let mut buf = BytesMut::new();
        encode_value(&Value::symbol("GOOG"), &mut buf).unwrap();
        assert_eq!(buf[0] as i8, -11);
        assert_eq!(&buf[1..5], b"GOOG");
        assert_eq!(buf[5], 0);
    }

    #[test]
    fn vector_header_has_attr_and_length() {
        let mut buf = BytesMut::new();
        encode_value(&Value::Longs(vec![1, 2]), &mut buf).unwrap();
        assert_eq!(buf[0] as i8, 7);
        assert_eq!(buf[1], 0);
        assert_eq!(&buf[2..6], &2i32.to_le_bytes());
        assert_eq!(buf.len(), 6 + 16);
    }

    #[test]
    fn figure5_table_layout_prefix() {
        // 98 00 99 <symbols> <columns> — the column-oriented layout.
        let t = qlang::Table::new(
            vec!["c1".into(), "c2".into()],
            vec![Value::Ints(vec![1, 2]), Value::Ints(vec![1, 2])],
        )
        .unwrap();
        let mut buf = BytesMut::new();
        encode_value(&Value::Table(Box::new(t)), &mut buf).unwrap();
        assert_eq!(buf[0], 98);
        assert_eq!(buf[1], 0);
        assert_eq!(buf[2], 99);
        assert_eq!(buf[3] as i8, 11, "column names as symbol vector");
    }

    #[test]
    fn message_header_layout() {
        let bytes = encode_message(&Message::query("1+1")).unwrap();
        assert_eq!(bytes[0], 1, "little endian flag");
        assert_eq!(bytes[1], 1, "sync");
        let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        assert_eq!(len, bytes.len(), "header length covers whole message");
    }

    #[test]
    fn non_ascii_char_atom_rejected() {
        let mut buf = BytesMut::new();
        let v = Value::Atom(Atom::Char('é'));
        assert!(encode_value(&v, &mut buf).is_err());
    }
}
