//! QIPC deserialization: bytes to Q values.

use crate::{Message, MsgType};
use qlang::ast::LambdaDef;
use qlang::value::{Atom, Dict, KeyedTable, Table, Value};
use qlang::{QError, QResult};

/// A cursor over the payload bytes.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn need(&self, n: usize) -> QResult<()> {
        if self.pos + n > self.data.len() {
            Err(QError::length("QIPC payload truncated"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> QResult<u8> {
        self.need(1)?;
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> QResult<i8> {
        Ok(self.u8()? as i8)
    }

    fn i16(&mut self) -> QResult<i16> {
        self.need(2)?;
        let v = i16::from_le_bytes(self.data[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        Ok(v)
    }

    fn i32(&mut self) -> QResult<i32> {
        self.need(4)?;
        let v = i32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn i64(&mut self) -> QResult<i64> {
        self.need(8)?;
        let v = i64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn f32(&mut self) -> QResult<f32> {
        self.need(4)?;
        let v = f32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn f64(&mut self) -> QResult<f64> {
        self.need(8)?;
        let v = f64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn sym(&mut self) -> QResult<String> {
        let start = self.pos;
        while self.pos < self.data.len() && self.data[self.pos] != 0 {
            self.pos += 1;
        }
        if self.pos >= self.data.len() {
            return Err(QError::length("unterminated symbol"));
        }
        let s = String::from_utf8_lossy(&self.data[start..self.pos]).into_owned();
        self.pos += 1; // NUL
        Ok(s)
    }

    fn bytes(&mut self, n: usize) -> QResult<&'a [u8]> {
        self.need(n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a vector header and validate the declared element count
    /// against the bytes actually present: `n` elements of at least
    /// `min_elem_size` bytes each must fit in the remaining payload.
    /// A lying length prefix is a length error, not a giant
    /// `Vec::with_capacity`.
    fn vec_len(&mut self, min_elem_size: usize) -> QResult<usize> {
        let _attr = self.u8()?;
        let n = self.i32()?;
        if n < 0 {
            return Err(QError::length("negative vector length"));
        }
        let n = n as usize;
        let remaining = self.data.len() - self.pos;
        let needed = n.checked_mul(min_elem_size);
        if needed.is_none_or(|bytes| bytes > remaining) {
            return Err(QError::length(format!(
                "vector claims {n} elements but only {remaining} payload bytes remain"
            )));
        }
        Ok(n)
    }
}

fn decode_inner(c: &mut Cursor<'_>) -> QResult<Value> {
    let ty = c.i8()?;
    Ok(match ty {
        // Atoms.
        -1 => Value::Atom(Atom::Bool(c.u8()? != 0)),
        -4 => Value::Atom(Atom::Byte(c.u8()?)),
        -5 => Value::Atom(Atom::Short(c.i16()?)),
        -6 => Value::Atom(Atom::Int(c.i32()?)),
        -7 => Value::Atom(Atom::Long(c.i64()?)),
        -8 => Value::Atom(Atom::Real(c.f32()?)),
        -9 => Value::Atom(Atom::Float(c.f64()?)),
        -10 => Value::Atom(Atom::Char(c.u8()? as char)),
        -11 => Value::Atom(Atom::Symbol(c.sym()?)),
        -12 => Value::Atom(Atom::Timestamp(c.i64()?)),
        -14 => Value::Atom(Atom::Date(c.i32()?)),
        -19 => Value::Atom(Atom::Time(c.i32()?)),
        // Vectors.
        0 => {
            let n = c.vec_len(1)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_inner(c)?);
            }
            Value::Mixed(items)
        }
        1 => {
            let n = c.vec_len(1)?;
            let raw = c.bytes(n)?;
            Value::Bools(raw.iter().map(|&b| b != 0).collect())
        }
        4 => {
            let n = c.vec_len(1)?;
            Value::Bytes(c.bytes(n)?.to_vec())
        }
        5 => {
            let n = c.vec_len(2)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.i16()?);
            }
            Value::Shorts(v)
        }
        6 => {
            let n = c.vec_len(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.i32()?);
            }
            Value::Ints(v)
        }
        7 => {
            let n = c.vec_len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.i64()?);
            }
            Value::Longs(v)
        }
        8 => {
            let n = c.vec_len(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.f32()?);
            }
            Value::Reals(v)
        }
        9 => {
            let n = c.vec_len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.f64()?);
            }
            Value::Floats(v)
        }
        10 => {
            let n = c.vec_len(1)?;
            let raw = c.bytes(n)?;
            Value::Chars(String::from_utf8_lossy(raw).into_owned())
        }
        11 => {
            let n = c.vec_len(1)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.sym()?);
            }
            Value::Symbols(v)
        }
        12 => {
            let n = c.vec_len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.i64()?);
            }
            Value::Timestamps(v)
        }
        14 => {
            let n = c.vec_len(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.i32()?);
            }
            Value::Dates(v)
        }
        19 => {
            let n = c.vec_len(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.i32()?);
            }
            Value::Times(v)
        }
        98 => {
            let _attr = c.u8()?;
            let dict_ty = c.i8()?;
            if dict_ty != 99 {
                return Err(QError::type_err("malformed table payload"));
            }
            let names = match decode_inner(c)? {
                Value::Symbols(s) => s,
                _ => return Err(QError::type_err("table column names must be symbols")),
            };
            let columns = match decode_inner(c)? {
                Value::Mixed(cols) => cols,
                _ => return Err(QError::type_err("table columns must be a general list")),
            };
            Value::Table(Box::new(Table::new(names, columns)?))
        }
        99 => {
            let keys = decode_inner(c)?;
            let values = decode_inner(c)?;
            match (keys, values) {
                (Value::Table(k), Value::Table(v)) => {
                    Value::KeyedTable(Box::new(KeyedTable { key: *k, value: *v }))
                }
                (keys, values) => Value::Dict(Box::new(Dict::new(keys, values)?)),
            }
        }
        100 => {
            let _context = c.sym()?;
            let body = decode_inner(c)?;
            match body {
                Value::Chars(source) => Value::Lambda(Box::new(LambdaDef {
                    params: vec![],
                    body: vec![],
                    source,
                })),
                _ => return Err(QError::type_err("lambda body must be a char vector")),
            }
        }
        101 => {
            let _ = c.u8()?;
            Value::Nil
        }
        other => return Err(QError::type_err(format!("unsupported QIPC type {other}"))),
    })
}

/// Decode a single serialized value (no message header).
pub fn decode_value(data: &[u8]) -> QResult<Value> {
    let mut c = Cursor { data, pos: 0 };
    let v = decode_inner(&mut c)?;
    if c.pos != data.len() {
        return Err(QError::length(format!(
            "trailing bytes after value: {} of {}",
            c.pos,
            data.len()
        )));
    }
    Ok(v)
}

/// Default ceiling on a declared QIPC frame length: 64 MiB.
pub const DEFAULT_MAX_MESSAGE: usize = 64 * 1024 * 1024;

/// Decode one message from the front of `buf`. Returns the message plus
/// consumed byte count, or `None` if the buffer is incomplete. Frames
/// declaring more than [`DEFAULT_MAX_MESSAGE`] bytes are rejected.
pub fn decode_message(buf: &[u8]) -> QResult<Option<(Message, usize)>> {
    decode_message_limited(buf, DEFAULT_MAX_MESSAGE)
}

/// [`decode_message`] with an explicit ceiling on the declared frame
/// length. The length prefix is attacker-controlled: rejecting it here
/// turns a hostile 2 GiB declaration into a protocol error instead of
/// an unbounded buffer build-up.
pub fn decode_message_limited(buf: &[u8], max: usize) -> QResult<Option<(Message, usize)>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let endian = buf[0];
    if endian != 1 {
        return Err(QError::type_err("big-endian QIPC peers are not supported"));
    }
    let msg_type = MsgType::from_byte(buf[1])
        .ok_or_else(|| QError::type_err(format!("bad QIPC message type {}", buf[1])))?;
    let compressed = buf[2] == 1;
    if buf[2] > 1 {
        return Err(QError::type_err(format!("bad QIPC compression flag {}", buf[2])));
    }
    let total = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if total < 8 {
        return Err(QError::length("QIPC message length too small"));
    }
    if total > max {
        return Err(QError::length(format!(
            "QIPC frame declares {total} bytes, exceeding the {max}-byte limit"
        )));
    }
    if buf.len() < total {
        return Ok(None);
    }
    let value = if compressed {
        if total < 12 {
            return Err(QError::length("compressed QIPC message too short"));
        }
        let uncompressed_total =
            u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        if uncompressed_total < 8 {
            return Err(QError::length("bad uncompressed length"));
        }
        if uncompressed_total > max {
            return Err(QError::length(format!(
                "compressed QIPC frame expands to {uncompressed_total} bytes, exceeding the {max}-byte limit"
            )));
        }
        let payload = crate::compress::decompress(&buf[12..total], uncompressed_total - 8)
            .ok_or_else(|| QError::type_err("corrupt compressed QIPC payload"))?;
        decode_value(&payload)?
    } else {
        decode_value(&buf[8..total])?
    };
    Ok(Some((Message { msg_type, value }, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_message, encode_value};
    use bytes::BytesMut;

    fn round_trip(v: Value) -> Value {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf).unwrap();
        decode_value(&buf).unwrap()
    }

    #[test]
    fn atoms_round_trip() {
        for v in [
            Value::bool(true),
            Value::Atom(Atom::Byte(0x7f)),
            Value::Atom(Atom::Short(-5)),
            Value::Atom(Atom::Int(123456)),
            Value::long(-9_000_000_000),
            Value::Atom(Atom::Real(1.5)),
            Value::float(std::f64::consts::PI),
            Value::Atom(Atom::Char('x')),
            Value::symbol("GOOG"),
            Value::Atom(Atom::Timestamp(1_234_567_890_123)),
            Value::Atom(Atom::Date(6021)),
            Value::Atom(Atom::Time(34_200_000)),
        ] {
            assert!(round_trip(v.clone()).q_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn nulls_round_trip() {
        for v in [
            Value::Atom(Atom::Long(i64::MIN)),
            Value::Atom(Atom::Float(f64::NAN)),
            Value::Atom(Atom::Symbol(String::new())),
            Value::Atom(Atom::Date(i32::MIN)),
        ] {
            assert!(round_trip(v.clone()).q_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn vectors_round_trip() {
        for v in [
            Value::Bools(vec![true, false, true]),
            Value::Longs(vec![1, i64::MIN, 3]),
            Value::Floats(vec![1.5, f64::NAN]),
            Value::Symbols(vec!["a".into(), "".into(), "c".into()]),
            Value::Chars("hello".into()),
            Value::Dates(vec![0, 6021]),
            Value::Times(vec![0, 1000]),
            Value::Timestamps(vec![0, 42]),
            Value::Bytes(vec![1, 2, 3]),
        ] {
            assert!(round_trip(v.clone()).q_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn mixed_list_round_trip() {
        let v = Value::Mixed(vec![Value::long(1), Value::symbol("a"), Value::Chars("xy".into())]);
        assert!(round_trip(v.clone()).q_eq(&v));
    }

    #[test]
    fn dict_round_trip() {
        let v = Value::Dict(Box::new(
            Dict::new(
                Value::Symbols(vec!["a".into(), "b".into()]),
                Value::Longs(vec![1, 2]),
            )
            .unwrap(),
        ));
        assert!(round_trip(v.clone()).q_eq(&v));
    }

    #[test]
    fn table_round_trip() {
        let t = Table::new(
            vec!["Sym".into(), "Px".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
                Value::Floats(vec![100.5, 50.25]),
            ],
        )
        .unwrap();
        let v = Value::Table(Box::new(t));
        assert!(round_trip(v.clone()).q_eq(&v));
    }

    #[test]
    fn keyed_table_round_trip() {
        let k = KeyedTable {
            key: Table::new(vec!["Sym".into()], vec![Value::Symbols(vec!["a".into()])]).unwrap(),
            value: Table::new(vec!["Px".into()], vec![Value::Floats(vec![1.0])]).unwrap(),
        };
        let v = Value::KeyedTable(Box::new(k));
        assert!(round_trip(v.clone()).q_eq(&v));
    }

    #[test]
    fn nested_structures_round_trip() {
        let inner = Value::Mixed(vec![Value::Longs(vec![1, 2]), Value::symbol("x")]);
        let v = Value::Mixed(vec![inner, Value::Nil]);
        assert!(round_trip(v.clone()).q_eq(&v));
    }

    #[test]
    fn message_round_trip() {
        let msg = Message::query("select from trades where Symbol=`GOOG");
        let bytes = encode_message(&msg).unwrap();
        let (decoded, consumed) = decode_message(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn incomplete_message_yields_none() {
        let msg = Message::query("1+1");
        let bytes = encode_message(&msg).unwrap();
        assert!(decode_message(&bytes[..4]).unwrap().is_none());
        assert!(decode_message(&bytes[..bytes.len() - 1]).unwrap().is_none());
    }

    #[test]
    fn two_messages_back_to_back() {
        let m1 = Message::query("1");
        let m2 = Message::response(Value::long(1));
        let mut bytes = encode_message(&m1).unwrap();
        bytes.extend(encode_message(&m2).unwrap());
        let (d1, used) = decode_message(&bytes).unwrap().unwrap();
        assert_eq!(d1, m1);
        let (d2, used2) = decode_message(&bytes[used..]).unwrap().unwrap();
        assert_eq!(d2, m2);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        // A "complete" frame whose payload lies about its vector length.
        let msg = Message::response(Value::Longs(vec![1, 2, 3]));
        let mut bytes = encode_message(&msg).unwrap();
        // Corrupt the vector length to claim 1000 elements.
        bytes[10] = 0xE8;
        bytes[11] = 0x03;
        let err = decode_message(&bytes);
        assert!(err.is_err());
    }

    #[test]
    fn oversized_declared_frame_is_rejected_before_buffering() {
        // Header claims ~2 GiB: rejected from the 8 header bytes alone.
        let mut bytes = vec![1u8, 1, 0, 0];
        bytes.extend_from_slice(&(2_000_000_000u32).to_le_bytes());
        let err = decode_message(&bytes).unwrap_err();
        assert!(err.to_string().contains("exceed"), "{err}");
    }

    #[test]
    fn custom_frame_ceiling_is_enforced() {
        let msg = Message::query("a fairly long query text that exceeds a tiny cap");
        let bytes = encode_message(&msg).unwrap();
        assert!(decode_message_limited(&bytes, 16).is_err());
        assert!(decode_message_limited(&bytes, DEFAULT_MAX_MESSAGE).unwrap().is_some());
    }

    #[test]
    fn lying_vector_length_is_bounded_by_payload_size() {
        // A long vector claiming u32::MAX/8 elements in a 30-byte frame
        // must not allocate gigabytes before failing.
        let msg = Message::response(Value::Longs(vec![1, 2, 3]));
        let mut bytes = encode_message(&msg).unwrap();
        bytes[10..14].copy_from_slice(&(400_000_000i32).to_le_bytes());
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn compressed_flag_rejected_cleanly() {
        let msg = Message::query("1");
        let mut bytes = encode_message(&msg).unwrap();
        bytes[2] = 1;
        assert!(decode_message(&bytes).is_err());
    }
}
