//! QIPC payload compression.
//!
//! "The QIPC wire protocol describes message format, process handshake,
//! and data compression" (paper §3.1). kdb+ compresses messages larger
//! than ~2KB sent between remote hosts with a byte-pair-hash LZ variant;
//! this module implements that scheme (the same algorithm the public
//! kdb+ client bindings use): a control byte carries eight flags, each
//! selecting either a literal byte or a back-reference addressed through
//! a 256-slot table keyed by a hash of adjacent bytes. (Self-consistent
//! between our endpoints; kdb+ uses the same structure with its own
//! pair hash.)
//!
//! Wire layout of a compressed message: the standard 8-byte header with
//! the compression flag set at offset 2 and the *compressed* total length
//! at offset 4, followed by 4 bytes of *uncompressed* total length, then
//! the compressed stream.

/// Pair hash used by both directions: asymmetric so that transposed
/// byte pairs (e.g. `GO` vs `OG`) land in different slots.
#[inline]
fn pair_hash(a: u8, b: u8) -> usize {
    (((a as usize) << 4) ^ (b as usize)) & 0xFF
}

/// Threshold above which [`crate::encode_message_compressed`] actually
/// compresses (kdb+ uses a similar cutoff; tiny messages only grow).
pub const COMPRESSION_THRESHOLD: usize = 2000;

/// Compress `src` (a raw payload). Returns `None` when compression would
/// not shrink the data (the caller then sends it uncompressed).
pub fn compress(src: &[u8]) -> Option<Vec<u8>> {
    if src.len() < 16 {
        return None;
    }
    let mut dst: Vec<u8> = Vec::with_capacity(src.len() / 2);
    let mut table = [usize::MAX; 256];
    let mut flag_pos = 0usize; // position of the current control byte
    let mut flag: u8 = 0;
    let mut bit: u16 = 1;
    dst.push(0); // placeholder control byte
    let mut s = 0usize; // cursor into src

    // Hash positions already emitted (over the *source*, which equals the
    // decompressor's reconstructed output).
    let mut hashed = 0usize;
    macro_rules! advance_hash {
        ($upto:expr) => {
            while hashed + 1 < $upto {
                let h = pair_hash(src[hashed], src[hashed + 1]);
                table[h] = hashed;
                hashed += 1;
            }
        };
    }

    while s < src.len() {
        if bit == 256 {
            dst[flag_pos] = flag;
            flag = 0;
            bit = 1;
            flag_pos = dst.len();
            dst.push(0);
        }
        // Try a back-reference: need at least 2 bytes left and a table
        // hit whose first two bytes match.
        let mut emitted_ref = false;
        if s + 2 <= src.len() {
            let h = pair_hash(src[s], src[s + 1]);
            let r = table[h];
            if r != usize::MAX && r + 1 < s && src[r] == src[s] && src[r + 1] == src[s + 1] {
                // Extend the match up to 255 extra bytes.
                let mut n = 0usize;
                while n < 255
                    && s + 2 + n < src.len()
                    && r + 2 + n < s + 2 + n // back-ref may overlap forward
                    && src[r + 2 + n] == src[s + 2 + n]
                {
                    n += 1;
                }
                flag |= bit as u8;
                dst.push(h as u8);
                dst.push(n as u8);
                advance_hash!(s);
                s += 2 + n;
                // After a copy, kdb+ restarts hashing from the new cursor.
                hashed = s;
                emitted_ref = true;
            }
        }
        if !emitted_ref {
            dst.push(src[s]);
            advance_hash!(s + 1);
            s += 1;
        }
        bit <<= 1;
    }
    dst[flag_pos] = flag;
    if dst.len() < src.len() {
        Some(dst)
    } else {
        None
    }
}

/// Decompress a stream produced by [`compress`] into `uncompressed_len`
/// bytes. Returns `None` on malformed input.
pub fn decompress(src: &[u8], uncompressed_len: usize) -> Option<Vec<u8>> {
    let mut dst: Vec<u8> = Vec::with_capacity(uncompressed_len);
    let mut table = [usize::MAX; 256];
    let mut d = 0usize; // cursor into src
    let mut flag: u8 = 0;
    let mut bit: u16 = 0;
    let mut hashed = 0usize;

    while dst.len() < uncompressed_len {
        if bit == 0 || bit == 256 {
            flag = *src.get(d)?;
            d += 1;
            bit = 1;
        }
        if flag & (bit as u8) != 0 {
            let h = *src.get(d)? as usize;
            d += 1;
            let n = *src.get(d)? as usize;
            d += 1;
            let start = table[h];
            if start == usize::MAX {
                return None;
            }
            // Copy 2 + n bytes (may overlap the bytes just written).
            for r in start..start + 2 + n {
                let b = *dst.get(r)?;
                dst.push(b);
            }
            // Hash up to the start of the copied run, then skip past it.
            while hashed + 1 < dst.len() - (2 + n) {
                let h2 = pair_hash(dst[hashed], dst[hashed + 1]);
                table[h2] = hashed;
                hashed += 1;
            }
            hashed = dst.len();
        } else {
            let b = *src.get(d)?;
            d += 1;
            dst.push(b);
            while hashed + 1 < dst.len() {
                let h2 = pair_hash(dst[hashed], dst[hashed + 1]);
                table[h2] = hashed;
                hashed += 1;
            }
        }
        bit <<= 1;
    }
    if dst.len() == uncompressed_len {
        Some(dst)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        match compress(data) {
            Some(c) => {
                assert!(c.len() < data.len(), "compression must shrink");
                let back = decompress(&c, data.len()).expect("decompress");
                assert_eq!(back, data);
            }
            None => { /* incompressible: caller sends raw */ }
        }
    }

    #[test]
    fn repetitive_data_compresses_and_round_trips() {
        let data = b"GOOGGOOGGOOGGOOGGOOGGOOGGOOGGOOGGOOGGOOG".repeat(20);
        let c = compress(&data).expect("highly repetitive data must compress");
        assert!(c.len() < data.len() / 2);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn typical_column_data_round_trips() {
        // A symbol column as QIPC would lay it out: repeated tickers.
        let mut data = Vec::new();
        for i in 0..500 {
            let sym: &[u8] = match i % 3 {
                0 => b"GOOG\0",
                1 => b"IBM\0\0",
                _ => b"MSFT\0",
            };
            data.extend_from_slice(sym);
        }
        round_trip(&data);
        assert!(compress(&data).is_some());
    }

    #[test]
    fn random_data_is_left_alone() {
        // Pseudo-random bytes shouldn't "compress"; the caller falls back
        // to the uncompressed path.
        let mut x: u32 = 12345;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        if let Some(c) = compress(&data) { assert_eq!(decompress(&c, data.len()).unwrap(), data) }
    }

    #[test]
    fn zeros_and_small_inputs() {
        round_trip(&vec![0u8; 4096]);
        assert!(compress(b"tiny").is_none());
        assert!(compress(&[]).is_none());
    }

    #[test]
    fn long_runs_exceeding_255() {
        let data = vec![7u8; 10_000];
        let c = compress(&data).unwrap();
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[0xFF, 0x01], 100).is_none());
        assert!(decompress(&[], 10).is_none());
    }

    #[test]
    fn mixed_structure_round_trips() {
        // Interleave compressible and incompressible regions.
        let mut data = Vec::new();
        let mut x: u32 = 7;
        for chunk in 0..50 {
            if chunk % 2 == 0 {
                data.extend_from_slice(&b"0123456789".repeat(10));
            } else {
                for _ in 0..100 {
                    x = x.wrapping_mul(69069).wrapping_add(1);
                    data.push((x >> 16) as u8);
                }
            }
        }
        round_trip(&data);
    }
}
