//! # qipc — the Q Inter-Process Communication wire protocol
//!
//! Q applications talk to kdb+ over QIPC (paper §3.1, §4.2): a TCP
//! protocol with a credential handshake (`"user:password" + version byte + NUL`,
//! answered by a single capability byte), followed by length-prefixed
//! messages that carry whole serialized Q objects.
//!
//! Crucially — and unlike PG v3 — QIPC is **object-based and
//! column-oriented**: a query result travels as *one* message containing
//! the full table, serialized column by column (paper Figure 5). The
//! Cross Compiler therefore has to buffer the PG row stream and pivot it
//! before it can answer the Q application.
//!
//! Framing: an 8-byte header — endianness byte (1 = little endian),
//! message type (0 async, 1 sync, 2 response), two reserved bytes, and a
//! 4-byte total length including the header — then the payload object.

pub mod compress;
pub mod decode;
pub mod encode;
pub mod handshake;

pub use decode::{decode_message, decode_message_limited, decode_value, DEFAULT_MAX_MESSAGE};
pub use encode::{encode_message, encode_value};
pub use handshake::{client_handshake, parse_handshake, HandshakeReply};

use qlang::QResult;
use std::sync::{Arc, OnceLock};

/// Frame/byte counters on the QIPC leg, registered once in the global
/// metrics registry. Encoded = frames leaving this process (responses to
/// the Q application), decoded = complete frames read off the wire.
struct QipcMetrics {
    frames_encoded: Arc<obs::Counter>,
    bytes_encoded: Arc<obs::Counter>,
    frames_decoded: Arc<obs::Counter>,
    bytes_decoded: Arc<obs::Counter>,
}

fn metrics() -> &'static QipcMetrics {
    static METRICS: OnceLock<QipcMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global_registry();
        QipcMetrics {
            frames_encoded: reg.counter("qipc_frames_encoded_total"),
            bytes_encoded: reg.counter("qipc_bytes_encoded_total"),
            frames_decoded: reg.counter("qipc_frames_decoded_total"),
            bytes_decoded: reg.counter("qipc_bytes_decoded_total"),
        }
    })
}

/// QIPC message type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// Fire-and-forget.
    Async,
    /// Request expecting a response.
    Sync,
    /// Response to a sync request.
    Response,
}

impl MsgType {
    /// Wire byte.
    pub fn as_byte(self) -> u8 {
        match self {
            MsgType::Async => 0,
            MsgType::Sync => 1,
            MsgType::Response => 2,
        }
    }

    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Option<MsgType> {
        Some(match b {
            0 => MsgType::Async,
            1 => MsgType::Sync,
            2 => MsgType::Response,
            _ => return None,
        })
    }
}

/// A complete QIPC message: type plus payload value.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sync/async/response.
    pub msg_type: MsgType,
    /// The payload object.
    pub value: qlang::Value,
}

impl Message {
    /// A sync request carrying Q query text (how Q clients send queries:
    /// "the client sends queries in the form of raw text", §4.2).
    pub fn query(text: &str) -> Message {
        Message { msg_type: MsgType::Sync, value: qlang::Value::Chars(text.to_string()) }
    }

    /// A response message.
    pub fn response(value: qlang::Value) -> Message {
        Message { msg_type: MsgType::Response, value }
    }
}

/// Encode a full message (header + payload).
pub fn write_message(msg: &Message) -> QResult<Vec<u8>> {
    let bytes = encode_message(msg)?;
    let m = metrics();
    m.frames_encoded.inc();
    m.bytes_encoded.add(bytes.len() as u64);
    Ok(bytes)
}

/// Encode a message, compressing the payload when it is large enough to
/// benefit (kdb+ behaviour for remote peers; paper §3.1 lists
/// compression as part of the QIPC protocol).
pub fn write_message_compressed(msg: &Message) -> QResult<Vec<u8>> {
    let bytes = encode::encode_message_compressed(msg)?;
    let m = metrics();
    m.frames_encoded.inc();
    m.bytes_encoded.add(bytes.len() as u64);
    Ok(bytes)
}

/// Try to decode one message from the front of `buf`; returns the
/// message and the number of bytes consumed. Frames declaring more than
/// [`DEFAULT_MAX_MESSAGE`] bytes are rejected as protocol errors.
pub fn read_message(buf: &[u8]) -> QResult<Option<(Message, usize)>> {
    let decoded = decode_message(buf)?;
    if let Some((_, used)) = &decoded {
        let m = metrics();
        m.frames_decoded.inc();
        m.bytes_decoded.add(*used as u64);
    }
    Ok(decoded)
}

/// [`read_message`] with an explicit frame-length ceiling.
pub fn read_message_limited(buf: &[u8], max: usize) -> QResult<Option<(Message, usize)>> {
    let decoded = decode_message_limited(buf, max)?;
    if let Some((_, used)) = &decoded {
        let m = metrics();
        m.frames_decoded.inc();
        m.bytes_decoded.add(*used as u64);
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlang::Value;

    #[test]
    fn query_messages_are_sync_char_vectors() {
        let m = Message::query("select from trades");
        assert_eq!(m.msg_type, MsgType::Sync);
        assert!(matches!(m.value, Value::Chars(_)));
    }

    #[test]
    fn msg_type_round_trip() {
        for t in [MsgType::Async, MsgType::Sync, MsgType::Response] {
            assert_eq!(MsgType::from_byte(t.as_byte()), Some(t));
        }
        assert_eq!(MsgType::from_byte(9), None);
    }
}
