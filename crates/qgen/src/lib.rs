//! qgen — grammar-driven differential fuzzing for the Hyper-Q pipeline.
//!
//! The hand-written differential oracle (tests/differential_oracle.rs)
//! checks a fixed statement list; this crate *generates* the scenarios.
//! It is the conformance subsystem from DESIGN §9:
//!
//! * [`schema`] — randomized-but-valid TAQ-shaped datasets (random
//!   column names, symbol universes, null densities; fixed column
//!   *roles* so statements stay well-typed by construction);
//! * [`grammar`] — seeded, structured Q statement generation (selects,
//!   by-aggregations, all four join families, null logic, ordcol
//!   functions, variable assignment + reuse) with per-statement shrink
//!   candidates;
//! * [`fuzz`] — the loop: every program runs through three executors
//!   (qengine reference, cache-cold translate pipeline, cache-warm
//!   translate pipeline) via `hyperq::BatchDriver`, and every divergent
//!   statement is reported;
//! * [`diff`] — cell-level divergence explanation under Q's 2-valued
//!   null semantics;
//! * [`shrink`] — delta-debugging reduction of (program, dataset) to a
//!   minimal diverging form;
//! * [`corpus`] — self-contained `.q` repro files, written on discovery
//!   and replayed forever after as pinned regression tests.
//!
//! Knobs: `QGEN_SEED` (master seed, default 42) and `QGEN_BUDGET`
//! (program count, default 500), read by [`FuzzConfig::from_env`].

#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod fuzz;
pub mod grammar;
pub mod schema;
pub mod shrink;

pub use corpus::{load_repro, replay, write_repro, Repro};
pub use fuzz::{run_fuzz, FoundBug, FuzzConfig, FuzzReport};
pub use grammar::{Coverage, GenStmt, Program, ProgramGen};
pub use schema::{gen_dataset, Dataset, NumKind, TableSpec};
pub use shrink::{ShrinkResult, Shrinker};
