//! Grammar-driven Q program generation.
//!
//! Statements are generated as *structured* values ([`GenStmt`]) rather
//! than strings: the structure is what makes expression-level shrinking
//! possible — the delta debugger removes projections, `where` conjuncts
//! and `by` keys, or replaces a join by one of its inputs, and re-renders.
//!
//! The grammar deliberately stays inside the translated surface proven
//! by the hand-written differential oracle (selects, aggregations, `by`
//! with `xbar`, `aj`/`lj`/`ij`/`uj`, null comparisons, ordcol
//! functions, sorts, variable assignment + reuse), but composes those
//! forms randomly over randomized schemas — the scenarios are generated
//! instead of enumerated.

use crate::schema::{Dataset, NumKind, TableSpec};
use rand::rngs::StdRng;
use rand::Rng;

/// The q-sql template keyword of a [`Select`] statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectKind {
    /// `select ... from ...`
    Select,
    /// `exec ... from ...` (single column, no `by`)
    Exec,
    /// `update ... from ...` (output-only column rewrite)
    Update,
}

/// One projection: optional alias plus a rendered expression.
#[derive(Debug, Clone)]
pub struct Proj {
    /// `alias: expr`; `None` renders the bare expression.
    pub alias: Option<String>,
    /// Rendered Q expression (column, arithmetic, aggregate, ordcol fn).
    pub expr: String,
}

impl Proj {
    fn render(&self) -> String {
        match &self.alias {
            Some(a) => format!("{a}: {}", self.expr),
            None => self.expr.clone(),
        }
    }
}

/// A q-sql select/exec/update statement over a plain source.
#[derive(Debug, Clone)]
pub struct Select {
    /// Which template.
    pub kind: SelectKind,
    /// Projections; empty renders `select from ...`.
    pub projections: Vec<Proj>,
    /// Grouping key expressions (no aliases, oracle style).
    pub bys: Vec<String>,
    /// Sequentially applied `where` conjuncts.
    pub wheres: Vec<String>,
    /// Source: a table name, a variable name, or a rendered lookup join.
    pub source: String,
}

impl Select {
    fn render(&self) -> String {
        let kw = match self.kind {
            SelectKind::Select => "select",
            SelectKind::Exec => "exec",
            SelectKind::Update => "update",
        };
        let mut s = kw.to_string();
        if !self.projections.is_empty() {
            s.push(' ');
            s.push_str(
                &self.projections.iter().map(Proj::render).collect::<Vec<_>>().join(", "),
            );
        }
        if !self.bys.is_empty() {
            s.push_str(" by ");
            s.push_str(&self.bys.join(", "));
        }
        s.push_str(" from ");
        s.push_str(&self.source);
        if !self.wheres.is_empty() {
            s.push_str(" where ");
            s.push_str(&self.wheres.join(", "));
        }
        s
    }

    /// One-part-removed variants, most aggressive first.
    fn shrink(&self) -> Vec<Select> {
        let mut out = Vec::new();
        for i in 0..self.wheres.len() {
            let mut c = self.clone();
            c.wheres.remove(i);
            out.push(c);
        }
        if self.projections.len() > 1 {
            for i in 0..self.projections.len() {
                let mut c = self.clone();
                c.projections.remove(i);
                out.push(c);
            }
        }
        if self.bys.len() > 1 {
            for i in 0..self.bys.len() {
                let mut c = self.clone();
                c.bys.remove(i);
                out.push(c);
            }
        }
        out
    }
}

/// A generated statement.
#[derive(Debug, Clone)]
pub enum GenStmt {
    /// A q-sql statement.
    Sel(Select),
    /// `` `C1`C2 xasc <select> `` (or `xdesc`).
    Sorted {
        /// Sort key columns.
        cols: Vec<String>,
        /// Descending?
        desc: bool,
        /// The sorted select.
        inner: Select,
    },
    /// `aj[`S`T; <left select>; <right select>]`.
    AsOf {
        /// Join columns.
        cols: Vec<String>,
        /// Left (probe) side.
        left: Select,
        /// Right (quote) side.
        right: Select,
    },
    /// `(<left>) uj <right>`.
    Union {
        /// First operand.
        left: Select,
        /// Second operand.
        right: Select,
    },
    /// `name: <rhs>` — assignment, exercising the materialization path.
    Assign {
        /// Variable name.
        var: String,
        /// Right-hand side statement.
        rhs: Box<GenStmt>,
    },
    /// An opaque statement (symbol-list variable definitions, corpus
    /// lines). Not structurally shrinkable.
    Raw(String),
}

impl GenStmt {
    /// Render to Q text.
    pub fn render(&self) -> String {
        match self {
            GenStmt::Sel(s) => s.render(),
            GenStmt::Sorted { cols, desc, inner } => {
                let verb = if *desc { "xdesc" } else { "xasc" };
                format!("{} {verb} {}", sym_list(cols), inner.render())
            }
            GenStmt::AsOf { cols, left, right } => {
                format!("aj[{}; {}; {}]", sym_list(cols), left.render(), right.render())
            }
            GenStmt::Union { left, right } => {
                format!("({}) uj {}", left.render(), right.render())
            }
            GenStmt::Assign { var, rhs } => format!("{var}: {}", rhs.render()),
            GenStmt::Raw(s) => s.clone(),
        }
    }

    /// Expression-level shrink candidates: structurally smaller
    /// statements that might still reproduce a divergence.
    pub fn shrink_candidates(&self) -> Vec<GenStmt> {
        match self {
            GenStmt::Sel(s) => s.shrink().into_iter().map(GenStmt::Sel).collect(),
            GenStmt::Sorted { cols, desc, inner } => {
                let mut out = vec![GenStmt::Sel(inner.clone())];
                if cols.len() > 1 {
                    for i in 0..cols.len() {
                        let mut c = cols.clone();
                        c.remove(i);
                        out.push(GenStmt::Sorted { cols: c, desc: *desc, inner: inner.clone() });
                    }
                }
                out.extend(inner.shrink().into_iter().map(|s| GenStmt::Sorted {
                    cols: cols.clone(),
                    desc: *desc,
                    inner: s,
                }));
                out
            }
            GenStmt::AsOf { cols, left, right } => {
                let mut out =
                    vec![GenStmt::Sel(left.clone()), GenStmt::Sel(right.clone())];
                for l in left.shrink() {
                    out.push(GenStmt::AsOf { cols: cols.clone(), left: l, right: right.clone() });
                }
                for r in right.shrink() {
                    out.push(GenStmt::AsOf { cols: cols.clone(), left: left.clone(), right: r });
                }
                out
            }
            GenStmt::Union { left, right } => {
                let mut out =
                    vec![GenStmt::Sel(left.clone()), GenStmt::Sel(right.clone())];
                for l in left.shrink() {
                    out.push(GenStmt::Union { left: l, right: right.clone() });
                }
                for r in right.shrink() {
                    out.push(GenStmt::Union { left: left.clone(), right: r });
                }
                out
            }
            GenStmt::Assign { var, rhs } => rhs
                .shrink_candidates()
                .into_iter()
                .map(|r| GenStmt::Assign { var: var.clone(), rhs: Box::new(r) })
                .collect(),
            GenStmt::Raw(_) => Vec::new(),
        }
    }
}

/// Coverage counters over a generated program set: the fuzz test pins
/// every statement family to non-zero so grammar regressions are loud.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage {
    /// Plain selects/execs.
    pub selects: usize,
    /// Aggregations without `by`.
    pub aggregations: usize,
    /// `by` aggregations.
    pub by_aggs: usize,
    /// As-of joins.
    pub aj: usize,
    /// Left lookup joins.
    pub lj: usize,
    /// Inner lookup joins.
    pub ij: usize,
    /// Union joins.
    pub uj: usize,
    /// Statements with a null-literal comparison (`=0N`).
    pub null_logic: usize,
    /// Ordcol-sensitive statements (prev/next/deltas/first/last/sorts).
    pub ordcol: usize,
    /// `update` statements.
    pub updates: usize,
    /// Variable assignments (materialization path).
    pub assigns: usize,
}

impl Coverage {
    /// Every family the acceptance criteria demand, with its count.
    pub fn families(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("selects", self.selects),
            ("aggregations", self.aggregations),
            ("by_aggs", self.by_aggs),
            ("aj", self.aj),
            ("lj", self.lj),
            ("ij", self.ij),
            ("uj", self.uj),
            ("null_logic", self.null_logic),
            ("ordcol", self.ordcol),
            ("updates", self.updates),
            ("assigns", self.assigns),
        ]
    }
}

/// A generated program: an ordered statement list over one dataset.
#[derive(Debug, Clone)]
pub struct Program {
    /// The statements, in execution order.
    pub stmts: Vec<GenStmt>,
}

impl Program {
    /// Render every statement.
    pub fn render(&self) -> Vec<String> {
        self.stmts.iter().map(GenStmt::render).collect()
    }
}

fn sym_list(cols: &[String]) -> String {
    cols.iter().map(|c| format!("`{c}")).collect::<String>()
}

/// The program generator: owns naming counters so variables are unique
/// across every program produced from one generator.
pub struct ProgramGen {
    var_seq: usize,
}

impl Default for ProgramGen {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramGen {
    /// Fresh generator.
    pub fn new() -> Self {
        ProgramGen { var_seq: 0 }
    }

    /// Generate one program of 1..=5 top-level constructs against `ds`,
    /// tallying grammar coverage into `cov`.
    pub fn gen_program(&mut self, rng: &mut StdRng, ds: &Dataset, cov: &mut Coverage) -> Program {
        let n = rng.gen_range(1..=5u32);
        let mut stmts = Vec::new();
        for _ in 0..n {
            self.gen_construct(rng, ds, &mut stmts, cov);
        }
        Program { stmts }
    }

    fn fresh_var(&mut self) -> String {
        self.var_seq += 1;
        format!("v{}", self.var_seq)
    }

    /// Push one construct (possibly several statements, e.g. an
    /// assignment and a follow-up read of the variable).
    fn gen_construct(
        &mut self,
        rng: &mut StdRng,
        ds: &Dataset,
        stmts: &mut Vec<GenStmt>,
        cov: &mut Coverage,
    ) {
        match rng.gen_range(0..16u32) {
            0..=2 => {
                cov.selects += 1;
                let mut s = self.plain_select(rng, &ds.main, None);
                if has_null_literal(&s.wheres) {
                    cov.null_logic += 1;
                }
                if rng.gen_range(0..4u32) == 0 {
                    s.kind = SelectKind::Exec;
                    s.bys.clear();
                    s.projections.truncate(1);
                    if s.projections.is_empty() {
                        s.projections.push(Proj {
                            alias: None,
                            expr: ds.main.num_cols[0].0.clone(),
                        });
                    }
                    // exec of a bare column list, oracle style.
                    for p in &mut s.projections {
                        p.alias = None;
                    }
                }
                stmts.push(GenStmt::Sel(s));
            }
            3 | 4 => {
                cov.aggregations += 1;
                stmts.push(GenStmt::Sel(self.agg_select(rng, &ds.main, false, cov)));
            }
            5..=7 => {
                cov.by_aggs += 1;
                let s = if rng.gen_range(0..3u32) == 0 {
                    // first/last by — the open/close idiom, ordcol-sensitive.
                    cov.ordcol += 1;
                    self.first_last_by(rng, &ds.main)
                } else {
                    self.agg_select(rng, &ds.main, true, cov)
                };
                stmts.push(GenStmt::Sel(s));
            }
            8 => {
                cov.ordcol += 1;
                stmts.push(GenStmt::Sel(self.ordcol_select(rng, &ds.main)));
            }
            9 => {
                cov.ordcol += 1;
                let inner = self.plain_select(rng, &ds.main, None);
                let mut cols = vec![ds.main.sym_col.clone()];
                if rng.gen_range(0..2u32) == 0 {
                    cols.push(ds.main.time_col.clone());
                }
                if rng.gen_range(0..2u32) == 0 {
                    // Sort by a projected value column instead.
                    cols = vec![ds.main.num_cols[0].0.clone()];
                }
                stmts.push(GenStmt::Sorted { cols, desc: rng.gen_range(0..2u32) == 1, inner });
            }
            10 => {
                cov.aj += 1;
                stmts.push(self.asof_join(rng, ds));
            }
            11 => {
                let ij = rng.gen_range(0..2u32) == 0;
                if ij {
                    cov.ij += 1;
                } else {
                    cov.lj += 1;
                }
                stmts.push(self.lookup_join(rng, ds, ij, cov));
            }
            12 => {
                cov.uj += 1;
                stmts.push(self.union_join(rng, ds));
            }
            13 => {
                cov.updates += 1;
                stmts.push(GenStmt::Sel(self.update_stmt(rng, &ds.main, cov)));
            }
            14 => {
                // Assignment + reuse: materialization path.
                cov.assigns += 1;
                let var = self.fresh_var();
                let mut rhs = self.plain_select(rng, &ds.main, None);
                // The variable must be a plain table with known columns:
                // project explicit columns, no by.
                rhs.kind = SelectKind::Select;
                rhs.bys.clear();
                if rhs.projections.is_empty() {
                    rhs.projections = ds
                        .main
                        .all_cols()
                        .into_iter()
                        .map(|c| Proj { alias: None, expr: c })
                        .collect();
                }
                // Aliased/computed projections would need type tracking;
                // keep the variable's schema = raw columns.
                let cols: Vec<String> = rhs
                    .projections
                    .iter()
                    .filter(|p| p.alias.is_none())
                    .map(|p| p.expr.clone())
                    .collect();
                let cols = if cols.is_empty() { ds.main.all_cols() } else { cols };
                rhs.projections =
                    cols.iter().map(|c| Proj { alias: None, expr: c.clone() }).collect();
                stmts.push(GenStmt::Assign {
                    var: var.clone(),
                    rhs: Box::new(GenStmt::Sel(rhs)),
                });
                // Follow-up read over the variable.
                cov.aggregations += 1;
                let num: Vec<&String> = cols
                    .iter()
                    .filter(|c| ds.main.num_cols.iter().any(|(n, _)| &n == c))
                    .collect();
                let agg_col = num
                    .first()
                    .map(|c| (*c).clone())
                    .unwrap_or_else(|| "i".to_string());
                let expr = if agg_col == "i" {
                    "count i".to_string()
                } else {
                    format!("{} {agg_col}", ["max", "min", "sum", "count"][rng.gen_range(0..4usize)])
                };
                stmts.push(GenStmt::Sel(Select {
                    kind: SelectKind::Select,
                    projections: vec![Proj { alias: Some("r".into()), expr }],
                    bys: Vec::new(),
                    wheres: Vec::new(),
                    source: var,
                }));
            }
            _ => {
                // Symbol-list variable + membership filter over it.
                cov.assigns += 1;
                cov.selects += 1;
                let var = self.fresh_var();
                let k = rng.gen_range(1..=ds.main.universe.len());
                let syms: String =
                    ds.main.universe[..k].iter().map(|s| format!("`{s}")).collect();
                stmts.push(GenStmt::Raw(format!("{var}: {syms}")));
                let mut s = self.plain_select(rng, &ds.main, None);
                s.wheres.insert(0, format!("{} in {var}", ds.main.sym_col));
                stmts.push(GenStmt::Sel(s));
            }
        }
    }

    /// A non-aggregating select over `spec` (or an explicit source name).
    fn plain_select(
        &mut self,
        rng: &mut StdRng,
        spec: &TableSpec,
        source: Option<String>,
    ) -> Select {
        let mut projections = Vec::new();
        match rng.gen_range(0..3u32) {
            // select from t — all columns.
            0 => {}
            // explicit column subset.
            1 => {
                let cols = spec.all_cols();
                let keep = rng.gen_range(1..=cols.len());
                projections = cols[..keep]
                    .iter()
                    .map(|c| Proj { alias: None, expr: c.clone() })
                    .collect();
            }
            // computed column on top of the key columns.
            _ => {
                projections.push(Proj { alias: None, expr: spec.sym_col.clone() });
                projections.push(Proj {
                    alias: Some("calc".into()),
                    expr: self.arith_expr(rng, spec),
                });
            }
        }
        let nw = rng.gen_range(0..=2u32) as usize;
        Select {
            kind: SelectKind::Select,
            projections,
            bys: Vec::new(),
            wheres: self.wheres(rng, spec, nw),
            source: source.unwrap_or_else(|| spec.name.clone()),
        }
    }

    /// An aggregation select, optionally grouped.
    fn agg_select(
        &mut self,
        rng: &mut StdRng,
        spec: &TableSpec,
        by: bool,
        cov: &mut Coverage,
    ) -> Select {
        let mut projections = Vec::new();
        let n = rng.gen_range(1..=2u32);
        for i in 0..n {
            projections.push(Proj {
                alias: Some(format!("a{i}")),
                expr: self.agg_expr(rng, spec),
            });
        }
        let mut bys = Vec::new();
        if by {
            bys.push(match rng.gen_range(0..5u32) {
                0 => spec.date_col.clone(),
                1 => {
                    // xbar bucketing over a long column.
                    let longs = spec.nums_of(NumKind::Long);
                    match longs.first() {
                        Some(l) => format!("100 xbar {l}"),
                        None => spec.sym_col.clone(),
                    }
                }
                _ => spec.sym_col.clone(),
            });
            if rng.gen_range(0..3u32) == 0 {
                let extra = if bys[0] == spec.sym_col {
                    spec.date_col.clone()
                } else {
                    spec.sym_col.clone()
                };
                if !bys.contains(&extra) {
                    bys.push(extra);
                }
            }
        }
        let nw = rng.gen_range(0..=1u32) as usize;
        let wheres = self.wheres(rng, spec, nw);
        if has_null_literal(&wheres) {
            cov.null_logic += 1;
        }
        Select { kind: SelectKind::Select, projections, bys, wheres, source: spec.name.clone() }
    }

    /// A select with ordcol-sensitive projections.
    fn ordcol_select(&mut self, rng: &mut StdRng, spec: &TableSpec) -> Select {
        let (col, _) = &spec.num_cols[rng.gen_range(0..spec.num_cols.len())];
        let f = ["prev", "next", "deltas"][rng.gen_range(0..3usize)];
        let projections = vec![
            Proj { alias: None, expr: col.clone() },
            Proj { alias: Some("o".into()), expr: format!("{f} {col}") },
        ];
        let nw = rng.gen_range(0..=1u32) as usize;
        Select {
            kind: SelectKind::Select,
            projections,
            bys: Vec::new(),
            wheres: self.wheres(rng, spec, nw),
            source: spec.name.clone(),
        }
    }

    /// `first/last by` — the open/close idiom.
    fn first_last_by(&mut self, rng: &mut StdRng, spec: &TableSpec) -> Select {
        let (col, _) = &spec.num_cols[rng.gen_range(0..spec.num_cols.len())];
        Select {
            kind: SelectKind::Select,
            projections: vec![
                Proj { alias: Some("open".into()), expr: format!("first {col}") },
                Proj { alias: Some("close".into()), expr: format!("last {col}") },
            ],
            bys: vec![spec.sym_col.clone()],
            wheres: Vec::new(),
            source: spec.name.clone(),
        }
    }

    fn asof_join(&mut self, rng: &mut StdRng, ds: &Dataset) -> GenStmt {
        let cols = vec![ds.main.sym_col.clone(), ds.main.time_col.clone()];
        let mut lp: Vec<String> = cols.clone();
        lp.push(ds.main.num_cols[0].0.clone());
        let mut rp: Vec<String> = cols.clone();
        rp.extend(ds.aux.num_cols.iter().map(|(n, _)| n.clone()));
        // Optionally pin both sides to one date (the paper's Example 1).
        let mut lw = Vec::new();
        let mut rw = Vec::new();
        if rng.gen_range(0..2u32) == 0 {
            let d = crate::corpus::date_literal(ds.main.dates[0]);
            lw.push(format!("{}={d}", ds.main.date_col));
            rw.push(format!("{}={d}", ds.aux.date_col));
        }
        let left = Select {
            kind: SelectKind::Select,
            projections: lp.into_iter().map(|c| Proj { alias: None, expr: c }).collect(),
            bys: Vec::new(),
            wheres: lw,
            source: ds.main.name.clone(),
        };
        let right = Select {
            kind: SelectKind::Select,
            projections: rp.into_iter().map(|c| Proj { alias: None, expr: c }).collect(),
            bys: Vec::new(),
            wheres: rw,
            source: ds.aux.name.clone(),
        };
        GenStmt::AsOf { cols, left, right }
    }

    fn lookup_join(
        &mut self,
        rng: &mut StdRng,
        ds: &Dataset,
        ij: bool,
        cov: &mut Coverage,
    ) -> GenStmt {
        let join = format!(
            "{} {} 1!{}",
            ds.main.name,
            if ij { "ij" } else { "lj" },
            ds.refdata.name
        );
        if rng.gen_range(0..2u32) == 0 {
            // Aggregate over the joined attribute, oracle style.
            cov.by_aggs += 1;
            GenStmt::Sel(Select {
                kind: SelectKind::Select,
                projections: vec![Proj {
                    alias: Some("mx".into()),
                    expr: format!("max {}", ds.main.num_cols[0].0),
                }],
                bys: vec![ds.refdata.sym_val_col.clone()],
                wheres: Vec::new(),
                source: join,
            })
        } else {
            GenStmt::Raw(join)
        }
    }

    fn union_join(&mut self, rng: &mut StdRng, ds: &Dataset) -> GenStmt {
        let spec = &ds.main;
        let longs = spec.nums_of(NumKind::Long);
        let (lo, hi) = (rng.gen_range(0..400i64), rng.gen_range(500..1000i64));
        let split = longs.first().map(|l| l.to_string());
        let mk = |projcols: Vec<String>, w: Vec<String>| Select {
            kind: SelectKind::Select,
            projections: projcols.into_iter().map(|c| Proj { alias: None, expr: c }).collect(),
            bys: Vec::new(),
            wheres: w,
            source: spec.name.clone(),
        };
        let base = vec![spec.sym_col.clone(), spec.num_cols[0].0.clone()];
        let mut wider = base.clone();
        if let Some(l) = &split {
            wider.push(l.clone());
        }
        let (lw, rw) = match &split {
            Some(l) => (vec![format!("{l}>{hi}")], vec![format!("{l}<{lo}")]),
            None => (Vec::new(), Vec::new()),
        };
        // Oracle style: the two sides may have differing column sets.
        let same_shape = rng.gen_range(0..2u32) == 0;
        let left = mk(base.clone(), lw);
        let right = mk(if same_shape { base } else { wider }, rw);
        GenStmt::Union { left, right }
    }

    fn update_stmt(&mut self, rng: &mut StdRng, spec: &TableSpec, cov: &mut Coverage) -> Select {
        let (col, kind) = &spec.num_cols[rng.gen_range(0..spec.num_cols.len())];
        let val = match (kind, rng.gen_range(0..3u32)) {
            (_, 0) => {
                cov.null_logic += 1;
                match kind {
                    NumKind::Float => "0n".to_string(),
                    NumKind::Long => "0N".to_string(),
                }
            }
            (NumKind::Float, _) => format!("{:.1}", rng.gen_range(1.0..100.0)),
            (NumKind::Long, _) => rng.gen_range(0i64..500).to_string(),
        };
        Select {
            kind: SelectKind::Update,
            projections: vec![Proj { alias: Some(col.clone()), expr: val }],
            bys: Vec::new(),
            wheres: self.wheres(rng, spec, 1),
            source: spec.name.clone(),
        }
    }

    /// Random aggregate expression over `spec`'s columns.
    fn agg_expr(&mut self, rng: &mut StdRng, spec: &TableSpec) -> String {
        let floats = spec.nums_of(NumKind::Float);
        let longs = spec.nums_of(NumKind::Long);
        match rng.gen_range(0..8u32) {
            0 => "count i".to_string(),
            1 => {
                // Q count of a column is length (counts nulls) — the
                // PR-3 bug family.
                let all: Vec<&str> =
                    floats.iter().chain(longs.iter()).copied().collect();
                format!("count {}", all[rng.gen_range(0..all.len())])
            }
            2 if !floats.is_empty() && !longs.is_empty() => {
                // vwap: (sum F*L) % sum L
                format!("(sum {f}*{l}) % sum {l}", f = floats[0], l = longs[0])
            }
            n => {
                let agg = ["max", "min", "sum", "avg", "first", "last"]
                    [(n as usize + rng.gen_range(0..6usize)) % 6];
                let all: Vec<&str> =
                    floats.iter().chain(longs.iter()).copied().collect();
                format!("{agg} {}", all[rng.gen_range(0..all.len())])
            }
        }
    }

    /// Random arithmetic projection expression.
    fn arith_expr(&mut self, rng: &mut StdRng, spec: &TableSpec) -> String {
        let floats = spec.nums_of(NumKind::Float);
        let longs = spec.nums_of(NumKind::Long);
        let all: Vec<&str> = floats.iter().chain(longs.iter()).copied().collect();
        let a = all[rng.gen_range(0..all.len())];
        let b = all[rng.gen_range(0..all.len())];
        let op = ["*", "+", "-"][rng.gen_range(0..3usize)];
        format!("{a}{op}{b}")
    }

    /// `n` random well-typed where-conjuncts over `spec`.
    fn wheres(&mut self, rng: &mut StdRng, spec: &TableSpec, n: usize) -> Vec<String> {
        let mut out = Vec::new();
        let floats = spec.nums_of(NumKind::Float);
        let longs = spec.nums_of(NumKind::Long);
        for _ in 0..n {
            out.push(match rng.gen_range(0..8u32) {
                0 => {
                    // Symbol equality — sometimes a symbol outside the
                    // universe (empty result path).
                    let s = if rng.gen_range(0..5u32) == 0 {
                        "ZZZ".to_string()
                    } else {
                        spec.universe[rng.gen_range(0..spec.universe.len())].clone()
                    };
                    format!("{}=`{s}", spec.sym_col)
                }
                1 => {
                    let k = rng.gen_range(1..=spec.universe.len());
                    let syms: String =
                        spec.universe[..k].iter().map(|s| format!("`{s}")).collect();
                    format!("{} in {syms}", spec.sym_col)
                }
                2 => {
                    let d = spec.dates[rng.gen_range(0..spec.dates.len())];
                    format!("{}={}", spec.date_col, crate::corpus::date_literal(d))
                }
                3 if !floats.is_empty() => {
                    let f = floats[rng.gen_range(0..floats.len())];
                    let (lo, hi) =
                        (rng.gen_range(0.0..100.0), rng.gen_range(100.0..260.0));
                    format!("{f} within {lo:.1} {hi:.1}")
                }
                4 if !longs.is_empty() => {
                    // Null comparison: two-valued logic on typed nulls.
                    format!("{}=0N", longs[rng.gen_range(0..longs.len())])
                }
                5 if floats.len() >= 2 => {
                    format!("{}>{}", floats[0], floats[1])
                }
                _ => {
                    // Numeric threshold.
                    if !longs.is_empty() && rng.gen_range(0..2u32) == 0 {
                        let l = longs[rng.gen_range(0..longs.len())];
                        let op = [">", "<", ">=", "<="][rng.gen_range(0..4usize)];
                        format!("{l}{op}{}", rng.gen_range(0i64..1000))
                    } else if !floats.is_empty() {
                        let f = floats[rng.gen_range(0..floats.len())];
                        let op = [">", "<"][rng.gen_range(0..2usize)];
                        format!("{f}{op}{:.2}", rng.gen_range(0.0..250.0))
                    } else {
                        format!("{}=`{}", spec.sym_col, spec.universe[0])
                    }
                }
            });
        }
        out
    }
}

fn has_null_literal(wheres: &[String]) -> bool {
    wheres.iter().any(|w| w.contains("=0N"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::gen_dataset;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn programs_are_deterministic_per_seed() {
        let render = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let ds = gen_dataset(&mut rng);
            let mut g = ProgramGen::new();
            let mut cov = Coverage::default();
            (0..10).flat_map(|_| g.gen_program(&mut rng, &ds, &mut cov).render()).collect::<Vec<_>>()
        };
        assert_eq!(render(11), render(11));
        assert_ne!(render(11), render(12), "different seeds must differ");
    }

    #[test]
    fn coverage_spans_all_families_over_many_programs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = ProgramGen::new();
        let mut cov = Coverage::default();
        for _ in 0..40 {
            let ds = gen_dataset(&mut rng);
            for _ in 0..5 {
                g.gen_program(&mut rng, &ds, &mut cov);
            }
        }
        for (family, count) in cov.families() {
            assert!(count > 0, "family {family} never generated");
        }
    }

    #[test]
    fn generated_statements_parse() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = ProgramGen::new();
        let mut cov = Coverage::default();
        for _ in 0..30 {
            let ds = gen_dataset(&mut rng);
            let p = g.gen_program(&mut rng, &ds, &mut cov);
            for s in p.render() {
                qlang::parse(&s).unwrap_or_else(|e| panic!("generated {s:?} fails to parse: {e}"));
            }
        }
    }

    #[test]
    fn shrink_candidates_are_structurally_smaller_or_equal() {
        let mut rng = StdRng::seed_from_u64(9);
        let ds = gen_dataset(&mut rng);
        let mut g = ProgramGen::new();
        let mut cov = Coverage::default();
        let p = g.gen_program(&mut rng, &ds, &mut cov);
        for s in &p.stmts {
            let len = s.render().len();
            for c in s.shrink_candidates() {
                assert!(c.render().len() <= len + 8, "{} -> {}", s.render(), c.render());
            }
        }
    }

    #[test]
    fn first_last_by_renders_the_open_close_idiom() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen_dataset(&mut rng);
        let mut g = ProgramGen::new();
        let s = g.first_last_by(&mut rng, &ds.main);
        let r = s.render();
        assert!(r.contains("first") && r.contains("last") && r.contains(" by "), "{r}");
    }
}
