//! Cell-level divergence explanation.
//!
//! When the tri-executor harness flags a statement, the raw values can be
//! large tables; the fuzz log and the repro header want a *pointed*
//! explanation — which column, which row, which two cells — computed
//! under Q's 2-valued null semantics (typed nulls compare equal to
//! themselves, `NaN == NaN`).

use hyperq::Outcome;
use qlang::value::Value;

/// How many differing cells to spell out before eliding.
const MAX_CELLS: usize = 4;

/// Explain why two outcomes disagree. `None` means they agree.
pub fn explain(a: &Outcome, b: &Outcome) -> Option<String> {
    match (a, b) {
        (Outcome::Error(_), Outcome::Error(_)) => None,
        (Outcome::Value(_), Outcome::Error(e)) => Some(format!("one-sided error: {e}")),
        (Outcome::Error(e), Outcome::Value(_)) => Some(format!("one-sided error: {e}")),
        (Outcome::Value(va), Outcome::Value(vb)) => explain_values(va, vb),
    }
}

/// Explain why two values differ under Q equality. `None` means equal.
pub fn explain_values(a: &Value, b: &Value) -> Option<String> {
    if a.q_eq(b) {
        return None;
    }
    match (a, b) {
        (Value::Table(ta), Value::Table(tb)) => {
            if ta.names != tb.names {
                return Some(format!(
                    "column sets differ: {:?} vs {:?}",
                    ta.names, tb.names
                ));
            }
            if ta.rows() != tb.rows() {
                return Some(format!("row counts differ: {} vs {}", ta.rows(), tb.rows()));
            }
            let mut cells = Vec::new();
            for (name, (ca, cb)) in
                ta.names.iter().zip(ta.columns.iter().zip(&tb.columns))
            {
                for r in 0..ta.rows() {
                    let xa = ca.index(r).unwrap_or(Value::Nil);
                    let xb = cb.index(r).unwrap_or(Value::Nil);
                    if !xa.q_eq(&xb) {
                        cells.push(format!("{name}[{r}]: {xa:?} vs {xb:?}"));
                        if cells.len() > MAX_CELLS {
                            cells.push("…".to_string());
                            return Some(cells.join("; "));
                        }
                    }
                }
            }
            if cells.is_empty() {
                // q_eq said unequal but every cell matched — a structural
                // difference (e.g. column order) the loops above missed.
                Some("values differ structurally".to_string())
            } else {
                Some(cells.join("; "))
            }
        }
        _ => {
            let (la, lb) = (a.len(), b.len());
            if let (Some(la), Some(lb)) = (la, lb) {
                if la != lb {
                    return Some(format!("lengths differ: {la} vs {lb}"));
                }
                for i in 0..la {
                    let xa = a.index(i).unwrap_or(Value::Nil);
                    let xb = b.index(i).unwrap_or(Value::Nil);
                    if !xa.q_eq(&xb) {
                        return Some(format!("[{i}]: {xa:?} vs {xb:?}"));
                    }
                }
            }
            Some(format!("{a:?} vs {b:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlang::value::{Table, Value};

    #[test]
    fn equal_values_need_no_explanation() {
        let a = Value::Floats(vec![1.0, f64::NAN]);
        let b = Value::Floats(vec![1.0, f64::NAN]);
        assert!(explain_values(&a, &b).is_none(), "NaN cells must compare equal");
    }

    #[test]
    fn differing_cell_is_named() {
        let t = |v| {
            Value::Table(Box::new(
                Table::new(vec!["P".into()], vec![Value::Longs(vec![1, v])]).unwrap(),
            ))
        };
        let why = explain_values(&t(2), &t(3)).expect("must differ");
        assert!(why.contains("P[1]"), "{why}");
    }

    #[test]
    fn one_sided_error_is_reported() {
        let a = Outcome::Value(Value::Longs(vec![1]));
        let b = Outcome::Error("boom".into());
        assert!(explain(&a, &b).unwrap().contains("boom"));
        assert!(explain(
            &Outcome::Error("x".into()),
            &Outcome::Error("y".into())
        )
        .is_none());
    }

    #[test]
    fn row_count_differences_short_circuit() {
        let t1 = Value::Table(Box::new(
            Table::new(vec!["P".into()], vec![Value::Longs(vec![1])]).unwrap(),
        ));
        let t2 = Value::Table(Box::new(
            Table::new(vec!["P".into()], vec![Value::Longs(vec![1, 2])]).unwrap(),
        ));
        assert!(explain_values(&t1, &t2).unwrap().contains("row counts"));
    }
}
