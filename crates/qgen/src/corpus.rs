//! Self-contained repro files (`tests/corpus/*.q`).
//!
//! A repro is a plain Q script: comment header lines (`/ ...`), table
//! definitions as Q table literals, a `/ ---` separator, then the
//! statements that diverge. The file needs nothing but itself — data is
//! inlined, so a repro pinned years later still replays bit-identically.
//!
//! ```text
//! / qgen shrunk repro
//! / divergence: ReferenceVsCold
//! trades: ([] Sym: `A`B; Price: 1.5 0n)
//! / ---
//! select c: count Price from trades
//! ```
//!
//! [`replay`] evaluates the setup in a scratch reference interpreter,
//! extracts the defined tables, and re-runs the statements through the
//! tri-executor [`BatchDriver`] — the same harness the fuzzer used when
//! it found the bug.

use hyperq::{BatchDriver, BatchReport};
use qengine::Interp;
use qlang::value::{Table, Value};
use qlang::{QError, QResult};
use std::path::Path;

/// Render a Q date literal (`2016.06.26`, null → `0Nd`) from days since
/// 2000.01.01.
pub fn date_literal(days: i32) -> String {
    if days == i32::MIN {
        return "0Nd".to_string();
    }
    let (y, m, d) = xtra::types::days_to_ymd(days);
    format!("{y:04}.{m:02}.{d:02}")
}

/// Render a Q time literal (`09:30:00.000`, null → `0Nt`) from
/// milliseconds since midnight.
pub fn time_literal(ms: i32) -> String {
    if ms == i32::MIN {
        return "0Nt".to_string();
    }
    let (h, rem) = (ms / 3_600_000, ms % 3_600_000);
    let (mi, rem) = (rem / 60_000, rem % 60_000);
    let (s, milli) = (rem / 1000, rem % 1000);
    format!("{h:02}:{mi:02}:{s:02}.{milli:03}")
}

fn float_literal(v: f64) -> String {
    if v.is_nan() {
        return "0n".to_string();
    }
    let s = format!("{v}");
    // Bare integers would parse as longs; force the float domain.
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

fn long_literal(v: i64) -> String {
    if v == i64::MIN {
        "0N".to_string()
    } else {
        v.to_string()
    }
}

/// Render one column vector as a Q literal expression. Single-element
/// vectors are wrapped in `enlist` so they stay lists, not atoms.
pub fn column_literal(col: &Value) -> QResult<String> {
    let (body, n) = match col {
        Value::Symbols(xs) => {
            (xs.iter().map(|s| format!("`{s}")).collect::<String>(), xs.len())
        }
        Value::Longs(xs) => (
            xs.iter().map(|v| long_literal(*v)).collect::<Vec<_>>().join(" "),
            xs.len(),
        ),
        Value::Floats(xs) => (
            xs.iter().map(|v| float_literal(*v)).collect::<Vec<_>>().join(" "),
            xs.len(),
        ),
        Value::Dates(xs) => (
            xs.iter().map(|v| date_literal(*v)).collect::<Vec<_>>().join(" "),
            xs.len(),
        ),
        Value::Times(xs) => (
            xs.iter().map(|v| time_literal(*v)).collect::<Vec<_>>().join(" "),
            xs.len(),
        ),
        other => {
            return Err(QError::type_err(format!(
                "corpus renderer does not support {} columns",
                other.type_name()
            )))
        }
    };
    Ok(if n == 1 { format!("enlist {body}") } else { body })
}

/// Render `name: ([] c1: ...; c2: ...)` for a table.
pub fn table_literal(name: &str, table: &Table) -> QResult<String> {
    let mut cols = Vec::with_capacity(table.width());
    for (n, c) in table.names.iter().zip(&table.columns) {
        cols.push(format!("{n}: {}", column_literal(c)?));
    }
    Ok(format!("{name}: ([] {})", cols.join("; ")))
}

/// A parsed repro file.
#[derive(Debug, Clone, Default)]
pub struct Repro {
    /// Header comment lines (without the leading `/ `).
    pub header: Vec<String>,
    /// Table-definition statements (before the `/ ---` separator).
    pub setup: Vec<String>,
    /// The diverging statements (after the separator).
    pub statements: Vec<String>,
}

impl Repro {
    /// Build a repro from tables and statements.
    pub fn new(
        header: Vec<String>,
        tables: &[(String, Table)],
        statements: Vec<String>,
    ) -> QResult<Self> {
        let mut setup = Vec::with_capacity(tables.len());
        for (name, t) in tables {
            setup.push(table_literal(name, t)?);
        }
        Ok(Repro { header, setup, statements })
    }

    /// Serialize to the `.q` file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for h in &self.header {
            out.push_str("/ ");
            out.push_str(h);
            out.push('\n');
        }
        for s in &self.setup {
            out.push_str(s);
            out.push('\n');
        }
        out.push_str("/ ---\n");
        for s in &self.statements {
            out.push_str(s);
            out.push('\n');
        }
        out
    }

    /// Parse the `.q` file format.
    pub fn parse(text: &str) -> Repro {
        let mut repro = Repro::default();
        let mut after_sep = false;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if line.trim() == "/ ---" {
                after_sep = true;
            } else if let Some(rest) = line.strip_prefix("/ ") {
                if !after_sep {
                    repro.header.push(rest.to_string());
                }
            } else if line == "/" {
                // blank comment
            } else if after_sep {
                repro.statements.push(line.to_string());
            } else {
                repro.setup.push(line.to_string());
            }
        }
        repro
    }

    /// The tables this repro defines, materialized by evaluating the
    /// setup statements in a scratch reference interpreter.
    pub fn tables(&self) -> QResult<Vec<(String, Table)>> {
        let mut scratch = Interp::new();
        let mut out = Vec::with_capacity(self.setup.len());
        for stmt in &self.setup {
            scratch.run(stmt)?;
            let name = stmt
                .split(':')
                .next()
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| {
                    QError::parse(format!("corpus setup line has no name: {stmt}"))
                })?;
            match scratch.env.lookup(name) {
                Some(Value::Table(t)) => out.push((name.to_string(), (**t).clone())),
                Some(other) => {
                    return Err(QError::type_err(format!(
                        "corpus setup {name} is {}, expected a table",
                        other.type_name()
                    )))
                }
                None => {
                    return Err(QError::parse(format!(
                        "corpus setup did not define {name}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// Load a repro file.
pub fn load_repro(path: &Path) -> std::io::Result<Repro> {
    Ok(Repro::parse(&std::fs::read_to_string(path)?))
}

/// Write a repro file.
pub fn write_repro(path: &Path, repro: &Repro) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, repro.render())
}

/// Replay a repro through the tri-executor driver and return the report.
pub fn replay(repro: &Repro) -> QResult<BatchReport> {
    let tables = repro.tables()?;
    let mut driver = BatchDriver::new(&tables)?;
    Ok(driver.run_program(&repro.statements))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::new(
            vec!["Sym".into(), "D".into(), "T".into(), "P".into(), "L".into()],
            vec![
                Value::Symbols(vec!["A".into(), "B".into(), "".into()]),
                Value::Dates(vec![6021, 6022, i32::MIN]),
                Value::Times(vec![34_200_000, 35_000_500, i32::MIN]),
                Value::Floats(vec![1.5, f64::NAN, 250.0]),
                Value::Longs(vec![0, i64::MIN, 999]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn literals_round_trip_through_the_reference_parser() {
        let t = sample_table();
        let lit = table_literal("t", &t).unwrap();
        let mut interp = Interp::new();
        interp.run(&lit).unwrap();
        match interp.env.lookup("t") {
            Some(Value::Table(parsed)) => {
                assert!(
                    Value::Table(parsed.clone()).q_eq(&Value::Table(Box::new(t))),
                    "round-trip mismatch:\n{lit}\n{parsed:?}"
                );
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn single_row_tables_use_enlist() {
        let t = Table::new(
            vec!["S".into(), "V".into()],
            vec![Value::Symbols(vec!["A".into()]), Value::Longs(vec![7])],
        )
        .unwrap();
        let lit = table_literal("one", &t).unwrap();
        assert!(lit.contains("enlist"), "{lit}");
        let mut interp = Interp::new();
        interp.run(&lit).unwrap();
        match interp.env.lookup("one") {
            Some(Value::Table(parsed)) => assert_eq!(parsed.rows(), 1),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn repro_format_round_trips() {
        let t = sample_table();
        let repro = Repro::new(
            vec!["qgen shrunk repro".into(), "divergence: ReferenceVsCold".into()],
            &[("t".to_string(), t)],
            vec!["select from t".into()],
        )
        .unwrap();
        let parsed = Repro::parse(&repro.render());
        assert_eq!(parsed.header, repro.header);
        assert_eq!(parsed.setup, repro.setup);
        assert_eq!(parsed.statements, repro.statements);
        let tables = parsed.tables().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].1.rows(), 3);
    }

    #[test]
    fn replay_runs_the_tri_executor_harness() {
        let repro = Repro::parse(
            "/ header\nt: ([] S: `a`b; V: 1 2)\n/ ---\nselect s: sum V by S from t\n",
        );
        let report = replay(&repro).unwrap();
        assert_eq!(report.statements.len(), 1);
        assert!(report.clean(), "{:?}", report.divergent());
    }
}
