//! Schema-aware dataset generation.
//!
//! Every fuzzed program runs against a *randomized but valid* dataset:
//! a TAQ-shaped main table (symbols, times, dates, numeric columns with
//! configurable null density), a quotes-shaped auxiliary table sharing
//! the main table's symbol/time/date column names (so `aj` and `uj`
//! statements type-check by construction), and a reference lookup table
//! keyed by symbol whose universe only partially overlaps the main
//! table's (so `lj` null-fills and `ij` drops rows).
//!
//! Column *names*, row counts, symbol universes, date ranges and null
//! fractions all vary per seed; the *roles* are fixed so the grammar can
//! always produce well-typed statements.

use qlang::value::{Table, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// A float or long value column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumKind {
    /// `double precision` / Q floats; null is NaN.
    Float,
    /// `bigint` / Q longs; null is `0N`.
    Long,
}

/// One generated table's shape, as the grammar sees it.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Low-cardinality symbol column (grouping / join key).
    pub sym_col: String,
    /// Ascending time column (as-of join axis, ordcol queries).
    pub time_col: String,
    /// Date column (small distinct set).
    pub date_col: String,
    /// Numeric value columns, in declaration order.
    pub num_cols: Vec<(String, NumKind)>,
    /// Distinct symbols appearing in `sym_col`.
    pub universe: Vec<String>,
    /// Distinct dates appearing in `date_col` (days since 2000.01.01).
    pub dates: Vec<i32>,
    /// Row count.
    pub rows: usize,
}

impl TableSpec {
    /// Numeric columns of one kind.
    pub fn nums_of(&self, kind: NumKind) -> Vec<&str> {
        self.num_cols
            .iter()
            .filter(|(_, k)| *k == kind)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// All column names in declaration order.
    pub fn all_cols(&self) -> Vec<String> {
        let mut out = vec![
            self.sym_col.clone(),
            self.time_col.clone(),
            self.date_col.clone(),
        ];
        out.extend(self.num_cols.iter().map(|(n, _)| n.clone()));
        out
    }
}

/// The reference lookup table (`main lj 1!refdata` targets).
#[derive(Debug, Clone)]
pub struct RefSpec {
    /// Table name.
    pub name: String,
    /// Key column — same name as the main table's `sym_col`.
    pub key_col: String,
    /// Symbol-valued attribute column (e.g. a sector).
    pub sym_val_col: String,
    /// Long-valued attribute column (e.g. a lot size).
    pub long_val_col: String,
}

/// A complete generated dataset: specs plus the materialized tables.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The trades-shaped main table.
    pub main: TableSpec,
    /// The quotes-shaped auxiliary table (shares key column names).
    pub aux: TableSpec,
    /// The symbol-keyed lookup table.
    pub refdata: RefSpec,
    /// Name → data, in load order.
    pub tables: Vec<(String, Table)>,
}

const SYM_POOL: &[&str] = &["AAPL", "GOOG", "IBM", "MSFT", "XOM", "TSLA", "ORCL", "SAP"];
const SECTOR_POOL: &[&str] = &["tech", "energy", "auto", "services", "fin"];

fn pick<'a, T: ?Sized>(rng: &mut StdRng, pool: &'a [&'a T]) -> &'a T {
    pool[rng.gen_range(0..pool.len())]
}

/// Sample `n` distinct entries from `pool` (n <= pool.len()).
fn sample_distinct(rng: &mut StdRng, pool: &[&str], n: usize) -> Vec<String> {
    let mut remaining: Vec<&str> = pool.to_vec();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n.min(pool.len()) {
        let i = rng.gen_range(0..remaining.len());
        out.push(remaining.swap_remove(i).to_string());
    }
    out
}

/// Generate a float column over `[lo, hi)` with `null_frac` NaN nulls.
fn float_col(rng: &mut StdRng, rows: usize, lo: f64, hi: f64, null_frac: f64) -> Value {
    Value::Floats(
        (0..rows)
            .map(|_| {
                if rng.gen_f64() < null_frac {
                    f64::NAN
                } else {
                    // Two decimal places: keeps literals short and exact
                    // in both the SQL loader and the Q corpus renderer.
                    (rng.gen_range(lo..hi) * 100.0).round() / 100.0
                }
            })
            .collect(),
    )
}

/// Generate a long column over `[lo, hi)` with `null_frac` `0N` nulls.
fn long_col(rng: &mut StdRng, rows: usize, lo: i64, hi: i64, null_frac: f64) -> Value {
    Value::Longs(
        (0..rows)
            .map(|_| if rng.gen_f64() < null_frac { i64::MIN } else { rng.gen_range(lo..hi) })
            .collect(),
    )
}

/// Ascending intra-day times (ms since midnight), trading-hours flavored.
fn time_col(rng: &mut StdRng, rows: usize) -> Vec<i32> {
    let mut ts: Vec<i32> =
        (0..rows).map(|_| rng.gen_range(34_200_000..57_600_000)).collect();
    ts.sort_unstable();
    ts
}

fn build_event_table(rng: &mut StdRng, spec: &TableSpec, null_frac: f64) -> Table {
    let rows = spec.rows;
    let syms: Vec<String> =
        (0..rows).map(|_| spec.universe[rng.gen_range(0..spec.universe.len())].clone()).collect();
    let dates: Vec<i32> =
        (0..rows).map(|_| spec.dates[rng.gen_range(0..spec.dates.len())]).collect();
    let times = time_col(rng, rows);
    let mut names = vec![spec.date_col.clone(), spec.sym_col.clone(), spec.time_col.clone()];
    let mut columns = vec![Value::Dates(dates), Value::Symbols(syms), Value::Times(times)];
    for (n, kind) in &spec.num_cols {
        names.push(n.clone());
        columns.push(match kind {
            NumKind::Float => float_col(rng, rows, 1.0, 250.0, null_frac),
            NumKind::Long => long_col(rng, rows, 0, 1000, null_frac),
        });
    }
    Table::new(names, columns).expect("generated columns are equal-length")
}

/// Generate one randomized dataset.
pub fn gen_dataset(rng: &mut StdRng) -> Dataset {
    // Column-name pools: varied so identifier handling is covered, but
    // role-stable so the grammar stays well-typed.
    let sym_col = pick(rng, &["Sym", "Symbol", "Ticker"]).to_string();
    let time_col_name = pick(rng, &["Time", "Ts"]).to_string();
    let date_col = pick(rng, &["Date", "Day"]).to_string();
    let main_name = pick(rng, &["trades", "orders", "events"]).to_string();
    let aux_name = pick(rng, &["quotes", "marks"]).to_string();
    let ref_name = pick(rng, &["refdata", "universe"]).to_string();

    let universe_n = rng.gen_range(2..=5);
    let universe = sample_distinct(rng, SYM_POOL, universe_n);
    let date0 = rng.gen_range(5990..6040); // around mid-2016
    let dates: Vec<i32> = (0..rng.gen_range(1..=2)).map(|i| date0 + i).collect();
    let null_frac = [0.0, 0.1, 0.25, 0.4][rng.gen_range(0..4usize)];

    // Main: one float + one long value column, occasionally a second float.
    let mut main_nums = vec![
        (pick(rng, &["Price", "Px", "Val"]).to_string(), NumKind::Float),
        (pick(rng, &["Size", "Qty", "Vol"]).to_string(), NumKind::Long),
    ];
    if rng.gen_range(0..3u32) == 0 {
        main_nums.push(("Fee".to_string(), NumKind::Float));
    }
    let main = TableSpec {
        name: main_name,
        sym_col: sym_col.clone(),
        time_col: time_col_name.clone(),
        date_col: date_col.clone(),
        num_cols: main_nums,
        universe: universe.clone(),
        dates: dates.clone(),
        rows: rng.gen_range(6..40),
    };

    // Aux: bid/ask-style float pair, distinct names from main's columns.
    let aux = TableSpec {
        name: aux_name,
        sym_col: sym_col.clone(),
        time_col: time_col_name,
        date_col,
        num_cols: vec![
            ("Bid".to_string(), NumKind::Float),
            ("Ask".to_string(), NumKind::Float),
        ],
        universe: universe.clone(),
        dates,
        rows: rng.gen_range(12..80),
    };

    // Refdata: one row per symbol of a *subset* of the universe, so
    // lookup joins exercise both the hit and the miss path.
    let covered = rng.gen_range(1..=universe.len());
    let ref_universe = sample_distinct(
        rng,
        &universe.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        covered,
    );
    let refdata = RefSpec {
        name: ref_name,
        key_col: sym_col,
        sym_val_col: "Sector".to_string(),
        long_val_col: "Lot".to_string(),
    };
    let ref_table = Table::new(
        vec![
            refdata.key_col.clone(),
            refdata.sym_val_col.clone(),
            refdata.long_val_col.clone(),
        ],
        vec![
            Value::Symbols(ref_universe.clone()),
            Value::Symbols(
                ref_universe.iter().map(|_| pick(rng, SECTOR_POOL).to_string()).collect(),
            ),
            Value::Longs(ref_universe.iter().map(|_| rng.gen_range(1i64..500)).collect()),
        ],
    )
    .expect("refdata columns are equal-length");

    let main_table = build_event_table(rng, &main, null_frac);
    let aux_table = build_event_table(rng, &aux, null_frac * 0.5);
    let tables = vec![
        (main.name.clone(), main_table),
        (aux.name.clone(), aux_table),
        (refdata.name.clone(), ref_table),
    ];
    Dataset { main, aux, refdata, tables }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn datasets_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let da = gen_dataset(&mut a);
        let db = gen_dataset(&mut b);
        assert_eq!(da.main.name, db.main.name);
        for ((na, ta), (nb, tb)) in da.tables.iter().zip(&db.tables) {
            assert_eq!(na, nb);
            assert!(Value::Table(Box::new(ta.clone()))
                .q_eq(&Value::Table(Box::new(tb.clone()))));
        }
    }

    #[test]
    fn datasets_vary_across_seeds() {
        let mut names = std::collections::HashSet::new();
        let mut rowcounts = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = gen_dataset(&mut rng);
            names.insert(d.main.sym_col.clone());
            rowcounts.insert(d.main.rows);
        }
        assert!(names.len() > 1, "sym column name never varies");
        assert!(rowcounts.len() > 3, "row counts never vary");
    }

    #[test]
    fn generated_tables_are_valid_and_sorted_by_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = gen_dataset(&mut rng);
        let (_, main) = &d.tables[0];
        assert_eq!(main.rows(), d.main.rows);
        match main.column(&d.main.time_col).unwrap() {
            Value::Times(ts) => assert!(ts.windows(2).all(|w| w[0] <= w[1])),
            other => panic!("time column must be Times, got {other:?}"),
        }
    }
}
