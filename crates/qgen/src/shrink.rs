//! Delta-debugging shrinker.
//!
//! Given a diverging (program, dataset) pair, reduce both until the
//! divergence is minimal, in four passes:
//!
//! 1. **statement-level** — drop whole statements (try each singleton
//!    first: most bugs are one statement);
//! 2. **expression-level** — replace statements by structurally smaller
//!    candidates ([`GenStmt::shrink_candidates`]): fewer `where`
//!    conjuncts, fewer projections, a join replaced by one input;
//! 3. **row-level** — remove row chunks per table, halving the chunk
//!    size down to single rows (ddmin-style);
//! 4. **column-level** — drop columns the divergence doesn't need
//!    (dropping a referenced column makes *all* executors error, which
//!    counts as agreement, so such drops reject themselves).
//!
//! Every candidate is re-checked through a **fresh** tri-executor
//! [`BatchDriver`] so accepted reductions never depend on leftover
//! session state. The total number of checks is bounded; when the budget
//! is exhausted the current (already reduced) form is returned.

use crate::grammar::GenStmt;
use hyperq::BatchDriver;
use qlang::value::Table;

/// The shrinker; tune [`Shrinker::max_checks`] to trade minimality for
/// time.
pub struct Shrinker {
    /// Upper bound on tri-executor re-checks across all passes.
    pub max_checks: usize,
    checks: usize,
}

/// A minimized divergence.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The reduced dataset.
    pub tables: Vec<(String, Table)>,
    /// The reduced program.
    pub stmts: Vec<GenStmt>,
    /// How many tri-executor checks the reduction spent.
    pub checks: usize,
}

impl Default for Shrinker {
    fn default() -> Self {
        Shrinker::new(400)
    }
}

impl Shrinker {
    /// A shrinker with an explicit check budget.
    pub fn new(max_checks: usize) -> Self {
        Shrinker { max_checks, checks: 0 }
    }

    /// Does (tables, stmts) still diverge? Spends one check.
    fn diverges(&mut self, tables: &[(String, Table)], stmts: &[GenStmt]) -> bool {
        if self.checks >= self.max_checks {
            return false; // budget exhausted: reject further reductions
        }
        self.checks += 1;
        let rendered: Vec<String> = stmts.iter().map(GenStmt::render).collect();
        match BatchDriver::new(tables) {
            Ok(mut d) => !d.run_program(&rendered).clean(),
            Err(_) => false,
        }
    }

    /// Reduce a diverging (program, dataset) pair. The input must
    /// actually diverge; the output is guaranteed to still diverge
    /// (every accepted reduction was re-checked).
    pub fn shrink(
        mut self,
        tables: &[(String, Table)],
        stmts: &[GenStmt],
    ) -> ShrinkResult {
        let mut tables = tables.to_vec();
        let mut stmts = stmts.to_vec();
        self.shrink_statements(&tables, &mut stmts);
        self.shrink_expressions(&tables, &mut stmts);
        self.shrink_rows(&mut tables, &stmts);
        self.shrink_columns(&mut tables, &stmts);
        // Drop tables no remaining statement can reach (cheap textual
        // reachability: the table name appears in no statement).
        let rendered: Vec<String> = stmts.iter().map(GenStmt::render).collect();
        let keep: Vec<(String, Table)> = tables
            .iter()
            .filter(|(name, _)| rendered.iter().any(|s| s.contains(name.as_str())))
            .cloned()
            .collect();
        if !keep.is_empty() && keep.len() < tables.len() && self.diverges(&keep, &stmts) {
            tables = keep;
        }
        ShrinkResult { tables, stmts, checks: self.checks }
    }

    fn shrink_statements(&mut self, tables: &[(String, Table)], stmts: &mut Vec<GenStmt>) {
        // Fast path: a single statement that diverges alone.
        if stmts.len() > 1 {
            for i in 0..stmts.len() {
                let one = vec![stmts[i].clone()];
                if self.diverges(tables, &one) {
                    *stmts = one;
                    return;
                }
            }
        }
        // Greedy removal to fixpoint.
        let mut changed = true;
        while changed && stmts.len() > 1 {
            changed = false;
            let mut i = 0;
            while i < stmts.len() && stmts.len() > 1 {
                let mut candidate = stmts.clone();
                candidate.remove(i);
                if self.diverges(tables, &candidate) {
                    *stmts = candidate;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
    }

    fn shrink_expressions(&mut self, tables: &[(String, Table)], stmts: &mut [GenStmt]) {
        for i in 0..stmts.len() {
            loop {
                let mut reduced = false;
                for cand in stmts[i].shrink_candidates() {
                    let mut candidate = stmts.to_vec();
                    candidate[i] = cand.clone();
                    if self.diverges(tables, &candidate) {
                        stmts[i] = cand;
                        reduced = true;
                        break;
                    }
                }
                if !reduced {
                    break;
                }
            }
        }
    }

    fn shrink_rows(&mut self, tables: &mut [(String, Table)], stmts: &[GenStmt]) {
        for ti in 0..tables.len() {
            let mut chunk = tables[ti].1.rows() / 2;
            while chunk >= 1 {
                let mut start = 0;
                while start < tables[ti].1.rows() {
                    let rows = tables[ti].1.rows();
                    if rows <= 1 {
                        break; // corpus renderer needs at least one row
                    }
                    let end = (start + chunk).min(rows);
                    if end - start >= rows {
                        start = end;
                        continue;
                    }
                    let keep: Vec<usize> =
                        (0..rows).filter(|r| *r < start || *r >= end).collect();
                    let mut candidate = tables.to_vec();
                    candidate[ti].1 = candidate[ti].1.take_rows(&keep);
                    if self.diverges(&candidate, stmts) {
                        tables[ti].1 = candidate[ti].1.clone();
                        // Re-scan from the same offset: indices shifted.
                    } else {
                        start = end;
                    }
                }
                chunk /= 2;
            }
        }
    }

    fn shrink_columns(&mut self, tables: &mut [(String, Table)], stmts: &[GenStmt]) {
        for ti in 0..tables.len() {
            let mut ci = 0;
            while ci < tables[ti].1.width() {
                if tables[ti].1.width() <= 1 {
                    break;
                }
                let t = &tables[ti].1;
                let names: Vec<String> = t
                    .names
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ci)
                    .map(|(_, n)| n.clone())
                    .collect();
                let columns: Vec<_> = t
                    .columns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ci)
                    .map(|(_, c)| c.clone())
                    .collect();
                match Table::new(names, columns) {
                    Ok(smaller) => {
                        let mut candidate = tables.to_vec();
                        candidate[ti].1 = smaller;
                        if self.diverges(&candidate, stmts) {
                            tables[ti].1 = candidate[ti].1.clone();
                        } else {
                            ci += 1;
                        }
                    }
                    Err(_) => ci += 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{GenStmt, Proj, Select, SelectKind};
    use qlang::value::{Table, Value};

    // End-to-end shrinking against a real divergence lives in the
    // fuzz_differential integration test (via the count-col fault hook);
    // the unit tests here pin the reduction mechanics and budgets.
    #[test]
    fn budget_zero_returns_input_unchanged() {
        let t = Table::new(vec!["V".into()], vec![Value::Longs(vec![1, 2, 3])]).unwrap();
        let tables = vec![("t".to_string(), t)];
        let stmts = vec![
            GenStmt::Raw("select from t".into()),
            GenStmt::Raw("exec V from t".into()),
        ];
        let r = Shrinker::new(0).shrink(&tables, &stmts);
        assert_eq!(r.stmts.len(), 2, "no checks allowed → nothing may be accepted");
        assert_eq!(r.tables[0].1.rows(), 3);
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn clean_input_is_not_reduced() {
        // Nothing diverges, so every candidate must be rejected and the
        // program survives intact.
        let t = Table::new(
            vec!["S".into(), "V".into()],
            vec![
                Value::Symbols(vec!["a".into(), "b".into()]),
                Value::Longs(vec![1, 2]),
            ],
        )
        .unwrap();
        let tables = vec![("t".to_string(), t)];
        let stmts = vec![GenStmt::Sel(Select {
            kind: SelectKind::Select,
            projections: vec![Proj { alias: Some("s".into()), expr: "sum V".into() }],
            bys: vec!["S".into()],
            wheres: vec!["V>0".into()],
            source: "t".into(),
        })];
        let r = Shrinker::new(50).shrink(&tables, &stmts);
        assert_eq!(r.stmts.len(), 1);
        assert_eq!(r.stmts[0].render(), stmts[0].render());
        assert_eq!(r.tables[0].1.width(), 2);
        assert!(r.checks > 0);
    }
}
