//! The differential fuzz loop.
//!
//! Seeded end to end: one `QGEN_SEED` determines every dataset, every
//! program, and therefore every executor input — a CI failure replays
//! locally with two environment variables. Each generated program runs
//! through the tri-executor [`BatchDriver`] (reference interpreter,
//! cache-cold pipeline, cache-warm pipeline); every divergent statement
//! is recorded (the driver never stops at the first), optionally
//! shrunk, and written to the corpus directory as a self-contained
//! `found_*.q` repro.

use crate::corpus::Repro;
use crate::grammar::{Coverage, GenStmt, ProgramGen};
use crate::schema::{gen_dataset, Dataset};
use crate::shrink::Shrinker;
use hyperq::{BatchDriver, DivergenceKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// How many programs share one generated dataset (and one driver): the
/// dataset is the expensive part, and program variety — not dataset
/// variety — is what each seed mostly buys.
const PROGRAMS_PER_DATASET: usize = 10;

/// Fuzz-loop configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every dataset and program derives from it.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub budget: usize,
    /// Where to write shrunk `found_*.q` repros; `None` disables writing.
    pub corpus_dir: Option<PathBuf>,
    /// Run the delta-debugging shrinker on each divergence.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { seed: 42, budget: 500, corpus_dir: None, shrink: true }
    }
}

impl FuzzConfig {
    /// Read `QGEN_SEED` / `QGEN_BUDGET` from the environment, falling
    /// back to the defaults (seed 42, budget 500).
    pub fn from_env() -> Self {
        let mut cfg = FuzzConfig::default();
        if let Ok(s) = std::env::var("QGEN_SEED") {
            if let Ok(v) = s.trim().parse() {
                cfg.seed = v;
            }
        }
        if let Ok(s) = std::env::var("QGEN_BUDGET") {
            if let Ok(v) = s.trim().parse() {
                cfg.budget = v;
            }
        }
        cfg
    }
}

/// One confirmed divergence.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// Index of the originating program within the run.
    pub program_index: usize,
    /// The (shrunk, when enabled) diverging statements.
    pub statements: Vec<String>,
    /// Which executor pairs disagreed on the first divergent statement.
    pub kinds: Vec<DivergenceKind>,
    /// Cell-level explanation of the first divergence.
    pub explanation: String,
    /// The self-contained repro.
    pub repro: Repro,
    /// Where the repro was written, when a corpus dir is configured.
    pub repro_path: Option<PathBuf>,
}

/// The result of one fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated and executed.
    pub programs: usize,
    /// Total statements diffed across all three executors.
    pub statements: usize,
    /// Grammar family coverage across the run.
    pub coverage: Coverage,
    /// Every divergence found.
    pub bugs: Vec<FoundBug>,
}

fn explain_first(report: &hyperq::BatchReport) -> (Vec<DivergenceKind>, String) {
    let div = report.divergent();
    let first = match div.first() {
        Some(f) => f,
        None => return (Vec::new(), String::new()),
    };
    let kinds = first.divergences();
    let why = crate::diff::explain(&first.reference, &first.cold)
        .or_else(|| crate::diff::explain(&first.reference, &first.warm))
        .or_else(|| crate::diff::explain(&first.cold, &first.warm))
        .unwrap_or_else(|| "divergence kinds disagree with explanation".to_string());
    (kinds, format!("stmt {} `{}`: {why}", first.index, first.q))
}

/// Run the fuzz loop.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gen = ProgramGen::new();
    let mut out = FuzzReport::default();

    let mut dataset: Option<Dataset> = None;
    let mut driver: Option<BatchDriver> = None;
    for pi in 0..config.budget {
        if pi % PROGRAMS_PER_DATASET == 0 {
            let ds = gen_dataset(&mut rng);
            driver = BatchDriver::new(&ds.tables).ok();
            dataset = Some(ds);
        }
        let (ds, drv) = match (dataset.as_ref(), driver.as_mut()) {
            (Some(d), Some(v)) => (d, v),
            _ => continue,
        };
        let program = gen.gen_program(&mut rng, ds, &mut out.coverage);
        let rendered = program.render();
        out.programs += 1;
        out.statements += rendered.len();
        let report = drv.run_program(&rendered);
        if report.clean() {
            continue;
        }
        out.bugs.push(found_bug(config, pi, ds, &program.stmts, &report));
        // A diverging program may have left the three executors in
        // inconsistent states (e.g. a diverging assignment); rebuild the
        // driver so later programs are judged from a clean slate.
        driver = BatchDriver::new(&ds.tables).ok();
    }
    out
}

fn found_bug(
    config: &FuzzConfig,
    program_index: usize,
    ds: &Dataset,
    stmts: &[GenStmt],
    report: &hyperq::BatchReport,
) -> FoundBug {
    let (mut tables, mut final_stmts) = (ds.tables.clone(), stmts.to_vec());
    if config.shrink {
        let r = Shrinker::default().shrink(&tables, &final_stmts);
        tables = r.tables;
        final_stmts = r.stmts;
    }
    // Re-run the (possibly shrunk) form for the recorded explanation.
    let final_report = BatchDriver::new(&tables)
        .map(|mut d| d.run_program(&final_stmts.iter().map(GenStmt::render).collect::<Vec<_>>()))
        .unwrap_or_else(|_| report.clone());
    let (kinds, explanation) = explain_first(if final_report.clean() {
        report // shrink lost the bug somehow; fall back to the original
    } else {
        &final_report
    });
    let statements: Vec<String> = final_stmts.iter().map(GenStmt::render).collect();
    let header = vec![
        "qgen shrunk repro".to_string(),
        format!("seed: {} program: {program_index}", config.seed),
        format!("divergence: {kinds:?}"),
        format!("explanation: {explanation}"),
    ];
    let repro = Repro::new(header, &tables, statements.clone())
        .unwrap_or_else(|_| Repro { header: Vec::new(), setup: Vec::new(), statements: statements.clone() });
    let repro_path = config.corpus_dir.as_ref().map(|dir| {
        let path = dir.join(format!("found_seed{}_p{program_index}.q", config.seed));
        let _ = crate::corpus::write_repro(&path, &repro);
        path
    });
    FoundBug { program_index, statements, kinds, explanation, repro, repro_path }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_defaults_without_vars() {
        // Env vars are process-global; this test only asserts defaults
        // when the knobs are unset (CI never sets them for unit tests).
        if std::env::var("QGEN_SEED").is_err() && std::env::var("QGEN_BUDGET").is_err() {
            let cfg = FuzzConfig::from_env();
            assert_eq!(cfg.seed, 42);
            assert_eq!(cfg.budget, 500);
        }
    }

    #[test]
    fn small_run_is_deterministic_and_counts_coverage() {
        let cfg = FuzzConfig { seed: 7, budget: 12, corpus_dir: None, shrink: false };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.programs, 12);
        assert_eq!(a.statements, b.statements);
        assert_eq!(a.bugs.len(), b.bugs.len());
        assert!(a.statements >= 12);
    }
}
