//! Streaming batch pipeline: a schema plus an iterator of bounded
//! [`Batch`] chunks (DESIGN §12).
//!
//! A [`BatchStream`] is the executor→server currency for results that
//! should not be fully materialized: each `next()` yields one morsel-
//! sized batch over the *same* schema, so the PG DataRow codec and the
//! QIPC pivot can drain chunk-at-a-time with peak residency bounded by
//! the chunk size instead of the result size. The schema is carried
//! out-of-band because consumers (RowDescription, the pivot's empty-
//! result shaping) need it before — and independent of — the first
//! chunk.
//!
//! The error type is generic because this crate is dependency-free:
//! pgdb instantiates `BatchStream<DbError>`. An `Err` item ends the
//! stream (producers fuse after yielding it); consumers translate it
//! into their own mid-stream error signalling (an `ErrorResponse` after
//! partial `DataRow`s is legal PG v3: an error during a query aborts
//! the remainder).

use crate::batch::Batch;
use crate::types::Column;

/// A stream of bounded batches sharing one schema.
pub struct BatchStream<E> {
    /// Output schema; every yielded chunk carries an identical one.
    pub schema: Vec<Column>,
    chunks: Box<dyn Iterator<Item = Result<Batch, E>> + Send>,
}

impl<E> BatchStream<E> {
    /// A stream over an arbitrary chunk iterator.
    pub fn new(
        schema: Vec<Column>,
        chunks: impl Iterator<Item = Result<Batch, E>> + Send + 'static,
    ) -> BatchStream<E> {
        BatchStream { schema, chunks: Box::new(chunks) }
    }

    /// A single-chunk stream holding one already-materialized batch.
    pub fn once(batch: Batch) -> BatchStream<E>
    where
        E: Send + 'static,
    {
        BatchStream { schema: batch.schema.clone(), chunks: Box::new(std::iter::once(Ok(batch))) }
    }

    /// Re-chunk a materialized batch into `chunk_rows`-row slices. The
    /// batch is already resident, so this buys flow control downstream
    /// (bounded frames, incremental encoding), not peak-memory relief —
    /// that comes from producers that never materialize in the first
    /// place. A zero-row batch yields no chunks; the empty relation is
    /// expressed by the schema alone.
    pub fn chunked(batch: Batch, chunk_rows: usize) -> BatchStream<E>
    where
        E: Send + 'static,
    {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let schema = batch.schema.clone();
        let rows = batch.rows();
        // One-chunk results (the common case) skip the slice copies.
        if rows <= chunk_rows {
            if rows == 0 {
                return BatchStream { schema, chunks: Box::new(std::iter::empty()) };
            }
            return BatchStream::once(batch);
        }
        let offsets = (0..rows).step_by(chunk_rows);
        let chunks = offsets.map(move |o| Ok(batch.slice(o, chunk_rows.min(rows - o))));
        BatchStream { schema, chunks: Box::new(chunks) }
    }

    /// Drain the stream back into one materialized batch (tests, and
    /// consumers that genuinely need the whole relation).
    pub fn collect_batch(mut self) -> Result<Batch, E> {
        let mut out: Option<Batch> = None;
        for chunk in self.chunks.by_ref() {
            let chunk = chunk?;
            match &mut out {
                None => out = Some(chunk),
                Some(b) => b.append(chunk),
            }
        }
        Ok(out.unwrap_or_else(|| Batch::empty(self.schema)))
    }
}

impl<E> Iterator for BatchStream<E> {
    type Item = Result<Batch, E>;

    fn next(&mut self) -> Option<Self::Item> {
        self.chunks.next()
    }
}

impl<E> std::fmt::Debug for BatchStream<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchStream").field("schema", &self.schema).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Cell, PgType, Rows};

    fn batch(n: usize) -> Batch {
        Batch::from_rows(Rows {
            columns: vec![Column::new("v", PgType::Int8)],
            data: (0..n).map(|i| vec![Cell::Int(i as i64)]).collect(),
        })
    }

    #[test]
    fn chunked_slices_cover_every_row_in_order() {
        let b = batch(10);
        let s: BatchStream<()> = BatchStream::chunked(b.clone(), 4);
        let chunks: Vec<Batch> = s.map(|c| c.unwrap()).collect();
        assert_eq!(chunks.iter().map(Batch::rows).collect::<Vec<_>>(), vec![4, 4, 2]);
        let mut merged = chunks.into_iter();
        let mut acc = merged.next().unwrap();
        for c in merged {
            acc.append(c);
        }
        assert_eq!(acc, b, "re-appending chunks must reconstruct the batch exactly");
    }

    #[test]
    fn empty_batch_streams_zero_chunks_but_keeps_schema() {
        let s: BatchStream<()> = BatchStream::chunked(batch(0), 8);
        assert_eq!(s.schema.len(), 1);
        let got = s.collect_batch().unwrap();
        assert_eq!(got.rows(), 0);
        assert_eq!(got.schema[0].name, "v");
    }

    #[test]
    fn collect_batch_round_trips_once() {
        let b = batch(3);
        let s: BatchStream<()> = BatchStream::once(b.clone());
        assert_eq!(s.collect_batch().unwrap(), b);
    }
}
