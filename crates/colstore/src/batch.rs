//! The columnar batch representation shared across the stack.
//!
//! A [`Batch`] is the column-major dual of [`Rows`]: a schema plus one
//! [`ColumnVec`] per column and an **explicit row count**. The explicit
//! count is load-bearing — a scalar `SELECT 1 + 1` (no FROM clause) is
//! a *zero-column, one-row* relation, which a row-major `Vec<Vec<Cell>>`
//! can only express with the `vec![vec![]]` hack but a batch states
//! directly.
//!
//! Each `ColumnVec` stores one typed vector (the natural machine
//! representation of a Q/PG column) plus a [`Validity`] bitmap marking
//! NULL slots; null slots hold an arbitrary placeholder in the data
//! vector and must never be read as values. Columns whose cells mix
//! storage classes at runtime (the executor is dynamically typed, so
//! `CASE WHEN b THEN 1 ELSE 1.5 END` yields `Int` and `Float` cells in
//! one column) fall back to the [`ColumnVec::Cells`] escape hatch so
//! that `from_rows` → `to_rows` is exactly lossless.

use crate::key::CellKey;
use crate::types::{Cell, Column, PgType, Rows};

/// NULL bitmap for one column: bit `i` set ⇒ slot `i` is NULL.
///
/// The all-valid case (by far the most common) stores no bitmap at all,
/// so scans over fully-valid columns skip the per-slot test via
/// [`Validity::any_null`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Validity {
    len: usize,
    /// Bit `i % 64` of word `i / 64` set ⇒ slot `i` is NULL.
    /// `None` ⇒ every slot is valid.
    nulls: Option<Vec<u64>>,
}

impl Validity {
    /// A validity map of `len` slots, all valid.
    pub fn all_valid(len: usize) -> Validity {
        Validity { len, nulls: None }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is slot `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "validity index {i} out of {}", self.len);
        match &self.nulls {
            None => false,
            Some(words) => (words[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    /// Does any slot hold NULL? (Fast path gate: `false` means scans
    /// can skip per-slot tests entirely.)
    pub fn any_null(&self) -> bool {
        self.nulls.as_ref().is_some_and(|w| w.iter().any(|&x| x != 0))
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        match &self.nulls {
            None => 0,
            Some(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Mark slot `i` NULL.
    pub fn set_null(&mut self, i: usize) {
        assert!(i < self.len, "validity index {i} out of {}", self.len);
        let words = self.len.div_ceil(64);
        let w = self.nulls.get_or_insert_with(|| vec![0; words]);
        w[i / 64] |= 1 << (i % 64);
    }

    /// Append one slot.
    pub fn push(&mut self, null: bool) {
        let i = self.len;
        self.len += 1;
        if let Some(w) = &mut self.nulls {
            if w.len() * 64 < self.len {
                w.push(0);
            }
            if null {
                w[i / 64] |= 1 << (i % 64);
            }
        } else if null {
            let mut w = vec![0u64; self.len.div_ceil(64)];
            w[i / 64] |= 1 << (i % 64);
            self.nulls = Some(w);
        }
    }

    /// Gather: validity of `data.take(idx)`.
    pub fn take(&self, idx: &[usize]) -> Validity {
        let mut out = Validity::all_valid(idx.len());
        if self.nulls.is_some() {
            for (k, &i) in idx.iter().enumerate() {
                if self.is_null(i) {
                    out.set_null(k);
                }
            }
        }
        out
    }

    /// Contiguous sub-range `[offset, offset + len)` of the slots.
    pub fn slice(&self, offset: usize, len: usize) -> Validity {
        assert!(offset + len <= self.len, "slice {offset}+{len} out of {}", self.len);
        let mut out = Validity::all_valid(len);
        if self.nulls.is_some() {
            for i in 0..len {
                if self.is_null(offset + i) {
                    out.set_null(i);
                }
            }
        }
        out
    }

    /// Concatenate `other` onto the end of `self`.
    pub fn append(&mut self, other: &Validity) {
        if other.nulls.is_none() {
            self.len += other.len;
            if let Some(w) = &mut self.nulls {
                w.resize(self.len.div_ceil(64), 0);
            }
            return;
        }
        for i in 0..other.len {
            self.push(other.is_null(i));
        }
    }
}

/// Storage class of one runtime cell — the typed-vector variant it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Bool,
    Int,
    Float,
    Text,
    Date,
    Time,
    Timestamp,
}

impl Kind {
    fn of(cell: &Cell) -> Option<Kind> {
        Some(match cell {
            Cell::Null => return None,
            Cell::Bool(_) => Kind::Bool,
            Cell::Int(_) => Kind::Int,
            Cell::Float(_) => Kind::Float,
            Cell::Text(_) => Kind::Text,
            Cell::Date(_) => Kind::Date,
            Cell::Time(_) => Kind::Time,
            Cell::Timestamp(_) => Kind::Timestamp,
        })
    }

    /// The storage class a declared SQL type naturally maps to — used
    /// for empty and all-NULL columns, where no runtime cell pins it.
    fn for_type(ty: PgType) -> Kind {
        match ty {
            PgType::Bool => Kind::Bool,
            PgType::Int2 | PgType::Int4 | PgType::Int8 => Kind::Int,
            PgType::Float4 | PgType::Float8 => Kind::Float,
            PgType::Varchar | PgType::Text => Kind::Text,
            PgType::Date => Kind::Date,
            PgType::Time => Kind::Time,
            PgType::Timestamp => Kind::Timestamp,
        }
    }
}

/// One typed column vector with a validity bitmap.
///
/// Integers unify to `i64` and floats to `f64` exactly like [`Cell`];
/// the temporal variants keep the translation stack's conventions
/// (dates are days since 2000-01-01, times/timestamps microseconds).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// `boolean` column.
    Bool(Vec<bool>, Validity),
    /// Any integer column.
    Int(Vec<i64>, Validity),
    /// Any float column.
    Float(Vec<f64>, Validity),
    /// varchar/text column.
    Text(Vec<String>, Validity),
    /// Days since 2000-01-01.
    Date(Vec<i32>, Validity),
    /// Microseconds since midnight.
    Time(Vec<i64>, Validity),
    /// Microseconds since 2000-01-01 00:00.
    Timestamp(Vec<i64>, Validity),
    /// Escape hatch: a column whose runtime cells mix storage classes
    /// (the executor is dynamically typed). Kept row-identical so that
    /// batch↔row conversion is exactly lossless.
    Cells(Vec<Cell>),
}

impl ColumnVec {
    /// An empty column of the storage class natural to `ty`.
    pub fn empty(ty: PgType) -> ColumnVec {
        ColumnVec::from_cells(ty, Vec::new())
    }

    /// A column of `n` NULLs.
    pub fn nulls(ty: PgType, n: usize) -> ColumnVec {
        let mut v = Validity::all_valid(n);
        for i in 0..n {
            v.set_null(i);
        }
        match Kind::for_type(ty) {
            Kind::Bool => ColumnVec::Bool(vec![false; n], v),
            Kind::Int => ColumnVec::Int(vec![0; n], v),
            Kind::Float => ColumnVec::Float(vec![0.0; n], v),
            Kind::Text => ColumnVec::Text(vec![String::new(); n], v),
            Kind::Date => ColumnVec::Date(vec![0; n], v),
            Kind::Time => ColumnVec::Time(vec![0; n], v),
            Kind::Timestamp => ColumnVec::Timestamp(vec![0; n], v),
        }
    }

    /// Build from runtime cells. Picks the typed variant when every
    /// non-NULL cell shares one storage class (declared `ty` decides
    /// for empty/all-NULL columns); mixed columns keep the cells as-is.
    pub fn from_cells(ty: PgType, cells: Vec<Cell>) -> ColumnVec {
        let mut kind = None;
        for c in &cells {
            match (kind, Kind::of(c)) {
                (_, None) => {}
                (None, Some(k)) => kind = Some(k),
                (Some(k0), Some(k)) if k0 == k => {}
                _ => return ColumnVec::Cells(cells),
            }
        }
        let kind = kind.unwrap_or_else(|| Kind::for_type(ty));
        let n = cells.len();
        let mut validity = Validity::all_valid(n);
        macro_rules! build {
            ($variant:ident, $placeholder:expr, $pat:pat => $val:expr) => {{
                let mut data = Vec::with_capacity(n);
                for (i, c) in cells.into_iter().enumerate() {
                    match c {
                        $pat => data.push($val),
                        _ => {
                            validity.set_null(i);
                            data.push($placeholder);
                        }
                    }
                }
                ColumnVec::$variant(data, validity)
            }};
        }
        match kind {
            Kind::Bool => build!(Bool, false, Cell::Bool(b) => b),
            Kind::Int => build!(Int, 0, Cell::Int(v) => v),
            Kind::Float => build!(Float, 0.0, Cell::Float(v) => v),
            Kind::Text => build!(Text, String::new(), Cell::Text(s) => s),
            Kind::Date => build!(Date, 0, Cell::Date(d) => d),
            Kind::Time => build!(Time, 0, Cell::Time(t) => t),
            Kind::Timestamp => build!(Timestamp, 0, Cell::Timestamp(t) => t),
        }
    }

    /// `n` copies of one cell.
    pub fn broadcast(cell: &Cell, n: usize) -> ColumnVec {
        match cell {
            Cell::Null => ColumnVec::Cells(vec![Cell::Null; n]),
            Cell::Bool(b) => ColumnVec::Bool(vec![*b; n], Validity::all_valid(n)),
            Cell::Int(v) => ColumnVec::Int(vec![*v; n], Validity::all_valid(n)),
            Cell::Float(v) => ColumnVec::Float(vec![*v; n], Validity::all_valid(n)),
            Cell::Text(s) => ColumnVec::Text(vec![s.clone(); n], Validity::all_valid(n)),
            Cell::Date(d) => ColumnVec::Date(vec![*d; n], Validity::all_valid(n)),
            Cell::Time(t) => ColumnVec::Time(vec![*t; n], Validity::all_valid(n)),
            Cell::Timestamp(t) => ColumnVec::Timestamp(vec![*t; n], Validity::all_valid(n)),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Bool(d, _) => d.len(),
            ColumnVec::Int(d, _) | ColumnVec::Time(d, _) | ColumnVec::Timestamp(d, _) => d.len(),
            ColumnVec::Float(d, _) => d.len(),
            ColumnVec::Text(d, _) => d.len(),
            ColumnVec::Date(d, _) => d.len(),
            ColumnVec::Cells(d) => d.len(),
        }
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is slot `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Bool(_, v)
            | ColumnVec::Int(_, v)
            | ColumnVec::Float(_, v)
            | ColumnVec::Text(_, v)
            | ColumnVec::Date(_, v)
            | ColumnVec::Time(_, v)
            | ColumnVec::Timestamp(_, v) => v.is_null(i),
            ColumnVec::Cells(d) => d[i].is_null(),
        }
    }

    /// The cell at slot `i` (clones text).
    pub fn cell_at(&self, i: usize) -> Cell {
        match self {
            ColumnVec::Bool(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Bool(d[i])
                }
            }
            ColumnVec::Int(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Int(d[i])
                }
            }
            ColumnVec::Float(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Float(d[i])
                }
            }
            ColumnVec::Text(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Text(d[i].clone())
                }
            }
            ColumnVec::Date(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Date(d[i])
                }
            }
            ColumnVec::Time(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Time(d[i])
                }
            }
            ColumnVec::Timestamp(d, v) => {
                if v.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Timestamp(d[i])
                }
            }
            ColumnVec::Cells(d) => d[i].clone(),
        }
    }

    /// Gather slots by index (indices may repeat or reorder).
    pub fn take(&self, idx: &[usize]) -> ColumnVec {
        macro_rules! gather {
            ($variant:ident, $d:expr, $v:expr) => {
                ColumnVec::$variant(idx.iter().map(|&i| $d[i].clone()).collect(), $v.take(idx))
            };
        }
        match self {
            ColumnVec::Bool(d, v) => gather!(Bool, d, v),
            ColumnVec::Int(d, v) => gather!(Int, d, v),
            ColumnVec::Float(d, v) => gather!(Float, d, v),
            ColumnVec::Text(d, v) => gather!(Text, d, v),
            ColumnVec::Date(d, v) => gather!(Date, d, v),
            ColumnVec::Time(d, v) => gather!(Time, d, v),
            ColumnVec::Timestamp(d, v) => gather!(Timestamp, d, v),
            ColumnVec::Cells(d) => ColumnVec::Cells(idx.iter().map(|&i| d[i].clone()).collect()),
        }
    }

    /// Contiguous sub-range `[offset, offset + len)` — the morsel cut.
    /// Copies the range (columns stay owned, workers stay independent);
    /// the storage class is preserved exactly, so re-appending slices in
    /// order reconstructs a column `PartialEq`-identical to the source.
    pub fn slice(&self, offset: usize, len: usize) -> ColumnVec {
        macro_rules! cut {
            ($variant:ident, $d:expr, $v:expr) => {
                ColumnVec::$variant($d[offset..offset + len].to_vec(), $v.slice(offset, len))
            };
        }
        match self {
            ColumnVec::Bool(d, v) => cut!(Bool, d, v),
            ColumnVec::Int(d, v) => cut!(Int, d, v),
            ColumnVec::Float(d, v) => cut!(Float, d, v),
            ColumnVec::Text(d, v) => cut!(Text, d, v),
            ColumnVec::Date(d, v) => cut!(Date, d, v),
            ColumnVec::Time(d, v) => cut!(Time, d, v),
            ColumnVec::Timestamp(d, v) => cut!(Timestamp, d, v),
            ColumnVec::Cells(d) => ColumnVec::Cells(d[offset..offset + len].to_vec()),
        }
    }

    /// Null-filling gather: `None` slots become NULL (left-join padding).
    pub fn take_opt(&self, idx: &[Option<usize>]) -> ColumnVec {
        macro_rules! gather {
            ($variant:ident, $d:expr, $v:expr, $placeholder:expr) => {{
                let mut validity = Validity::all_valid(idx.len());
                let data = idx
                    .iter()
                    .enumerate()
                    .map(|(k, m)| match m {
                        Some(i) => {
                            if $v.is_null(*i) {
                                validity.set_null(k);
                            }
                            $d[*i].clone()
                        }
                        None => {
                            validity.set_null(k);
                            $placeholder
                        }
                    })
                    .collect();
                ColumnVec::$variant(data, validity)
            }};
        }
        match self {
            ColumnVec::Bool(d, v) => gather!(Bool, d, v, false),
            ColumnVec::Int(d, v) => gather!(Int, d, v, 0),
            ColumnVec::Float(d, v) => gather!(Float, d, v, 0.0),
            ColumnVec::Text(d, v) => gather!(Text, d, v, String::new()),
            ColumnVec::Date(d, v) => gather!(Date, d, v, 0),
            ColumnVec::Time(d, v) => gather!(Time, d, v, 0),
            ColumnVec::Timestamp(d, v) => gather!(Timestamp, d, v, 0),
            ColumnVec::Cells(d) => ColumnVec::Cells(
                idx.iter()
                    .map(|m| m.map_or(Cell::Null, |i| d[i].clone()))
                    .collect(),
            ),
        }
    }

    /// Concatenate `other` onto `self`; storage-class mismatch promotes
    /// to [`ColumnVec::Cells`].
    pub fn append(&mut self, other: ColumnVec) {
        macro_rules! same {
            ($d:expr, $v:expr, $od:expr, $ov:expr) => {{
                $d.extend($od);
                $v.append(&$ov);
            }};
        }
        match (self, other) {
            (ColumnVec::Bool(d, v), ColumnVec::Bool(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Int(d, v), ColumnVec::Int(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Float(d, v), ColumnVec::Float(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Text(d, v), ColumnVec::Text(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Date(d, v), ColumnVec::Date(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Time(d, v), ColumnVec::Time(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Timestamp(d, v), ColumnVec::Timestamp(od, ov)) => same!(d, v, od, ov),
            (ColumnVec::Cells(d), other) => d.extend(other.into_cells()),
            (this, other) => {
                let mut cells = std::mem::replace(this, ColumnVec::Cells(Vec::new())).into_cells();
                cells.extend(other.into_cells());
                *this = ColumnVec::Cells(cells);
            }
        }
    }

    /// Convert back to runtime cells, consuming the vector (moves text).
    pub fn into_cells(self) -> Vec<Cell> {
        macro_rules! expand {
            ($d:expr, $v:expr, $wrap:expr) => {
                $d.into_iter()
                    .enumerate()
                    .map(|(i, x)| if $v.is_null(i) { Cell::Null } else { $wrap(x) })
                    .collect()
            };
        }
        match self {
            ColumnVec::Bool(d, v) => expand!(d, v, Cell::Bool),
            ColumnVec::Int(d, v) => expand!(d, v, Cell::Int),
            ColumnVec::Float(d, v) => expand!(d, v, Cell::Float),
            ColumnVec::Text(d, v) => expand!(d, v, Cell::Text),
            ColumnVec::Date(d, v) => expand!(d, v, Cell::Date),
            ColumnVec::Time(d, v) => expand!(d, v, Cell::Time),
            ColumnVec::Timestamp(d, v) => expand!(d, v, Cell::Timestamp),
            ColumnVec::Cells(d) => d,
        }
    }

    /// Convert to runtime cells without consuming.
    pub fn to_cells(&self) -> Vec<Cell> {
        (0..self.len()).map(|i| self.cell_at(i)).collect()
    }

    /// Canonical hash key of slot `i` — exactly
    /// `CellKey::from_cell(&self.cell_at(i))`, but without materializing
    /// a cell for the typed variants (text keys clone the string either
    /// way).
    pub fn key_at(&self, i: usize) -> CellKey {
        match self {
            ColumnVec::Text(d, v) => {
                if v.is_null(i) {
                    CellKey::Null
                } else {
                    CellKey::Text(d[i].clone())
                }
            }
            ColumnVec::Int(d, v) => {
                if v.is_null(i) {
                    CellKey::Null
                } else {
                    CellKey::Int(d[i])
                }
            }
            ColumnVec::Cells(d) => CellKey::from_cell(&d[i]),
            other => CellKey::from_cell(&other.cell_at(i)),
        }
    }

    /// Number of NULL slots.
    pub fn null_cells(&self) -> usize {
        match self {
            ColumnVec::Bool(_, v)
            | ColumnVec::Int(_, v)
            | ColumnVec::Float(_, v)
            | ColumnVec::Text(_, v)
            | ColumnVec::Date(_, v)
            | ColumnVec::Time(_, v)
            | ColumnVec::Timestamp(_, v) => v.null_count(),
            ColumnVec::Cells(d) => d.iter().filter(|c| c.is_null()).count(),
        }
    }
}

/// A columnar result/table: schema, one [`ColumnVec`] per column, and
/// an explicit row count (meaningful even with zero columns).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    /// Output schema (same shape as [`Rows::columns`]).
    pub schema: Vec<Column>,
    /// One column vector per schema entry; every vector has
    /// [`Batch::rows`] slots.
    pub columns: Vec<ColumnVec>,
    rows: usize,
}

impl Batch {
    /// Assemble a batch; panics when a column's length disagrees with
    /// the stated row count (an executor invariant, not user input).
    pub fn new(schema: Vec<Column>, columns: Vec<ColumnVec>, rows: usize) -> Batch {
        assert_eq!(schema.len(), columns.len(), "schema/column arity mismatch");
        for (c, col) in schema.iter().zip(&columns) {
            assert_eq!(col.len(), rows, "column {} length disagrees with row count", c.name);
        }
        Batch { schema, columns, rows }
    }

    /// The empty relation over `schema` (zero rows).
    pub fn empty(schema: Vec<Column>) -> Batch {
        let columns = schema.iter().map(|c| ColumnVec::empty(c.ty)).collect();
        Batch { schema, columns, rows: 0 }
    }

    /// The *unit* relation: zero columns, one row. This is the FROM-less
    /// scalar source (`SELECT 1 + 1`) — one row to project expressions
    /// over, no columns to read.
    pub fn unit() -> Batch {
        Batch { schema: Vec::new(), columns: Vec::new(), rows: 1 }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|c| c.name == name)
    }

    /// Transpose row-major data into a batch (lossless: mixed-class
    /// columns keep their cells verbatim).
    pub fn from_rows(rows: Rows) -> Batch {
        let ncols = rows.columns.len();
        let nrows = rows.data.len();
        let mut cols: Vec<Vec<Cell>> = (0..ncols).map(|_| Vec::with_capacity(nrows)).collect();
        for row in rows.data {
            debug_assert_eq!(row.len(), ncols, "ragged row");
            for (j, cell) in row.into_iter().enumerate() {
                cols[j].push(cell);
            }
        }
        let columns = rows
            .columns
            .iter()
            .zip(cols)
            .map(|(c, cells)| ColumnVec::from_cells(c.ty, cells))
            .collect();
        Batch { schema: rows.columns, columns, rows: nrows }
    }

    /// Transpose back to row-major data without consuming the batch.
    pub fn to_rows(&self) -> Rows {
        let data = (0..self.rows).map(|i| self.row(i)).collect();
        Rows { columns: self.schema.clone(), data }
    }

    /// Transpose back to row-major data, consuming the batch (moves
    /// text cells instead of cloning them).
    pub fn into_rows(self) -> Rows {
        let rows = self.rows;
        let mut data: Vec<Vec<Cell>> = (0..rows).map(|_| Vec::with_capacity(self.columns.len())).collect();
        for col in self.columns {
            for (i, cell) in col.into_cells().into_iter().enumerate() {
                data[i].push(cell);
            }
        }
        Rows { columns: self.schema, data }
    }

    /// One row, materialized.
    pub fn row(&self, i: usize) -> Vec<Cell> {
        self.columns.iter().map(|c| c.cell_at(i)).collect()
    }

    /// Gather rows by index (indices may repeat or reorder).
    pub fn take(&self, idx: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(idx)).collect(),
            rows: idx.len(),
        }
    }

    /// Contiguous sub-range of rows `[offset, offset + len)` — the
    /// morsel cut used by the parallel executor and the batch stream.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(offset, len)).collect(),
            rows: len,
        }
    }

    /// Canonical key of row `i` (see [`ColumnVec::key_at`]) — the batch
    /// dual of [`crate::key::row_key`].
    pub fn row_key(&self, i: usize) -> Vec<CellKey> {
        self.columns.iter().map(|c| c.key_at(i)).collect()
    }

    /// Concatenate `other`'s rows onto `self` (set-operation append).
    /// The left schema wins, exactly like the row-major executor, which
    /// extends the left data vector; panics on arity mismatch (checked
    /// by callers before this point).
    pub fn append(&mut self, other: Batch) {
        assert_eq!(self.columns.len(), other.columns.len(), "append arity mismatch");
        self.rows += other.rows;
        for (dst, src) in self.columns.iter_mut().zip(other.columns) {
            dst.append(src);
        }
    }

    /// Structural equality for differential comparison: same column
    /// names, same row count, and every cell equal under the canonical
    /// [`CellKey`] projection (`IS NOT DISTINCT FROM` semantics — NULLs
    /// equal, numerics compared across widths, NaN = NaN). Declared
    /// types are deliberately *not* compared: the row-based oracle and
    /// the columnar path may disagree on widths (`Int4` vs `Int8`)
    /// while producing the same relation.
    pub fn structurally_equal(&self, other: &Batch) -> bool {
        if self.rows != other.rows || self.schema.len() != other.schema.len() {
            return false;
        }
        if self
            .schema
            .iter()
            .zip(&other.schema)
            .any(|(a, b)| a.name != b.name)
        {
            return false;
        }
        for (a, b) in self.columns.iter().zip(&other.columns) {
            for i in 0..self.rows {
                if CellKey::from_cell(&a.cell_at(i)) != CellKey::from_cell(&b.cell_at(i)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(columns: Vec<Column>, data: Vec<Vec<Cell>>) -> Rows {
        Rows { columns, data }
    }

    #[test]
    fn unit_batch_is_zero_columns_one_row() {
        let b = Batch::unit();
        assert_eq!(b.rows(), 1);
        assert!(b.schema.is_empty());
        let r = b.to_rows();
        assert_eq!(r.data, vec![Vec::<Cell>::new()]);
    }

    #[test]
    fn unit_batch_round_trips_through_rows() {
        let r = rows(vec![], vec![vec![]]);
        let b = Batch::from_rows(r.clone());
        assert_eq!(b.rows(), 1);
        assert_eq!(b.to_rows(), r);
    }

    #[test]
    fn from_rows_picks_typed_vectors() {
        let r = rows(
            vec![Column::new("a", PgType::Int8), Column::new("b", PgType::Text)],
            vec![
                vec![Cell::Int(1), Cell::Text("x".into())],
                vec![Cell::Null, Cell::Text("y".into())],
            ],
        );
        let b = Batch::from_rows(r.clone());
        assert!(matches!(b.columns[0], ColumnVec::Int(..)));
        assert!(matches!(b.columns[1], ColumnVec::Text(..)));
        assert!(b.columns[0].is_null(1));
        assert_eq!(b.to_rows(), r);
        assert_eq!(b.into_rows(), r);
    }

    #[test]
    fn mixed_storage_classes_fall_back_to_cells() {
        let r = rows(
            vec![Column::new("a", PgType::Float8)],
            vec![vec![Cell::Int(1)], vec![Cell::Float(1.5)]],
        );
        let b = Batch::from_rows(r.clone());
        assert!(matches!(b.columns[0], ColumnVec::Cells(..)), "{:?}", b.columns[0]);
        assert_eq!(b.to_rows(), r, "mixed column must round-trip verbatim");
    }

    #[test]
    fn empty_and_all_null_columns_type_from_schema() {
        let b = Batch::from_rows(rows(vec![Column::new("d", PgType::Date)], vec![]));
        assert!(matches!(b.columns[0], ColumnVec::Date(..)));
        let b = Batch::from_rows(rows(
            vec![Column::new("f", PgType::Float4)],
            vec![vec![Cell::Null], vec![Cell::Null]],
        ));
        assert!(matches!(b.columns[0], ColumnVec::Float(..)));
        assert_eq!(b.columns[0].null_cells(), 2);
    }

    #[test]
    fn take_gathers_and_keeps_validity() {
        let col = ColumnVec::from_cells(
            PgType::Int8,
            vec![Cell::Int(10), Cell::Null, Cell::Int(30)],
        );
        let t = col.take(&[2, 1, 2, 0]);
        assert_eq!(t.to_cells(), vec![Cell::Int(30), Cell::Null, Cell::Int(30), Cell::Int(10)]);
    }

    #[test]
    fn take_opt_pads_nulls() {
        let col = ColumnVec::from_cells(PgType::Text, vec![Cell::Text("a".into())]);
        let t = col.take_opt(&[Some(0), None]);
        assert_eq!(t.to_cells(), vec![Cell::Text("a".into()), Cell::Null]);
    }

    #[test]
    fn append_promotes_on_class_mismatch() {
        let mut col = ColumnVec::from_cells(PgType::Int8, vec![Cell::Int(1)]);
        col.append(ColumnVec::from_cells(PgType::Int8, vec![Cell::Int(2), Cell::Null]));
        assert!(matches!(col, ColumnVec::Int(..)));
        assert_eq!(col.to_cells(), vec![Cell::Int(1), Cell::Int(2), Cell::Null]);
        col.append(ColumnVec::from_cells(PgType::Float8, vec![Cell::Float(0.5)]));
        assert!(matches!(col, ColumnVec::Cells(..)));
        assert_eq!(
            col.to_cells(),
            vec![Cell::Int(1), Cell::Int(2), Cell::Null, Cell::Float(0.5)]
        );
    }

    #[test]
    fn structural_equality_tolerates_width_not_names() {
        let a = Batch::from_rows(rows(
            vec![Column::new("v", PgType::Int8)],
            vec![vec![Cell::Int(1)]],
        ));
        let b = Batch::from_rows(rows(
            vec![Column::new("v", PgType::Float8)],
            vec![vec![Cell::Float(1.0)]],
        ));
        assert!(a.structurally_equal(&b), "Int(1) and Float(1.0) are one equivalence class");
        let c = Batch::from_rows(rows(
            vec![Column::new("w", PgType::Int8)],
            vec![vec![Cell::Int(1)]],
        ));
        assert!(!a.structurally_equal(&c), "names must match");
    }

    #[test]
    fn validity_bitmap_crosses_word_boundaries() {
        let mut v = Validity::all_valid(130);
        v.set_null(0);
        v.set_null(64);
        v.set_null(129);
        assert!(v.is_null(0) && v.is_null(64) && v.is_null(129));
        assert!(!v.is_null(63) && !v.is_null(65));
        assert_eq!(v.null_count(), 3);
        let t = v.take(&[129, 65, 0]);
        assert!(t.is_null(0) && !t.is_null(1) && t.is_null(2));
    }

    #[test]
    fn broadcast_builds_constant_columns() {
        let c = ColumnVec::broadcast(&Cell::Int(7), 3);
        assert_eq!(c.to_cells(), vec![Cell::Int(7); 3]);
        let n = ColumnVec::broadcast(&Cell::Null, 2);
        assert_eq!(n.to_cells(), vec![Cell::Null, Cell::Null]);
    }
}
