//! Runtime value and type model for the SQL engine.
//!
//! Cells are dynamically typed at runtime (integers unify to `i64`,
//! floats to `f64`); column metadata retains the declared SQL type for
//! wire formatting and catalog queries. Temporal conventions match the
//! translation stack: dates are days since 2000-01-01, times/timestamps
//! are microseconds.

use std::fmt;

/// Declared SQL column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PgType {
    /// `boolean`
    Bool,
    /// `smallint`
    Int2,
    /// `integer`
    Int4,
    /// `bigint`
    Int8,
    /// `real`
    Float4,
    /// `double precision`
    Float8,
    /// `varchar`
    Varchar,
    /// `text`
    Text,
    /// `date`
    Date,
    /// `time`
    Time,
    /// `timestamp`
    Timestamp,
}

impl PgType {
    /// Parse a SQL type name (as it appears in DDL or casts).
    pub fn parse(name: &str) -> Option<PgType> {
        Some(match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => PgType::Bool,
            "smallint" | "int2" => PgType::Int2,
            "int" | "integer" | "int4" => PgType::Int4,
            "bigint" | "int8" => PgType::Int8,
            "real" | "float4" => PgType::Float4,
            "double precision" | "float8" | "double" => PgType::Float8,
            "varchar" | "character varying" => PgType::Varchar,
            "text" => PgType::Text,
            "date" => PgType::Date,
            "time" => PgType::Time,
            "timestamp" => PgType::Timestamp,
            _ => return None,
        })
    }

    /// Canonical SQL name (used by `information_schema.columns`).
    pub fn sql_name(&self) -> &'static str {
        match self {
            PgType::Bool => "boolean",
            PgType::Int2 => "smallint",
            PgType::Int4 => "integer",
            PgType::Int8 => "bigint",
            PgType::Float4 => "real",
            PgType::Float8 => "double precision",
            PgType::Varchar => "varchar",
            PgType::Text => "text",
            PgType::Date => "date",
            PgType::Time => "time",
            PgType::Timestamp => "timestamp",
        }
    }

    /// Is this a numeric type?
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            PgType::Int2 | PgType::Int4 | PgType::Int8 | PgType::Float4 | PgType::Float8
        )
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer.
    Int(i64),
    /// Any float.
    Float(f64),
    /// varchar/text.
    Text(String),
    /// Days since 2000-01-01.
    Date(i32),
    /// Microseconds since midnight.
    Time(i64),
    /// Microseconds since 2000-01-01 00:00.
    Timestamp(i64),
}

impl Cell {
    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(v) => Some(*v as f64),
            Cell::Float(v) => Some(*v),
            Cell::Bool(b) => Some(*b as i64 as f64),
            Cell::Date(v) => Some(*v as f64),
            Cell::Time(v) => Some(*v as f64),
            Cell::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: NULL yields `None`.
    pub fn sql_eq(&self, other: &Cell) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.eq_not_null(other))
    }

    /// `IS NOT DISTINCT FROM`: two-valued — NULLs are equal.
    pub fn not_distinct(&self, other: &Cell) -> bool {
        match (self.is_null(), other.is_null()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => self.eq_not_null(other),
        }
    }

    fn eq_not_null(&self, other: &Cell) -> bool {
        match (self, other) {
            (Cell::Text(a), Cell::Text(b)) => a == b,
            (Cell::Bool(a), Cell::Bool(b)) => a == b,
            // PostgreSQL float semantics: NaN equals NaN, unlike IEEE.
            // This keeps GROUP BY / DISTINCT / set-op bucketing total
            // and consistent with the hashed CellKey projection.
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b || (a.is_nan() && b.is_nan()),
                _ => false,
            },
        }
    }

    /// SQL ordering (for ORDER BY and min/max); `None` when either side
    /// is NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Cell) -> Option<std::cmp::Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Cell::Text(a), Cell::Text(b)) => Some(a.cmp(b)),
            (Cell::Bool(a), Cell::Bool(b)) => Some(a.cmp(b)),
            _ => self.as_f64()?.partial_cmp(&other.as_f64()?),
        }
    }

    /// Total order for sorting: NULLS FIRST (matching the Q convention
    /// Hyper-Q expects from its generated ORDER BY).
    pub fn sort_cmp(&self, other: &Cell) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.sql_cmp(other).unwrap_or(Ordering::Equal),
        }
    }

    /// Render in the PG text wire format.
    pub fn to_wire_text(&self) -> Option<String> {
        Some(match self {
            Cell::Null => return None,
            Cell::Bool(b) => if *b { "t" } else { "f" }.to_string(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => {
                if v.is_nan() {
                    "NaN".to_string()
                } else {
                    format!("{v}")
                }
            }
            Cell::Text(s) => s.clone(),
            Cell::Date(d) => {
                let (y, m, dd) = days_to_ymd(*d);
                format!("{y:04}-{m:02}-{dd:02}")
            }
            Cell::Time(us) => format_time_us(*us),
            Cell::Timestamp(us) => {
                let days = us.div_euclid(86_400_000_000);
                let intraday = us.rem_euclid(86_400_000_000);
                let (y, m, d) = days_to_ymd(days as i32);
                format!("{y:04}-{m:02}-{d:02} {}", format_time_us(intraday))
            }
        })
    }

    /// Parse from the PG text wire format given the declared type.
    pub fn from_wire_text(text: &str, ty: PgType) -> Option<Cell> {
        Some(match ty {
            PgType::Bool => Cell::Bool(matches!(text, "t" | "true" | "TRUE" | "1")),
            PgType::Int2 | PgType::Int4 | PgType::Int8 => Cell::Int(text.parse().ok()?),
            PgType::Float4 | PgType::Float8 => {
                if text == "NaN" {
                    Cell::Float(f64::NAN)
                } else {
                    Cell::Float(text.parse().ok()?)
                }
            }
            PgType::Varchar | PgType::Text => Cell::Text(text.to_string()),
            PgType::Date => {
                let mut it = text.split('-');
                let y: i32 = it.next()?.parse().ok()?;
                let m: u32 = it.next()?.parse().ok()?;
                let d: u32 = it.next()?.parse().ok()?;
                Cell::Date(ymd_to_days(y, m, d)?)
            }
            PgType::Time => Cell::Time(parse_time_us(text)?),
            PgType::Timestamp => {
                let (date_part, time_part) = text.split_once(' ')?;
                let mut it = date_part.split('-');
                let y: i32 = it.next()?.parse().ok()?;
                let m: u32 = it.next()?.parse().ok()?;
                let d: u32 = it.next()?.parse().ok()?;
                let days = ymd_to_days(y, m, d)? as i64;
                Cell::Timestamp(days * 86_400_000_000 + parse_time_us(time_part)?)
            }
        })
    }

    /// The most natural declared type for this runtime value.
    pub fn natural_type(&self) -> PgType {
        match self {
            Cell::Null => PgType::Text,
            Cell::Bool(_) => PgType::Bool,
            Cell::Int(_) => PgType::Int8,
            Cell::Float(_) => PgType::Float8,
            Cell::Text(_) => PgType::Varchar,
            Cell::Date(_) => PgType::Date,
            Cell::Time(_) => PgType::Time,
            Cell::Timestamp(_) => PgType::Timestamp,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_wire_text() {
            Some(s) => f.write_str(&s),
            None => f.write_str("NULL"),
        }
    }
}

fn format_time_us(us: i64) -> String {
    let total_secs = us.div_euclid(1_000_000);
    let frac = us.rem_euclid(1_000_000);
    format!(
        "{:02}:{:02}:{:02}.{:06}",
        total_secs / 3600,
        (total_secs / 60) % 60,
        total_secs % 60,
        frac
    )
}

fn parse_time_us(text: &str) -> Option<i64> {
    let (hms, frac) = match text.split_once('.') {
        Some((a, b)) => (a, b),
        None => (text, ""),
    };
    let mut it = hms.split(':');
    let h: i64 = it.next()?.parse().ok()?;
    let m: i64 = it.next()?.parse().ok()?;
    let s: i64 = it.next().map(|p| p.parse().ok()).unwrap_or(Some(0))?;
    let micros: i64 = if frac.is_empty() {
        0
    } else {
        let f6: String = format!("{frac:0<6}").chars().take(6).collect();
        f6.parse().ok()?
    };
    Some(h * 3_600_000_000 + m * 60_000_000 + s * 1_000_000 + micros)
}

/// Days since 2000-01-01 → `(y, m, d)`.
pub fn days_to_ymd(mut days: i32) -> (i32, u32, u32) {
    fn leap(y: i32) -> bool {
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }
    fn dim(y: i32, m: u32) -> i32 {
        match m {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if leap(y) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!(),
        }
    }
    let mut year = 2000;
    loop {
        let len = if leap(year) { 366 } else { 365 };
        if days >= 0 && days < len {
            break;
        }
        if days < 0 {
            year -= 1;
            days += if leap(year) { 366 } else { 365 };
        } else {
            days -= len;
            year += 1;
        }
    }
    let mut month = 1u32;
    while days >= dim(year, month) {
        days -= dim(year, month);
        month += 1;
    }
    (year, month, days as u32 + 1)
}

/// `(y, m, d)` → days since 2000-01-01.
pub fn ymd_to_days(year: i32, month: u32, day: u32) -> Option<i32> {
    fn leap(y: i32) -> bool {
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }
    fn dim(y: i32, m: u32) -> i32 {
        match m {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if leap(y) {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }
    if !(1..=12).contains(&month) || day < 1 || day as i32 > dim(year, month) {
        return None;
    }
    let mut days = 0i32;
    if year >= 2000 {
        for y in 2000..year {
            days += if leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..2000 {
            days -= if leap(y) { 366 } else { 365 };
        }
    }
    for m in 1..month {
        days += dim(year, m);
    }
    Some(days + day as i32 - 1)
}

/// A result/table column: name plus declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case preserved).
    pub name: String,
    /// Declared type.
    pub ty: PgType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: PgType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// A row set: schema plus row-major data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rows {
    /// Output schema.
    pub columns: Vec<Column>,
    /// Row data; every row has `columns.len()` cells.
    pub data: Vec<Vec<Cell>>,
}

impl Rows {
    /// Row count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_valued_equality() {
        assert_eq!(Cell::Int(1).sql_eq(&Cell::Int(1)), Some(true));
        assert_eq!(Cell::Int(1).sql_eq(&Cell::Int(2)), Some(false));
        assert_eq!(Cell::Null.sql_eq(&Cell::Int(1)), None, "NULL = x is unknown");
        assert_eq!(Cell::Null.sql_eq(&Cell::Null), None, "NULL = NULL is unknown in SQL");
    }

    #[test]
    fn is_not_distinct_from_is_two_valued() {
        assert!(Cell::Null.not_distinct(&Cell::Null));
        assert!(!Cell::Null.not_distinct(&Cell::Int(1)));
        assert!(Cell::Int(1).not_distinct(&Cell::Int(1)));
        assert!(Cell::Text("a".into()).not_distinct(&Cell::Text("a".into())));
    }

    #[test]
    fn nan_equals_nan_like_postgres() {
        assert_eq!(Cell::Float(f64::NAN).sql_eq(&Cell::Float(f64::NAN)), Some(true));
        assert!(Cell::Float(f64::NAN).not_distinct(&Cell::Float(f64::NAN)));
        assert_eq!(Cell::Float(f64::NAN).sql_eq(&Cell::Float(1.0)), Some(false));
        assert!(!Cell::Float(f64::NAN).not_distinct(&Cell::Null));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Cell::Int(2).sql_cmp(&Cell::Float(2.5)), Some(std::cmp::Ordering::Less));
        assert_eq!(Cell::Int(3).sql_eq(&Cell::Float(3.0)), Some(true));
    }

    #[test]
    fn nulls_sort_first() {
        let mut v = [Cell::Int(2), Cell::Null, Cell::Int(1)];
        v.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(v[0], Cell::Null);
        assert_eq!(v[1], Cell::Int(1));
    }

    #[test]
    fn wire_text_round_trip() {
        let cases = [
            (Cell::Bool(true), PgType::Bool),
            (Cell::Int(42), PgType::Int8),
            (Cell::Float(1.5), PgType::Float8),
            (Cell::Text("GOOG".into()), PgType::Varchar),
            (Cell::Date(6021), PgType::Date),
            (Cell::Time(34_200_000_000), PgType::Time),
            (Cell::Timestamp(6021 * 86_400_000_000 + 34_200_000_000), PgType::Timestamp),
        ];
        for (cell, ty) in cases {
            let text = cell.to_wire_text().unwrap();
            let back = Cell::from_wire_text(&text, ty).unwrap();
            assert_eq!(back, cell, "{text}");
        }
    }

    #[test]
    fn date_wire_format_is_iso() {
        assert_eq!(Cell::Date(6021).to_wire_text().unwrap(), "2016-06-26");
        assert_eq!(Cell::Date(0).to_wire_text().unwrap(), "2000-01-01");
        assert_eq!(Cell::Date(-1).to_wire_text().unwrap(), "1999-12-31");
    }

    #[test]
    fn null_has_no_wire_text() {
        assert_eq!(Cell::Null.to_wire_text(), None);
    }

    #[test]
    fn nan_float_round_trips() {
        let t = Cell::Float(f64::NAN).to_wire_text().unwrap();
        assert_eq!(t, "NaN");
        match Cell::from_wire_text(&t, PgType::Float8).unwrap() {
            Cell::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn type_parsing() {
        assert_eq!(PgType::parse("BIGINT"), Some(PgType::Int8));
        assert_eq!(PgType::parse("double precision"), Some(PgType::Float8));
        assert_eq!(PgType::parse("varchar"), Some(PgType::Varchar));
        assert_eq!(PgType::parse("nope"), None);
    }

    #[test]
    fn rows_helpers() {
        let r = Rows {
            columns: vec![Column::new("a", PgType::Int8)],
            data: vec![vec![Cell::Int(1)]],
        };
        assert_eq!(r.len(), 1);
        assert_eq!(r.column_index("a"), Some(0));
        assert_eq!(r.column_index("b"), None);
    }
}
