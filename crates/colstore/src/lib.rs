//! Shared columnar representation for the Hyper-Q stack (DESIGN §10).
//!
//! One typed batch format flows from the pgdb executor through the
//! gateway pivot to QIPC encoding: a [`Batch`] is a schema plus one
//! [`ColumnVec`] per column, where each `ColumnVec` is a typed vector
//! with a [`Validity`] bitmap for SQL NULLs. The row-major [`Rows`]
//! type and the dynamically-typed [`Cell`] remain the interchange
//! format at the PG-wire codec boundary and for the row-based
//! reference executor; [`Batch::from_rows`]/[`Batch::to_rows`] convert
//! losslessly between the two worlds.
//!
//! This crate is dependency-free on purpose: pgdb, core, qengine, and
//! qipc all sit on top of it without forming cycles.

pub mod batch;
pub mod key;
pub mod stats;
pub mod stream;
pub mod types;

pub use batch::{Batch, ColumnVec, Validity};
pub use stats::{ColStats, DistinctSketch, TableStats};
pub use stream::BatchStream;
pub use key::{row_key, CellKey};
pub use types::{days_to_ymd, ymd_to_days, Cell, Column, PgType, Rows};
