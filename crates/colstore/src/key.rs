//! Canonical hashable keys over runtime cells.
//!
//! The executor's grouping, DISTINCT, set operations, and hash joins
//! all need to bucket rows by equality. Equality here is
//! [`Cell::not_distinct`] (`IS NOT DISTINCT FROM`): NULLs compare
//! equal, and numerics compare across widths through `f64` (so
//! `Int(1)`, `Float(1.0)`, `Bool(true)`, and `Date(1)` are one
//! equivalence class). [`CellKey`] is a normalized projection of a
//! `Cell` such that
//!
//! ```text
//! CellKey::from_cell(a) == CellKey::from_cell(b)  ⟺  a.not_distinct(b)
//! ```
//!
//! which lets every hot path use `HashMap`/`HashSet` instead of the
//! previous linear scans or per-row `String` keys.

use crate::types::Cell;

/// Normalized, hashable projection of one [`Cell`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellKey {
    Null,
    /// Text compares only against text.
    Text(String),
    /// Any numeric (or bool/date/time/timestamp) whose `f64` value is
    /// integral and exactly representable: normalized to `i64`.
    Int(i64),
    /// Remaining numerics, keyed by canonical bit pattern: `-0.0`
    /// never reaches here (it is `Int(0)`) and every NaN collapses to
    /// one bit pattern, matching `not_distinct`'s NaN = NaN.
    Float(u64),
}

impl CellKey {
    pub fn from_cell(c: &Cell) -> CellKey {
        match c {
            Cell::Null => CellKey::Null,
            Cell::Text(s) => CellKey::Text(s.clone()),
            Cell::Int(v) => CellKey::Int(*v),
            // Bool/Date/Time/Timestamp compare numerically via as_f64,
            // exactly like Cell::eq_not_null's fallback arm.
            _ => {
                let f = c.as_f64().expect("non-text cell is numeric");
                Self::from_f64(f)
            }
        }
    }

    fn from_f64(f: f64) -> CellKey {
        if f.is_nan() {
            return CellKey::Float(f64::NAN.to_bits());
        }
        // i64 values up to 2^53 round-trip exactly through f64; the
        // 9e15 guard keeps the Int arm inside that exact window.
        if f.fract() == 0.0 && f.is_finite() && f.abs() < 9e15 {
            // Folds -0.0 into Int(0).
            return CellKey::Int(f as i64);
        }
        CellKey::Float(f.to_bits())
    }
}

/// Key a whole row (e.g. for set operations where every column is part
/// of the identity).
pub fn row_key(row: &[Cell]) -> Vec<CellKey> {
    row.iter().map(CellKey::from_cell).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agree(a: &Cell, b: &Cell) {
        assert_eq!(
            CellKey::from_cell(a) == CellKey::from_cell(b),
            a.not_distinct(b),
            "key/not_distinct disagree on {a:?} vs {b:?}"
        );
    }

    #[test]
    fn keys_match_not_distinct_semantics() {
        let cells = [
            Cell::Null,
            Cell::Bool(true),
            Cell::Bool(false),
            Cell::Int(0),
            Cell::Int(1),
            Cell::Int(-1),
            Cell::Int(i64::MAX),
            Cell::Float(0.0),
            Cell::Float(-0.0),
            Cell::Float(1.0),
            Cell::Float(1.5),
            Cell::Float(f64::NAN),
            Cell::Float(f64::INFINITY),
            Cell::Float(f64::NEG_INFINITY),
            Cell::Float(9.5e15),
            Cell::Text(String::new()),
            Cell::Text("1".into()),
            Cell::Date(1),
            Cell::Time(1),
            Cell::Timestamp(1),
        ];
        for a in &cells {
            for b in &cells {
                agree(a, b);
            }
        }
    }

    #[test]
    fn cross_width_numerics_share_keys() {
        assert_eq!(CellKey::from_cell(&Cell::Int(1)), CellKey::from_cell(&Cell::Float(1.0)));
        assert_eq!(CellKey::from_cell(&Cell::Bool(true)), CellKey::from_cell(&Cell::Int(1)));
        assert_eq!(CellKey::from_cell(&Cell::Date(5)), CellKey::from_cell(&Cell::Int(5)));
        assert_eq!(CellKey::from_cell(&Cell::Float(-0.0)), CellKey::from_cell(&Cell::Int(0)));
    }

    #[test]
    fn text_never_collides_with_numbers() {
        assert_ne!(CellKey::from_cell(&Cell::Text("1".into())), CellKey::from_cell(&Cell::Int(1)));
        assert_ne!(CellKey::from_cell(&Cell::Null), CellKey::from_cell(&Cell::Int(0)));
    }
}
