//! Lightweight per-table statistics: row counts, per-column null counts
//! and a small HyperLogLog-style distinct sketch.
//!
//! The sketch is deliberately tiny (64 single-byte registers) because its
//! only consumer is the shard planner, which needs coarse answers to
//! "are there at least as many distinct keys as shards?" and "is this
//! table small enough to broadcast?". Registers combine by `max`, so
//! observation order never matters: recomputing stats from a batch and
//! accumulating them insert-by-insert yield identical sketches, which is
//! what lets WAL replay maintain stats incrementally while checkpoint
//! recovery loads a persisted copy.
//!
//! Cells are hashed through their [`CellKey`] canonical projection so
//! the sketch's notion of "distinct" matches SQL grouping/equality
//! semantics (integral floats fold onto integers, NaNs collapse to one
//! canonical NaN) rather than raw storage representation.

use crate::batch::Batch;
use crate::key::CellKey;
use crate::types::Column;

/// Number of HLL registers. 64 keeps the sketch at 64 bytes per column
/// while resolving cardinalities far beyond any realistic shard count.
pub const SKETCH_REGISTERS: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a cell's canonical key projection. NULLs are never hashed (they
/// are tracked by the null counter instead).
fn hash_key(key: &CellKey) -> Option<u64> {
    let mut h = FNV_OFFSET;
    match key {
        CellKey::Null => return None,
        CellKey::Int(v) => {
            h = fnv1a(&[2], h);
            h = fnv1a(&v.to_le_bytes(), h);
        }
        CellKey::Float(bits) => {
            h = fnv1a(&[3], h);
            h = fnv1a(&bits.to_le_bytes(), h);
        }
        CellKey::Text(s) => {
            h = fnv1a(&[4], h);
            h = fnv1a(s.as_bytes(), h);
        }
    }
    Some(h)
}

/// A 64-register HyperLogLog-style distinct-count sketch.
///
/// Insertion-order independent and mergeable (register-wise max), so
/// per-shard sketches combine into a global one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    regs: [u8; SKETCH_REGISTERS],
}

impl Default for DistinctSketch {
    fn default() -> DistinctSketch {
        DistinctSketch { regs: [0; SKETCH_REGISTERS] }
    }
}

impl DistinctSketch {
    pub fn new() -> DistinctSketch {
        DistinctSketch::default()
    }

    /// Observe one non-null cell key.
    pub fn observe(&mut self, key: &CellKey) {
        let Some(h) = hash_key(key) else { return };
        // Top 6 bits pick the register; the rank is the position of the
        // first set bit in the remaining 58 (1-based, capped).
        let idx = (h >> 58) as usize;
        let rest = h << 6;
        let rank = (rest.leading_zeros() as u8).min(57) + 1;
        if rank > self.regs[idx] {
            self.regs[idx] = rank;
        }
    }

    /// Register-wise max merge (union of the observed multisets).
    pub fn merge(&mut self, other: &DistinctSketch) {
        for (r, o) in self.regs.iter_mut().zip(other.regs.iter()) {
            if *o > *r {
                *r = *o;
            }
        }
    }

    /// Standard HLL estimate with the small-range linear-counting
    /// correction. Good to ~13% relative error at m=64, which is far
    /// more precision than the planner needs.
    pub fn estimate(&self) -> u64 {
        let m = SKETCH_REGISTERS as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.regs {
            sum += 1.0 / f64::from(1u32 << u32::from(r.min(31)));
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = 0.709; // alpha_64
        let raw = alpha * m * m / sum;
        let est = if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        est.round().max(0.0) as u64
    }

    pub fn registers(&self) -> &[u8; SKETCH_REGISTERS] {
        &self.regs
    }

    pub fn from_registers(regs: [u8; SKETCH_REGISTERS]) -> DistinctSketch {
        DistinctSketch { regs }
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    /// Column name (matches the table schema).
    pub name: String,
    /// Number of NULL cells observed.
    pub nulls: u64,
    /// Distinct-value sketch over non-null cells.
    pub sketch: DistinctSketch,
}

impl ColStats {
    pub fn new(name: &str) -> ColStats {
        ColStats { name: name.to_string(), nulls: 0, sketch: DistinctSketch::new() }
    }

    /// Estimated number of distinct non-null values.
    pub fn distinct_estimate(&self) -> u64 {
        self.sketch.estimate()
    }
}

/// Per-table statistics: row count plus per-column null counts and
/// distinct sketches, maintained incrementally by the storage engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Total rows in the table.
    pub rows: u64,
    /// One entry per column, in schema order.
    pub cols: Vec<ColStats>,
}

impl TableStats {
    /// Empty stats for a fresh table with the given schema.
    pub fn empty(schema: &[Column]) -> TableStats {
        TableStats { rows: 0, cols: schema.iter().map(|c| ColStats::new(&c.name)).collect() }
    }

    /// Full recompute from a batch (used for CTAS / bulk loads and as
    /// the recovery fallback when no persisted stats are available).
    pub fn from_batch(batch: &Batch) -> TableStats {
        let mut s = TableStats::empty(&batch.schema);
        s.observe_batch(batch);
        s
    }

    /// Fold an appended batch into the running stats. Column mismatch
    /// (schema drift) degrades gracefully: extra columns are ignored.
    pub fn observe_batch(&mut self, batch: &Batch) {
        self.rows += batch.rows() as u64;
        for (ci, col) in batch.columns.iter().enumerate() {
            let Some(cs) = self.cols.get_mut(ci) else { break };
            for i in 0..col.len() {
                let key = col.key_at(i);
                if matches!(key, CellKey::Null) {
                    cs.nulls += 1;
                } else {
                    cs.sketch.observe(&key);
                }
            }
        }
    }

    /// Merge another table's stats into this one (per-shard → global).
    pub fn merge(&mut self, other: &TableStats) {
        self.rows += other.rows;
        for (cs, os) in self.cols.iter_mut().zip(other.cols.iter()) {
            cs.nulls += os.nulls;
            cs.sketch.merge(&os.sketch);
        }
    }

    /// Fraction of NULLs in the named column (0.0 for empty tables or
    /// unknown columns).
    pub fn null_fraction(&self, col: &str) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.col(col).map(|c| c.nulls as f64 / self.rows as f64).unwrap_or(0.0)
    }

    /// Per-column stats by name.
    pub fn col(&self, name: &str) -> Option<&ColStats> {
        self.cols.iter().find(|c| c.name == name)
    }

    /// Distinct estimate for the named column, if tracked.
    pub fn distinct(&self, name: &str) -> Option<u64> {
        self.col(name).map(|c| c.distinct_estimate())
    }

    // --- persistence (checkpoint STATS file payload) -----------------

    /// Serialize to a self-describing little-endian byte layout:
    /// `rows u64 | ncols u32 | { name_len u32, name bytes, nulls u64,
    /// regs[64] }*`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        for c in &self.cols {
            out.extend_from_slice(&(c.name.len() as u32).to_le_bytes());
            out.extend_from_slice(c.name.as_bytes());
            out.extend_from_slice(&c.nulls.to_le_bytes());
            out.extend_from_slice(c.sketch.registers());
        }
    }

    /// Decode from the layout written by [`TableStats::encode`],
    /// advancing `pos`. Returns `None` on any truncation or malformed
    /// field (callers fall back to recomputing from data).
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<TableStats> {
        fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        }
        let rows = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
        let ncols = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
        if ncols > 1 << 20 {
            return None;
        }
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let nlen = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
            if nlen > 1 << 20 {
                return None;
            }
            let name = String::from_utf8(take(buf, pos, nlen)?.to_vec()).ok()?;
            let nulls = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
            let regs: [u8; SKETCH_REGISTERS] =
                take(buf, pos, SKETCH_REGISTERS)?.try_into().ok()?;
            cols.push(ColStats { name, nulls, sketch: DistinctSketch::from_registers(regs) });
        }
        Some(TableStats { rows, cols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ColumnVec;
    use crate::types::{Cell, PgType};

    fn batch(ids: &[i64], syms: &[Option<&str>]) -> Batch {
        let schema = vec![
            Column { name: "id".into(), ty: PgType::Int8 },
            Column { name: "sym".into(), ty: PgType::Varchar },
        ];
        let idc = ColumnVec::from_cells(PgType::Int8, ids.iter().map(|v| Cell::Int(*v)).collect());
        let symc = ColumnVec::from_cells(
            PgType::Varchar,
            syms.iter()
                .map(|s| s.map(|t| Cell::Text(t.to_string())).unwrap_or(Cell::Null))
                .collect(),
        );
        Batch::new(schema, vec![idc, symc], ids.len())
    }

    #[test]
    fn sketch_estimates_small_cardinalities_exactly_enough() {
        let mut s = DistinctSketch::new();
        for i in 0..4i64 {
            for _ in 0..100 {
                s.observe(&CellKey::Int(i));
            }
        }
        let est = s.estimate();
        assert!((2..=8).contains(&est), "estimate {est} too far from 4");

        let mut big = DistinctSketch::new();
        for i in 0..10_000i64 {
            big.observe(&CellKey::Int(i));
        }
        let est = big.estimate() as f64;
        assert!((5_000.0..20_000.0).contains(&est), "estimate {est} too far from 10000");
    }

    #[test]
    fn incremental_observation_matches_bulk_recompute() {
        let b1 = batch(&[1, 2, 3], &[Some("a"), None, Some("b")]);
        let b2 = batch(&[3, 4, 5], &[Some("b"), Some("c"), None]);
        let mut whole = b1.clone();
        whole.append(b2.clone());

        let mut inc = TableStats::empty(&b1.schema);
        inc.observe_batch(&b1);
        inc.observe_batch(&b2);
        assert_eq!(inc, TableStats::from_batch(&whole));
        assert_eq!(inc.rows, 6);
        assert_eq!(inc.col("sym").unwrap().nulls, 2);
        assert!((inc.null_fraction("sym") - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_union() {
        let b1 = batch(&[1, 2, 3], &[Some("a"), Some("a"), Some("b")]);
        let b2 = batch(&[4, 5, 6], &[Some("c"), None, Some("a")]);
        let mut m = TableStats::from_batch(&b1);
        m.merge(&TableStats::from_batch(&b2));
        let mut whole = b1;
        whole.append(b2);
        assert_eq!(m, TableStats::from_batch(&whole));
    }

    #[test]
    fn canonical_projection_folds_integral_floats() {
        let mut a = DistinctSketch::new();
        a.observe(&CellKey::from_cell(&Cell::Int(5)));
        let mut b = DistinctSketch::new();
        b.observe(&CellKey::from_cell(&Cell::Float(5.0)));
        assert_eq!(a, b, "Int(5) and Float(5.0) must sketch identically");
    }

    #[test]
    fn encode_decode_round_trips() {
        let b = batch(&[1, 2, 3, 4], &[Some("x"), None, Some("y"), Some("x")]);
        let stats = TableStats::from_batch(&b);
        let mut buf = Vec::new();
        stats.encode(&mut buf);
        let mut pos = 0;
        let back = TableStats::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, stats);
        assert_eq!(pos, buf.len());
        // Truncation is detected, not misread.
        let mut pos = 0;
        assert!(TableStats::decode(&buf[..buf.len() - 1], &mut pos).is_none());
    }
}
