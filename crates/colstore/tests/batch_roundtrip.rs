//! Property tests for the columnar representation (DESIGN §10): the
//! batch is a lossless dual of the row set, and every `ColumnVec`
//! storage class round-trips typed nulls and empty columns.
//!
//! NaN is kept out of the `==`-based round-trip generators (`Cell`
//! derives `PartialEq`, so `NaN != NaN` under `==`); NaN handling is
//! pinned by dedicated deterministic tests below.

use colstore::{Batch, Cell, CellKey, Column, ColumnVec, PgType, Rows};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        any::<bool>().prop_map(Cell::Bool),
        any::<i64>().prop_map(Cell::Int),
        (-1.0e12f64..1.0e12).prop_map(Cell::Float),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Cell::Text),
        (-40000i32..40000).prop_map(Cell::Date),
        (0i64..86_400_000_000).prop_map(Cell::Time),
        any::<i64>().prop_map(Cell::Timestamp),
    ]
}

/// One homogeneous typed column: the declared type plus cells that all
/// belong to that type's storage class (or are NULL).
fn arb_typed_column() -> impl Strategy<Value = (PgType, Vec<Cell>)> {
    let cell_of = |ty: PgType| -> BoxedStrategy<Cell> {
        match ty {
            PgType::Bool => prop_oneof![Just(Cell::Null), any::<bool>().prop_map(Cell::Bool)].boxed(),
            PgType::Int2 | PgType::Int4 | PgType::Int8 => {
                prop_oneof![Just(Cell::Null), any::<i64>().prop_map(Cell::Int)].boxed()
            }
            PgType::Float4 | PgType::Float8 => {
                prop_oneof![Just(Cell::Null), (-1.0e12f64..1.0e12).prop_map(Cell::Float)].boxed()
            }
            PgType::Varchar | PgType::Text => {
                prop_oneof![Just(Cell::Null), "[a-z]{0,6}".prop_map(Cell::Text)].boxed()
            }
            PgType::Date => {
                prop_oneof![Just(Cell::Null), (-40000i32..40000).prop_map(Cell::Date)].boxed()
            }
            PgType::Time => {
                prop_oneof![Just(Cell::Null), (0i64..86_400_000_000).prop_map(Cell::Time)].boxed()
            }
            PgType::Timestamp => {
                prop_oneof![Just(Cell::Null), any::<i64>().prop_map(Cell::Timestamp)].boxed()
            }
        }
    };
    prop_oneof![
        Just(PgType::Bool),
        Just(PgType::Int2),
        Just(PgType::Int4),
        Just(PgType::Int8),
        Just(PgType::Float4),
        Just(PgType::Float8),
        Just(PgType::Varchar),
        Just(PgType::Text),
        Just(PgType::Date),
        Just(PgType::Time),
        Just(PgType::Timestamp),
    ]
    .prop_flat_map(move |ty| {
        proptest::collection::vec(cell_of(ty), 0..24).prop_map(move |cells| (ty, cells))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The batch is a lossless transpose: row-major in, row-major out.
    /// Columns are mixed-class on purpose — those land in the `Cells`
    /// fallback and must still hold their cells verbatim.
    #[test]
    fn from_rows_to_rows_is_identity(
        names in proptest::collection::vec("[a-z]{1,6}", 1..5),
        nrows in 0usize..12,
        seed_cells in proptest::collection::vec(arb_cell(), 0..60),
    ) {
        let ncols = names.len();
        let columns: Vec<Column> =
            names.iter().map(|n| Column::new(n.clone(), PgType::Text)).collect();
        let data: Vec<Vec<Cell>> = (0..nrows)
            .map(|i| {
                (0..ncols)
                    .map(|j| {
                        seed_cells
                            .get((i * ncols + j) % seed_cells.len().max(1))
                            .cloned()
                            .unwrap_or(Cell::Null)
                    })
                    .collect()
            })
            .collect();
        let rows = Rows { columns, data };
        let batch = Batch::from_rows(rows.clone());
        prop_assert_eq!(batch.rows(), nrows);
        prop_assert_eq!(batch.to_rows(), rows.clone());
        prop_assert_eq!(batch.clone().into_rows(), rows);
    }

    /// Every storage class round-trips its typed cells — nulls included —
    /// through `from_cells`/`cell_at`/`to_cells`, and `take` over the
    /// identity permutation is a no-op.
    #[test]
    fn typed_columns_round_trip_cells(col_spec in arb_typed_column()) {
        let (ty, cells) = col_spec;
        let col = ColumnVec::from_cells(ty, cells.clone());
        prop_assert_eq!(col.len(), cells.len());
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(&col.cell_at(i), c);
            prop_assert_eq!(col.is_null(i), *c == Cell::Null);
        }
        prop_assert_eq!(col.to_cells(), cells.clone());
        let idx: Vec<usize> = (0..cells.len()).collect();
        prop_assert_eq!(col.take(&idx).to_cells(), cells);
    }

    /// Structural equality keys every cell: a batch equals its own
    /// row-trip reconstruction.
    #[test]
    fn structural_equality_survives_row_trip(col_spec in arb_typed_column()) {
        let (ty, cells) = col_spec;
        let col = ColumnVec::from_cells(ty, cells.clone());
        let batch = Batch::new(vec![Column::new("c", ty)], vec![col], cells.len());
        let rebuilt = Batch::from_rows(batch.to_rows());
        prop_assert!(batch.structurally_equal(&rebuilt));
    }
}

/// Every storage class: the empty column is empty, typed, and
/// round-trips.
#[test]
fn empty_columns_round_trip_for_every_kind() {
    for ty in [
        PgType::Bool,
        PgType::Int2,
        PgType::Int4,
        PgType::Int8,
        PgType::Float4,
        PgType::Float8,
        PgType::Varchar,
        PgType::Text,
        PgType::Date,
        PgType::Time,
        PgType::Timestamp,
    ] {
        let col = ColumnVec::empty(ty);
        assert_eq!(col.len(), 0, "{ty:?}");
        assert!(col.is_empty(), "{ty:?}");
        assert_eq!(col.to_cells(), Vec::<Cell>::new(), "{ty:?}");
        let again = ColumnVec::from_cells(ty, vec![]);
        assert_eq!(again.len(), 0, "{ty:?}");
    }
}

/// Every storage class: an all-NULL column stays all-NULL and typed.
#[test]
fn typed_nulls_round_trip_for_every_kind() {
    for ty in [
        PgType::Bool,
        PgType::Int2,
        PgType::Int4,
        PgType::Int8,
        PgType::Float4,
        PgType::Float8,
        PgType::Varchar,
        PgType::Text,
        PgType::Date,
        PgType::Time,
        PgType::Timestamp,
    ] {
        let col = ColumnVec::nulls(ty, 5);
        assert_eq!(col.len(), 5, "{ty:?}");
        for i in 0..5 {
            assert!(col.is_null(i), "{ty:?} slot {i}");
            assert_eq!(col.cell_at(i), Cell::Null, "{ty:?} slot {i}");
        }
        assert_eq!(col.to_cells(), vec![Cell::Null; 5], "{ty:?}");
    }
}

/// NaN is excluded from the `==` generators above, so pin it here: all
/// NaN bit patterns share one canonical `CellKey`, distinct from any
/// number and from NULL.
#[test]
fn nan_cells_key_canonically() {
    let quiet = CellKey::from_cell(&Cell::Float(f64::NAN));
    let negated = CellKey::from_cell(&Cell::Float(-f64::NAN));
    let weird = CellKey::from_cell(&Cell::Float(f64::from_bits(0x7ff8_0000_0000_1234)));
    assert_eq!(quiet, negated);
    assert_eq!(quiet, weird);
    assert_ne!(quiet, CellKey::from_cell(&Cell::Float(0.0)));
    assert_ne!(quiet, CellKey::from_cell(&Cell::Null));

    // And a NaN-bearing float column still round-trips its validity:
    // NaN is a *value*, not a NULL.
    let col = ColumnVec::from_cells(PgType::Float8, vec![Cell::Float(f64::NAN), Cell::Null]);
    assert!(!col.is_null(0));
    assert!(col.is_null(1));
    match col.cell_at(0) {
        Cell::Float(f) => assert!(f.is_nan()),
        other => panic!("expected float, got {other:?}"),
    }
}
