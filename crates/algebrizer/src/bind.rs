//! The binder: Q AST → XTRA trees.
//!
//! Binding is bottom-up (paper §3.2.2): for each operator the binder
//! processes the inputs, derives and checks their properties, and maps
//! the operator to its XTRA representation. The flagship mapping is the
//! as-of join of paper Figure 2: `aj` becomes a **left outer join over a
//! window function on the right input**, with a final ordering to conform
//! with Q's ordered-list model.

use crate::literal::{atom_to_datum, glob_to_like, value_to_datum, value_to_datums};
use crate::mdi::{Mdi, TableMeta};
use crate::scopes::{Scopes, VarDef};
use qlang::ast::{Expr, LambdaDef, SelectKind, TemplateExpr};
use qlang::value::{Atom, Value};
use qlang::{QError, QResult};
use xtra::scalar::SortDir;
use xtra::{
    AggFunc, BinOp, ColumnDef, Datum, JoinKind, RelNode, ScalarExpr, SortKey, SqlType, UnOp,
    WinFunc, ORD_COL,
};

/// How variable assignments of table expressions are materialized in the
/// backend (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaterializationPolicy {
    /// Logical: keep the defining XTRA tree in Hyper-Q's variable store
    /// and inline it at every reference (views / variable store).
    #[default]
    Logical,
    /// Physical: emit `CREATE TEMPORARY TABLE HQ_TEMP_n AS ...` and bind
    /// the variable to the temp table — necessary for correctness when
    /// definitions have side effects, and what the paper's §4.3 example
    /// shows.
    Physical,
}

/// A backend statement the binder needs executed *before* the main query
/// (eager materialization).
#[derive(Debug, Clone, PartialEq)]
pub enum SideStatement {
    /// Materialize `plan` as a temporary table called `name`.
    CreateTemp {
        /// Temp table name (`HQ_TEMP_n`).
        name: String,
        /// Defining plan.
        plan: RelNode,
    },
}

/// Shape of the result a Q application expects back, used when pivoting
/// row sets into QIPC values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultShape {
    /// A table (`select`).
    Table,
    /// A keyed table (`select ... by`); `key_cols` leading columns are keys.
    KeyedTable {
        /// Number of leading key columns.
        key_cols: usize,
    },
    /// A single column list (`exec col`).
    Column,
    /// A dictionary of columns (`exec c1, c2`).
    Dict,
    /// A dictionary keyed by group values (`exec agg by g`): the first
    /// output column holds keys, the second holds values.
    GroupDict,
    /// A scalar atom (`exec max x` / standalone scalar expression).
    Atom,
}

/// A bound statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// A relational query to run against the backend.
    Rel {
        /// The XTRA plan.
        plan: RelNode,
        /// Expected result shape for pivoting.
        shape: ResultShape,
    },
    /// A standalone scalar expression (`SELECT <expr>`).
    Scalar(ScalarExpr),
    /// Fully absorbed into Hyper-Q state (variable/function definition
    /// with no query to run).
    Absorbed,
}

/// Result of binding one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct BindOutput {
    /// The main bound form.
    pub bound: Bound,
    /// Statements to execute first (eager materialization).
    pub side_statements: Vec<SideStatement>,
}

/// The binder. One per translation request; scopes and the temp-table
/// sequence number live in the session and are passed in.
pub struct Binder<'a> {
    mdi: &'a dyn Mdi,
    scopes: &'a mut Scopes,
    policy: MaterializationPolicy,
    temp_seq: &'a mut usize,
    side: Vec<SideStatement>,
}

impl<'a> Binder<'a> {
    /// Create a binder over the given metadata interface and scopes.
    pub fn new(
        mdi: &'a dyn Mdi,
        scopes: &'a mut Scopes,
        policy: MaterializationPolicy,
        temp_seq: &'a mut usize,
    ) -> Self {
        Binder { mdi, scopes, policy, temp_seq, side: Vec::new() }
    }

    /// Bind one top-level statement.
    pub fn bind_statement(&mut self, e: &Expr) -> QResult<BindOutput> {
        let bound = self.bind_stmt_inner(e)?;
        Ok(BindOutput { bound, side_statements: std::mem::take(&mut self.side) })
    }

    fn bind_stmt_inner(&mut self, e: &Expr) -> QResult<Bound> {
        match e {
            Expr::Assign { name, global, value } => {
                let def = self.bind_assignment_value(value)?;
                if *global {
                    self.scopes.upsert_global(name.clone(), def);
                } else {
                    self.scopes.upsert(name.clone(), def);
                }
                Ok(Bound::Absorbed)
            }
            Expr::Lambda(_) | Expr::Empty => Ok(Bound::Absorbed),
            _ => {
                // Prefer a relational binding; fall back to scalar.
                match self.bind_rel_shaped(e) {
                    Ok((plan, shape)) => Ok(Bound::Rel { plan, shape }),
                    Err(rel_err) => match self.bind_scalar(e, &[], false) {
                        Ok(s) => Ok(Bound::Scalar(s)),
                        Err(_) => Err(rel_err),
                    },
                }
            }
        }
    }

    /// Bind the RHS of an assignment into a variable definition,
    /// applying the materialization policy for table expressions.
    fn bind_assignment_value(&mut self, value: &Expr) -> QResult<VarDef> {
        match value {
            Expr::Lambda(def) => Ok(VarDef::Function(def.clone())),
            Expr::Lit(v) => match v {
                Value::Atom(a) => Ok(VarDef::Scalar(atom_to_datum(a)?)),
                Value::Chars(s) => Ok(VarDef::Scalar(Datum::Str(s.clone()))),
                _ if v.len().is_some() => Ok(VarDef::List(value_to_datums(v)?)),
                _ => Err(QError::type_err("cannot bind literal")),
            },
            _ => {
                // Table expression?
                if let Ok((plan, _)) = self.bind_rel_shaped(value) {
                    return Ok(self.materialize(plan));
                }
                // Scalar expression that folds to a constant?
                let s = self.bind_scalar(value, &[], false)?;
                match fold_const(&s) {
                    Some(d) => Ok(VarDef::Scalar(d)),
                    None => Err(QError::type_err(
                        "scalar variable definitions must be constant-foldable at translation time",
                    )),
                }
            }
        }
    }

    /// Apply the materialization policy to a bound table expression.
    fn materialize(&mut self, plan: RelNode) -> VarDef {
        match self.policy {
            MaterializationPolicy::Logical => VarDef::View(plan),
            MaterializationPolicy::Physical => {
                *self.temp_seq += 1;
                let name = format!("HQ_TEMP_{}", *self.temp_seq);
                let meta = TableMeta::new(name.clone(), plan.props().output);
                self.side.push(SideStatement::CreateTemp { name, plan });
                VarDef::TableRef(meta)
            }
        }
    }

    /// Bind a table expression, also deriving the Q result shape.
    pub fn bind_rel_shaped(&mut self, e: &Expr) -> QResult<(RelNode, ResultShape)> {
        match e {
            Expr::Template(t) => self.bind_template(t),
            // Calls to user functions propagate the shape of the body's
            // final statement (an `exec` inside returns a list/atom).
            Expr::Call { func, args } => {
                if let Expr::Var(name) = func.as_ref() {
                    if let Some(VarDef::Function(def)) = self.scopes.lookup(name).cloned() {
                        return self.unroll_function(&def, args);
                    }
                }
                Ok((self.bind_rel(e)?, ResultShape::Table))
            }
            _ => Ok((self.bind_rel(e)?, ResultShape::Table)),
        }
    }

    /// Bind a table expression to a relational plan.
    pub fn bind_rel(&mut self, e: &Expr) -> QResult<RelNode> {
        match e {
            Expr::Var(name) => self.bind_table_name(name),
            Expr::Template(t) => Ok(self.bind_template(t)?.0),
            Expr::TableLit { keys, columns } => self.bind_table_literal(keys, columns),
            Expr::Call { func, args } => self.bind_rel_call(func, args),
            Expr::Binary { op, lhs, rhs } => self.bind_rel_binary(op, lhs, rhs),
            Expr::Apply { func, arg } => {
                // Named monadic verbs over tables: `distinct t`, `count t`
                // is scalar — only a few make sense relationally.
                if let Expr::Var(name) = func.as_ref() {
                    if name == "select" || name == "value" || name == "ungroup" || name == "0!" {
                        return self.bind_rel(arg);
                    }
                }
                Err(QError::type_err("expression does not bind to a table"))
            }
            _ => Err(QError::type_err("expression does not bind to a table")),
        }
    }

    /// Resolve a table-valued name: scopes first (Figure 3), then the MDI.
    fn bind_table_name(&mut self, name: &str) -> QResult<RelNode> {
        if let Some(def) = self.scopes.lookup(name) {
            return match def {
                VarDef::TableRef(meta) => Ok(RelNode::get(meta.name.clone(), meta.columns.clone())),
                VarDef::View(plan) => Ok(plan.clone()),
                VarDef::Scalar(_) | VarDef::List(_) => {
                    Err(QError::type_err(format!("{name} is not a table")))
                }
                VarDef::Function(_) => Err(QError::type_err(format!("{name} is a function"))),
            };
        }
        match self.mdi.table_meta(name) {
            Some(meta) => Ok(RelNode::get(meta.name, meta.columns)),
            None => Err(QError::undefined(name)),
        }
    }

    /// Bind a table literal to a Values node, injecting the implicit
    /// order column.
    fn bind_table_literal(
        &mut self,
        keys: &[(String, Expr)],
        columns: &[(String, Expr)],
    ) -> QResult<RelNode> {
        let mut cols: Vec<(String, Vec<Datum>)> = Vec::new();
        for (name, e) in keys.iter().chain(columns) {
            let values = match e {
                Expr::Lit(v) => value_to_datums(v)?,
                _ => {
                    return Err(QError::type_err(
                        "table literals must have constant columns when translated",
                    ))
                }
            };
            cols.push((name.clone(), values));
        }
        let rows_n = cols.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut schema =
            vec![ColumnDef::not_null(ORD_COL, SqlType::Int8)];
        for (name, vals) in &cols {
            let ty = vals
                .iter()
                .find(|d| !d.is_null())
                .map(|d| d.sql_type())
                .unwrap_or(SqlType::Text);
            schema.push(ColumnDef::new(name.clone(), ty));
        }
        let mut rows = Vec::with_capacity(rows_n);
        for r in 0..rows_n {
            let mut row = vec![Datum::I64(r as i64 + 1)];
            for (_, vals) in &cols {
                // Atom columns broadcast.
                let d = if vals.len() == 1 { vals[0].clone() } else {
                    vals.get(r).cloned().unwrap_or(Datum::Null(SqlType::Text))
                };
                row.push(d);
            }
            rows.push(row);
        }
        Ok(RelNode::Values { schema, rows })
    }

    /// Relational function calls: `aj[...]`, `ej[...]`, user functions.
    fn bind_rel_call(&mut self, func: &Expr, args: &[Option<Expr>]) -> QResult<RelNode> {
        let name = match func {
            Expr::Var(n) => n.clone(),
            _ => return Err(QError::type_err("cannot bind computed callee")),
        };
        // User-defined function? Unroll it.
        if let Some(VarDef::Function(def)) = self.scopes.lookup(&name).cloned() {
            return Ok(self.unroll_function(&def, args)?.0);
        }
        let args: Vec<&Expr> = args
            .iter()
            .map(|a| a.as_ref().ok_or_else(|| QError::rank("projection not supported")))
            .collect::<QResult<_>>()?;
        match (name.as_str(), args.len()) {
            ("aj", 3) => {
                let cols = expect_symbols(args[0])?;
                let left = self.bind_rel(args[1])?;
                let right = self.bind_rel(args[2])?;
                self.bind_aj(&cols, left, right)
            }
            ("ej", 3) => {
                let cols = expect_symbols(args[0])?;
                let left = self.bind_rel(args[1])?;
                let right = self.bind_rel(args[2])?;
                self.bind_equijoin(&cols, left, right, JoinKind::Inner)
            }
            (other, n) => Err(QError::rank(format!(
                "cannot bind call to {other} with {n} arguments"
            ))),
        }
    }

    /// Named infix verbs over tables.
    fn bind_rel_binary(&mut self, op: &str, lhs: &Expr, rhs: &Expr) -> QResult<RelNode> {
        match op {
            "xasc" | "xdesc" => {
                let cols = expect_symbols(lhs)?;
                let plan = self.bind_rel(rhs)?;
                let schema = plan.props().output;
                let keys = cols
                    .iter()
                    .map(|c| {
                        let ty = schema
                            .iter()
                            .find(|col| col.name == *c)
                            .map(|col| col.ty)
                            .ok_or_else(|| QError::type_err(format!("sort: no column {c}")))?;
                        Ok(SortKey {
                            expr: ScalarExpr::col(c.clone(), ty),
                            dir: if op == "xasc" { SortDir::Asc } else { SortDir::Desc },
                        })
                    })
                    .collect::<QResult<Vec<_>>>()?;
                Ok(RelNode::Sort { input: Box::new(plan), keys })
            }
            "lj" | "ij" => {
                let left = self.bind_rel(lhs)?;
                let (right, key_cols) = self.bind_keyed_rel(rhs)?;
                let kind = if op == "lj" { JoinKind::LeftOuter } else { JoinKind::Inner };
                self.bind_lookup_join(&key_cols, left, right, kind)
            }
            "uj" => {
                let left = self.bind_rel(lhs)?;
                let right = self.bind_rel(rhs)?;
                self.bind_union(left, right)
            }
            "#" => {
                // `n#t` — take first n rows; `-n#t` — last n.
                let plan = self.bind_rel(rhs)?;
                if let Expr::Lit(Value::Atom(a)) = lhs {
                    if let Some(n) = a.as_i64() {
                        if n >= 0 {
                            return Ok(RelNode::Limit {
                                input: Box::new(plan),
                                limit: Some(n as u64),
                                offset: 0,
                            });
                        }
                        // Last n: sort descending by ordcol, limit, re-sort.
                        let props = plan.props();
                        if let Some(oc) = props.ord_col.clone() {
                            let desc = RelNode::Sort {
                                input: Box::new(plan),
                                keys: vec![SortKey::desc(oc.clone(), SqlType::Int8)],
                            };
                            let lim = RelNode::Limit {
                                input: Box::new(desc),
                                limit: Some((-n) as u64),
                                offset: 0,
                            };
                            return Ok(RelNode::Sort {
                                input: Box::new(lim),
                                keys: vec![SortKey::asc(oc, SqlType::Int8)],
                            });
                        }
                        return Err(QError::type_err("take-from-end requires ordered input"));
                    }
                }
                Err(QError::type_err("#: left operand must be an integer literal"))
            }
            "!" => {
                // `n!t` — keying; relationally the keyed table is the same
                // row set (keys are metadata); bind to the underlying plan.
                self.bind_rel(rhs)
            }
            _ => Err(QError::type_err(format!("operator {op} does not yield a table"))),
        }
    }

    /// Bind a right operand that must be "keyed": either `n!table` or a
    /// table whose metadata declares keys.
    fn bind_keyed_rel(&mut self, e: &Expr) -> QResult<(RelNode, Vec<String>)> {
        if let Expr::Binary { op, lhs, rhs } = e {
            if op == "!" {
                if let Expr::Lit(Value::Atom(a)) = lhs.as_ref() {
                    if let Some(n) = a.as_i64() {
                        let plan = self.bind_rel(rhs)?;
                        let cols: Vec<String> = plan
                            .props()
                            .output
                            .iter()
                            .filter(|c| c.name != ORD_COL)
                            .take(n as usize)
                            .map(|c| c.name.clone())
                            .collect();
                        if cols.len() < n as usize {
                            return Err(QError::length("!: key count exceeds column count"));
                        }
                        return Ok((plan, cols));
                    }
                }
            }
        }
        if let Expr::Var(name) = e {
            if let Some(meta) = self.mdi.table_meta(name) {
                if let Some(keys) = meta.keys.first().cloned() {
                    return Ok((RelNode::get(meta.name, meta.columns), keys));
                }
            }
        }
        Err(QError::type_err("right operand of lj/ij must be a keyed table"))
    }

    /// Figure 2: `aj` → left outer join computing a window function on
    /// its right input, ordered at the end.
    fn bind_aj(&mut self, cols: &[String], left: RelNode, right: RelNode) -> QResult<RelNode> {
        if cols.is_empty() {
            return Err(QError::domain("aj: need at least one join column"));
        }
        let (eq_cols, asof_col) = cols.split_at(cols.len() - 1);
        let asof_col = &asof_col[0];

        // Property checks (paper §3.2.2): join columns must be present in
        // both inputs' output columns.
        let lp = left.props();
        let rp = right.props();
        for c in cols {
            if !lp.has_column(c) {
                return Err(QError::type_err(format!("aj: left input lacks column {c}")));
            }
            if !rp.has_column(c) {
                return Err(QError::type_err(format!("aj: right input lacks column {c}")));
            }
        }

        // Rename every right column with a translation-private prefix so
        // the serialized SQL never has ambiguous references.
        let renamed: Vec<(String, ScalarExpr)> = rp
            .output
            .iter()
            .map(|c| (format!("hq_r_{}", c.name), ScalarExpr::col(c.name.clone(), c.ty)))
            .collect();
        let right_renamed = RelNode::Project { input: Box::new(right), items: renamed };

        // Window on the right input: the end of each quote's validity
        // interval is the next quote's time within the same key group.
        let asof_ty = rp.column(asof_col).unwrap().ty;
        let next_col = "hq_r_next".to_string();
        let windowed = RelNode::Window {
            input: Box::new(right_renamed),
            items: vec![(
                next_col.clone(),
                ScalarExpr::Window {
                    func: WinFunc::Lead,
                    args: vec![ScalarExpr::col(format!("hq_r_{asof_col}"), asof_ty)],
                    partition_by: eq_cols
                        .iter()
                        .map(|c| {
                            let ty = rp.column(c).unwrap().ty;
                            ScalarExpr::col(format!("hq_r_{c}"), ty)
                        })
                        .collect(),
                    order_by: vec![(
                        ScalarExpr::col(format!("hq_r_{asof_col}"), asof_ty),
                        SortDir::Asc,
                    )],
                },
            )],
        };

        // Join condition: exact equality on the leading columns, interval
        // containment on the as-of column.
        let mut conds: Vec<ScalarExpr> = eq_cols
            .iter()
            .map(|c| {
                let lty = lp.column(c).unwrap().ty;
                let rty = rp.column(c).unwrap().ty;
                ScalarExpr::binary(
                    BinOp::Eq,
                    ScalarExpr::col(c.clone(), lty),
                    ScalarExpr::col(format!("hq_r_{c}"), rty),
                )
            })
            .collect();
        let l_asof_ty = lp.column(asof_col).unwrap().ty;
        conds.push(ScalarExpr::binary(
            BinOp::Le,
            ScalarExpr::col(format!("hq_r_{asof_col}"), asof_ty),
            ScalarExpr::col(asof_col.clone(), l_asof_ty),
        ));
        conds.push(ScalarExpr::binary(
            BinOp::Or,
            ScalarExpr::binary(
                BinOp::Lt,
                ScalarExpr::col(asof_col.clone(), l_asof_ty),
                ScalarExpr::col(next_col.clone(), asof_ty),
            ),
            ScalarExpr::IsNull {
                arg: Box::new(ScalarExpr::col(next_col.clone(), asof_ty)),
                negated: false,
            },
        ));

        let join = RelNode::Join {
            kind: JoinKind::LeftOuter,
            left: Box::new(left),
            right: Box::new(windowed),
            on: ScalarExpr::conjunction(conds),
        };

        // Final projection: left columns as-is, right payload columns
        // restored to their original names.
        let mut items: Vec<(String, ScalarExpr)> = lp
            .output
            .iter()
            .map(|c| (c.name.clone(), ScalarExpr::col(c.name.clone(), c.ty)))
            .collect();
        for c in &rp.output {
            if cols.contains(&c.name) || lp.has_column(&c.name) || c.name == ORD_COL {
                continue;
            }
            items.push((c.name.clone(), ScalarExpr::col(format!("hq_r_{}", c.name), c.ty)));
        }
        let projected = RelNode::Project { input: Box::new(join), items };

        // "The results need to be ordered at the end to conform with Q
        // ordered lists model."
        Ok(match lp.ord_col {
            Some(oc) => RelNode::Sort {
                input: Box::new(projected),
                keys: vec![SortKey::asc(oc, SqlType::Int8)],
            },
            None => projected,
        })
    }

    /// Plain equi-join on named columns (`ej`).
    fn bind_equijoin(
        &mut self,
        cols: &[String],
        left: RelNode,
        right: RelNode,
        kind: JoinKind,
    ) -> QResult<RelNode> {
        let lp = left.props();
        let rp = right.props();
        for c in cols {
            if !lp.has_column(c) || !rp.has_column(c) {
                return Err(QError::type_err(format!("ej: both inputs need column {c}")));
            }
        }
        let renamed: Vec<(String, ScalarExpr)> = rp
            .output
            .iter()
            .map(|c| (format!("hq_r_{}", c.name), ScalarExpr::col(c.name.clone(), c.ty)))
            .collect();
        let right_renamed = RelNode::Project { input: Box::new(right), items: renamed };
        let conds: Vec<ScalarExpr> = cols
            .iter()
            .map(|c| {
                ScalarExpr::binary(
                    BinOp::Eq,
                    ScalarExpr::col(c.clone(), lp.column(c).unwrap().ty),
                    ScalarExpr::col(format!("hq_r_{c}"), rp.column(c).unwrap().ty),
                )
            })
            .collect();
        let join = RelNode::Join {
            kind,
            left: Box::new(left),
            right: Box::new(right_renamed),
            on: ScalarExpr::conjunction(conds),
        };
        let mut items: Vec<(String, ScalarExpr)> = lp
            .output
            .iter()
            .map(|c| (c.name.clone(), ScalarExpr::col(c.name.clone(), c.ty)))
            .collect();
        for c in &rp.output {
            if cols.contains(&c.name) || lp.has_column(&c.name) || c.name == ORD_COL {
                continue;
            }
            items.push((c.name.clone(), ScalarExpr::col(format!("hq_r_{}", c.name), c.ty)));
        }
        let projected = RelNode::Project { input: Box::new(join), items };
        Ok(match lp.ord_col {
            Some(oc) => RelNode::Sort {
                input: Box::new(projected),
                keys: vec![SortKey::asc(oc, SqlType::Int8)],
            },
            None => projected,
        })
    }

    /// `lj`/`ij` against a keyed right side: deduplicate the right to its
    /// first row per key (kdb+ keyed-table lookup takes the first match),
    /// then equi-join.
    fn bind_lookup_join(
        &mut self,
        key_cols: &[String],
        left: RelNode,
        right: RelNode,
        kind: JoinKind,
    ) -> QResult<RelNode> {
        let rp = right.props();
        // Dedup: row_number over key partitions, keep rn = 1.
        let rn_col = "hq_rn".to_string();
        let order_by = match &rp.ord_col {
            Some(oc) => vec![(ScalarExpr::col(oc.clone(), SqlType::Int8), SortDir::Asc)],
            None => vec![],
        };
        let windowed = RelNode::Window {
            input: Box::new(right),
            items: vec![(
                rn_col.clone(),
                ScalarExpr::Window {
                    func: WinFunc::RowNumber,
                    args: vec![],
                    partition_by: key_cols
                        .iter()
                        .map(|c| {
                            let ty = rp.column(c).map(|col| col.ty).unwrap_or(SqlType::Text);
                            ScalarExpr::col(c.clone(), ty)
                        })
                        .collect(),
                    order_by,
                },
            )],
        };
        let deduped = RelNode::Filter {
            input: Box::new(windowed),
            predicate: ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col(rn_col, SqlType::Int8),
                ScalarExpr::i64(1),
            ),
        };
        // Project the helper row-number away so it cannot leak into the
        // join output.
        let restored = RelNode::Project {
            input: Box::new(deduped),
            items: rp
                .output
                .iter()
                .map(|c| (c.name.clone(), ScalarExpr::col(c.name.clone(), c.ty)))
                .collect(),
        };
        self.bind_equijoin(key_cols, left, restored, kind)
    }

    /// `uj` — UNION ALL with aligned columns (missing columns null).
    fn bind_union(&mut self, left: RelNode, right: RelNode) -> QResult<RelNode> {
        let lp = left.props();
        let rp = right.props();
        let mut names: Vec<ColumnDef> = lp.output.clone();
        for c in &rp.output {
            if !names.iter().any(|n| n.name == c.name) {
                names.push(c.clone());
            }
        }
        let align = |plan: RelNode, props: &[ColumnDef]| -> RelNode {
            let items = names
                .iter()
                .map(|c| {
                    let e = if props.iter().any(|p| p.name == c.name) {
                        ScalarExpr::col(c.name.clone(), c.ty)
                    } else {
                        ScalarExpr::Const(Datum::Null(c.ty))
                    };
                    (c.name.clone(), e)
                })
                .collect();
            RelNode::Project { input: Box::new(plan), items }
        };
        let l = align(left, &lp.output);
        let r = align(right, &rp.output);
        Ok(RelNode::SetOp { kind: xtra::SetOpKind::UnionAll, left: Box::new(l), right: Box::new(r) })
    }

    /// Unroll a user-defined function at its call site (paper §5: "
    /// unrolling a large class of Q user-defined functions without the
    /// need to create user-defined functions in PG").
    fn unroll_function(
        &mut self,
        def: &LambdaDef,
        args: &[Option<Expr>],
    ) -> QResult<(RelNode, ResultShape)> {
        let params: Vec<String> = if def.params.is_empty() {
            ["x", "y", "z"].iter().take(args.len()).map(|s| s.to_string()).collect()
        } else {
            def.params.clone()
        };
        if args.len() > params.len() {
            return Err(QError::rank(format!(
                "function takes {} arguments, got {}",
                params.len(),
                args.len()
            )));
        }
        // Bind arguments in the caller's scope.
        let mut arg_defs = Vec::with_capacity(args.len());
        for a in args {
            let a = a.as_ref().ok_or_else(|| QError::rank("projection not supported"))?;
            let def = self.bind_assignment_value(a)?;
            arg_defs.push(def);
        }
        self.scopes.push_frame();
        for (p, d) in params.iter().zip(arg_defs) {
            self.scopes.upsert(p.clone(), d);
        }
        let mut result: Option<(RelNode, ResultShape)> = None;
        for stmt in &def.body {
            let r = (|| -> QResult<Option<(RelNode, ResultShape)>> {
                match stmt {
                    Expr::Assign { name, global, value } => {
                        let d = self.bind_assignment_value(value)?;
                        if *global {
                            self.scopes.upsert_global(name.clone(), d);
                        } else {
                            self.scopes.upsert(name.clone(), d);
                        }
                        Ok(None)
                    }
                    Expr::Return(inner) => Ok(Some(self.bind_rel_shaped(inner)?)),
                    other => Ok(Some(self.bind_rel_shaped(other)?)),
                }
            })();
            match r {
                Ok(Some(plan)) => {
                    result = Some(plan);
                    if matches!(stmt, Expr::Return(_)) {
                        break;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    self.scopes.pop_frame();
                    return Err(e);
                }
            }
        }
        self.scopes.pop_frame();
        result.ok_or_else(|| QError::type_err("function body does not yield a table"))
    }

    /// Bind a q-sql template (the core of §3.2.2).
    fn bind_template(&mut self, t: &TemplateExpr) -> QResult<(RelNode, ResultShape)> {
        let base = self.bind_rel(&t.from)?;
        match t.kind {
            SelectKind::Select | SelectKind::Exec => self.bind_select(t, base),
            SelectKind::Update => self.bind_update(t, base),
            SelectKind::Delete => self.bind_delete(t, base),
        }
    }

    fn bind_predicates(&mut self, preds: &[Expr], schema: &[ColumnDef]) -> QResult<Vec<ScalarExpr>> {
        preds.iter().map(|p| self.bind_scalar(p, schema, false)).collect()
    }

    fn bind_select(&mut self, t: &TemplateExpr, base: RelNode) -> QResult<(RelNode, ResultShape)> {
        let schema = base.props().output;
        let ord_col = base.props().ord_col;

        // Sequential where clauses: pure predicates compose as stacked
        // filters (equivalent to one conjunction, but kept separate to
        // mirror q-sql semantics in the plan shape).
        let mut plan = base;
        for p in self.bind_predicates(&t.predicates, &schema)? {
            plan = RelNode::Filter { input: Box::new(plan), predicate: p };
        }

        let exec_mode = t.kind == SelectKind::Exec;

        // Grouped select.
        if !t.by.is_empty() {
            let mut group_by = Vec::with_capacity(t.by.len());
            for (name, e) in &t.by {
                let s = self.bind_scalar(e, &schema, false)?;
                group_by.push((name.clone().unwrap_or_else(|| default_name(e)), s));
            }
            let mut aggs = Vec::new();
            if t.columns.is_empty() {
                // `select by k from t`: last row per group.
                for c in &schema {
                    if c.name == ORD_COL || group_by.iter().any(|(n, _)| *n == c.name) {
                        continue;
                    }
                    aggs.push((
                        c.name.clone(),
                        ScalarExpr::Agg {
                            func: AggFunc::Last,
                            arg: Some(Box::new(ScalarExpr::col(c.name.clone(), c.ty))),
                        },
                    ));
                }
            } else {
                for (name, e) in &t.columns {
                    let s = self.bind_scalar(e, &schema, true)?;
                    if !is_aggregate_like(&s) {
                        return Err(QError::type_err(
                            "non-aggregate select columns under `by` are not supported",
                        ));
                    }
                    aggs.push((name.clone().unwrap_or_else(|| default_name(e)), s));
                }
            }
            let key_count = group_by.len();
            let agg_node =
                RelNode::Aggregate { input: Box::new(plan), group_by: group_by.clone(), aggs };
            // kdb+ sorts grouped output by key ascending.
            let keys = group_by
                .iter()
                .map(|(n, e)| SortKey { expr: ScalarExpr::col(n.clone(), e.derived_type()), dir: SortDir::Asc })
                .collect();
            let sorted = RelNode::Sort { input: Box::new(agg_node), keys };
            let shape = if exec_mode {
                ResultShape::GroupDict
            } else {
                ResultShape::KeyedTable { key_cols: key_count }
            };
            return Ok((sorted, shape));
        }

        // Ungrouped.
        let has_agg = t
            .columns
            .iter()
            .any(|(_, e)| self.bind_scalar(e, &schema, true).map(|s| is_aggregate_like(&s)).unwrap_or(false));

        if has_agg {
            // Scalar aggregation: paper §4.3 shows the generated shape
            // `SELECT 1::int AS ordcol, MAX(Price) ... ORDER BY ordcol`.
            let mut aggs = Vec::new();
            for (name, e) in &t.columns {
                let s = self.bind_scalar(e, &schema, true)?;
                aggs.push((name.clone().unwrap_or_else(|| default_name(e)), s));
            }
            let agg_node = RelNode::Aggregate { input: Box::new(plan), group_by: vec![], aggs };
            let ap = agg_node.props();
            let mut items = vec![(
                ORD_COL.to_string(),
                ScalarExpr::Cast { arg: Box::new(ScalarExpr::i64(1)), ty: SqlType::Int4 },
            )];
            for c in &ap.output {
                items.push((c.name.clone(), ScalarExpr::col(c.name.clone(), c.ty)));
            }
            let projected = RelNode::Project { input: Box::new(agg_node), items };
            let sorted = RelNode::Sort {
                input: Box::new(projected),
                keys: vec![SortKey::asc(ORD_COL, SqlType::Int4)],
            };
            let shape = if exec_mode && t.columns.len() == 1 {
                ResultShape::Atom
            } else {
                ResultShape::Table
            };
            return Ok((sorted, shape));
        }

        // Plain projection: pass the order column through and order by it
        // (the Xformer may elide this later).
        let mut items: Vec<(String, ScalarExpr)> = Vec::new();
        if let Some(oc) = &ord_col {
            items.push((oc.clone(), ScalarExpr::col(oc.clone(), SqlType::Int8)));
        }
        if t.columns.is_empty() {
            for c in &schema {
                if Some(&c.name) == ord_col.as_ref() {
                    continue;
                }
                items.push((c.name.clone(), ScalarExpr::col(c.name.clone(), c.ty)));
            }
        } else {
            for (name, e) in &t.columns {
                let s = self.bind_scalar(e, &schema, false)?;
                items.push((name.clone().unwrap_or_else(|| default_name(e)), s));
            }
        }
        let projected = RelNode::Project { input: Box::new(plan), items };
        let finished = match &ord_col {
            Some(oc) => RelNode::Sort {
                input: Box::new(projected),
                keys: vec![SortKey::asc(oc.clone(), SqlType::Int8)],
            },
            None => projected,
        };
        let shape = if exec_mode {
            if t.columns.len() == 1 {
                ResultShape::Column
            } else {
                ResultShape::Dict
            }
        } else {
            ResultShape::Table
        };
        Ok((finished, shape))
    }

    /// `update`: replace/add columns in the output only. Filtered updates
    /// become CASE expressions; the base row set is never filtered.
    fn bind_update(&mut self, t: &TemplateExpr, base: RelNode) -> QResult<(RelNode, ResultShape)> {
        let schema = base.props().output;
        let ord_col = base.props().ord_col;
        let preds = self.bind_predicates(&t.predicates, &schema)?;
        let condition = if preds.is_empty() {
            None
        } else {
            Some(ScalarExpr::conjunction(preds))
        };

        let mut updates: Vec<(String, ScalarExpr)> = Vec::new();
        for (name, e) in &t.columns {
            let s = self.bind_scalar(e, &schema, false)?;
            updates.push((name.clone().unwrap_or_else(|| default_name(e)), s));
        }

        let mut items: Vec<(String, ScalarExpr)> = Vec::new();
        for c in &schema {
            let updated = updates.iter().find(|(n, _)| *n == c.name);
            let expr = match (updated, &condition) {
                (Some((_, new)), None) => new.clone(),
                (Some((_, new)), Some(cond)) => ScalarExpr::Case {
                    branches: vec![(cond.clone(), new.clone())],
                    else_result: Some(Box::new(ScalarExpr::col(c.name.clone(), c.ty))),
                },
                (None, _) => ScalarExpr::col(c.name.clone(), c.ty),
            };
            items.push((c.name.clone(), expr));
        }
        // Entirely new columns.
        for (name, new) in &updates {
            if schema.iter().any(|c| c.name == *name) {
                continue;
            }
            let expr = match &condition {
                None => new.clone(),
                Some(cond) => ScalarExpr::Case {
                    branches: vec![(cond.clone(), new.clone())],
                    else_result: Some(Box::new(ScalarExpr::Const(Datum::Null(new.derived_type())))),
                },
            };
            items.push((name.clone(), expr));
        }

        let projected = RelNode::Project { input: Box::new(base), items };
        let finished = match ord_col {
            Some(oc) => RelNode::Sort {
                input: Box::new(projected),
                keys: vec![SortKey::asc(oc, SqlType::Int8)],
            },
            None => projected,
        };
        Ok((finished, ResultShape::Table))
    }

    /// `delete`: drop rows (negated filter) or columns (projection).
    fn bind_delete(&mut self, t: &TemplateExpr, base: RelNode) -> QResult<(RelNode, ResultShape)> {
        let schema = base.props().output;
        let ord_col = base.props().ord_col;
        if !t.columns.is_empty() {
            let mut doomed = Vec::new();
            for (_, e) in &t.columns {
                match e {
                    Expr::Var(n) => doomed.push(n.clone()),
                    _ => return Err(QError::type_err("delete: column clause must be a name")),
                }
            }
            let items = schema
                .iter()
                .filter(|c| !doomed.contains(&c.name))
                .map(|c| (c.name.clone(), ScalarExpr::col(c.name.clone(), c.ty)))
                .collect();
            return Ok((RelNode::Project { input: Box::new(base), items }, ResultShape::Table));
        }
        let preds = self.bind_predicates(&t.predicates, &schema)?;
        let keep = ScalarExpr::Unary {
            op: UnOp::Not,
            arg: Box::new(ScalarExpr::conjunction(preds)),
        };
        let filtered = RelNode::Filter { input: Box::new(base), predicate: keep };
        let finished = match ord_col {
            Some(oc) => RelNode::Sort {
                input: Box::new(filtered),
                keys: vec![SortKey::asc(oc, SqlType::Int8)],
            },
            None => filtered,
        };
        Ok((finished, ResultShape::Table))
    }

    /// Bind a row-context scalar expression against a schema. `agg_ok`
    /// permits aggregate functions.
    pub fn bind_scalar(
        &mut self,
        e: &Expr,
        schema: &[ColumnDef],
        agg_ok: bool,
    ) -> QResult<ScalarExpr> {
        match e {
            Expr::Lit(v) => Ok(ScalarExpr::Const(value_to_datum(v)?)),
            Expr::Var(name) => {
                // Columns shadow variables inside q-sql clauses.
                if let Some(c) = schema.iter().find(|c| c.name == *name) {
                    return Ok(ScalarExpr::col(c.name.clone(), c.ty));
                }
                // The virtual row-index column maps onto the implicit
                // order column (0-based vs 1-based is fixed up here).
                if name == "i" {
                    if let Some(c) = schema.iter().find(|c| c.name == ORD_COL) {
                        return Ok(ScalarExpr::binary(
                            BinOp::Sub,
                            ScalarExpr::col(c.name.clone(), c.ty),
                            ScalarExpr::i64(1),
                        ));
                    }
                }
                match self.scopes.lookup(name) {
                    Some(VarDef::Scalar(d)) => Ok(ScalarExpr::Const(d.clone())),
                    Some(VarDef::List(_)) => Err(QError::type_err(format!(
                        "list variable {name} used in scalar context (only `in` supported)"
                    ))),
                    Some(_) => Err(QError::type_err(format!("{name} is not scalar"))),
                    None => Err(QError::undefined(name)),
                }
            }
            Expr::Binary { op, lhs, rhs } => self.bind_scalar_binary(op, lhs, rhs, schema, agg_ok),
            Expr::Unary { op, arg } => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                match op.as_str() {
                    "-" => Ok(ScalarExpr::Unary { op: UnOp::Neg, arg: Box::new(a) }),
                    "#" => Ok(ScalarExpr::Agg { func: AggFunc::Count, arg: None }),
                    other => Err(QError::type_err(format!("monadic {other} not bindable"))),
                }
            }
            Expr::Apply { func, arg } => {
                let fname = match func.as_ref() {
                    Expr::Var(n) => n.clone(),
                    _ => return Err(QError::type_err("cannot bind computed scalar callee")),
                };
                self.bind_scalar_apply(&fname, arg, schema, agg_ok)
            }
            Expr::Call { func, args } => {
                // f[x] sugar for apply.
                if args.len() == 1 {
                    if let (Expr::Var(n), Some(a)) = (func.as_ref(), &args[0]) {
                        let n = n.clone();
                        return self.bind_scalar_apply(&n, a, schema, agg_ok);
                    }
                }
                Err(QError::type_err("cannot bind call in scalar context"))
            }
            Expr::Cond(items) if items.len() >= 3 => {
                let mut branches = Vec::new();
                let mut i = 0;
                while i + 1 < items.len() {
                    let c = self.bind_scalar(&items[i], schema, agg_ok)?;
                    let r = self.bind_scalar(&items[i + 1], schema, agg_ok)?;
                    branches.push((c, r));
                    i += 2;
                }
                let else_result = if i < items.len() {
                    Some(Box::new(self.bind_scalar(&items[i], schema, agg_ok)?))
                } else {
                    None
                };
                Ok(ScalarExpr::Case { branches, else_result })
            }
            _ => Err(QError::type_err("expression does not bind to a scalar")),
        }
    }

    fn bind_scalar_binary(
        &mut self,
        op: &str,
        lhs: &Expr,
        rhs: &Expr,
        schema: &[ColumnDef],
        agg_ok: bool,
    ) -> QResult<ScalarExpr> {
        // Membership: right side must be a constant list.
        if op == "in" {
            let needle = self.bind_scalar(lhs, schema, agg_ok)?;
            // Constant list first; otherwise a relational right side binds
            // as an uncorrelated subquery (`Sym in exec Sym from u`).
            match self.bind_const_list(rhs) {
                Ok(list) => {
                    return Ok(ScalarExpr::InList {
                        needle: Box::new(needle),
                        list: list.into_iter().map(ScalarExpr::Const).collect(),
                        negated: false,
                    })
                }
                Err(const_err) => {
                    if let Ok(plan) = self.bind_rel(rhs) {
                        // The haystack is a single column: project away
                        // the implicit order column (IN ignores order).
                        let props = plan.props();
                        let hay = props
                            .output
                            .iter()
                            .find(|c| c.name != ORD_COL)
                            .ok_or_else(|| {
                                QError::type_err("in: subquery has no value column")
                            })?;
                        let projected = RelNode::Project {
                            input: Box::new(plan),
                            items: vec![(
                                hay.name.clone(),
                                ScalarExpr::col(hay.name.clone(), hay.ty),
                            )],
                        };
                        return Ok(ScalarExpr::InSubquery {
                            needle: Box::new(needle),
                            plan: Box::new(projected),
                            negated: false,
                        });
                    }
                    return Err(const_err);
                }
            }
        }
        if op == "within" {
            let x = self.bind_scalar(lhs, schema, agg_ok)?;
            let bounds = self.bind_const_list(rhs)?;
            if bounds.len() != 2 {
                return Err(QError::length("within: need (lo;hi)"));
            }
            return Ok(ScalarExpr::binary(
                BinOp::And,
                ScalarExpr::binary(BinOp::Ge, x.clone(), ScalarExpr::Const(bounds[0].clone())),
                ScalarExpr::binary(BinOp::Le, x, ScalarExpr::Const(bounds[1].clone())),
            ));
        }
        if op == "like" {
            let x = self.bind_scalar(lhs, schema, agg_ok)?;
            let pat = match rhs {
                Expr::Lit(Value::Chars(s)) => s.clone(),
                Expr::Lit(Value::Atom(Atom::Symbol(s))) => s.clone(),
                _ => return Err(QError::type_err("like: pattern must be a literal")),
            };
            return Ok(ScalarExpr::binary(
                BinOp::Like,
                x,
                ScalarExpr::Const(Datum::Str(glob_to_like(&pat))),
            ));
        }

        let l = self.bind_scalar(lhs, schema, agg_ok)?;
        let r = self.bind_scalar(rhs, schema, agg_ok)?;
        // Q orders every typed null below every value (`0N < x` is 1b),
        // while SQL comparisons against NULL yield NULL; translate the
        // four ordering operators with the null ranking made explicit.
        if let Some(bop) =
            match op {
                "<" => Some(BinOp::Lt),
                "<=" => Some(BinOp::Le),
                ">" => Some(BinOp::Gt),
                ">=" => Some(BinOp::Ge),
                _ => None,
            }
        {
            return Ok(q_ordered_cmp(bop, l, r));
        }
        let bop = match op {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            // Q division.
            "%" => BinOp::Div,
            "=" => BinOp::Eq,
            "<>" => BinOp::Neq,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "mod" => BinOp::Mod,
            "&" => {
                // On booleans & is AND; on numerics it is min.
                if l.derived_type() == SqlType::Bool {
                    BinOp::And
                } else {
                    return Ok(ScalarExpr::Func {
                        name: "least".into(),
                        ty: SqlType::promote(l.derived_type(), r.derived_type()),
                        args: vec![l, r],
                        volatile: false,
                    });
                }
            }
            "|" => {
                if l.derived_type() == SqlType::Bool {
                    BinOp::Or
                } else {
                    return Ok(ScalarExpr::Func {
                        name: "greatest".into(),
                        ty: SqlType::promote(l.derived_type(), r.derived_type()),
                        args: vec![l, r],
                        volatile: false,
                    });
                }
            }
            "^" => {
                // Fill: a^b — replace nulls in b with a.
                return Ok(ScalarExpr::Func {
                    name: "coalesce".into(),
                    ty: r.derived_type(),
                    args: vec![r, l],
                    volatile: false,
                });
            }
            "div" => {
                return Ok(ScalarExpr::Func {
                    name: "div".into(),
                    ty: SqlType::Int8,
                    args: vec![l, r],
                    volatile: false,
                });
            }
            "xbar" => {
                // `n xbar x` → x - (x % n): time/price bucketing.
                let ty = r.derived_type();
                return Ok(ScalarExpr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(r.clone()),
                    rhs: Box::new(ScalarExpr::Cast {
                        arg: Box::new(ScalarExpr::binary(BinOp::Mod, r, l)),
                        ty,
                    }),
                });
            }
            other => return Err(QError::type_err(format!("operator {other} not bindable"))),
        };
        Ok(ScalarExpr::binary(bop, l, r))
    }

    /// Monadic named functions in scalar/aggregate contexts.
    fn bind_scalar_apply(
        &mut self,
        name: &str,
        arg: &Expr,
        schema: &[ColumnDef],
        agg_ok: bool,
    ) -> QResult<ScalarExpr> {
        let agg = |f: AggFunc, me: &mut Self| -> QResult<ScalarExpr> {
            if !agg_ok {
                return Err(QError::type_err(format!("aggregate {name} not allowed here")));
            }
            // Q `count` is length: it counts nulls too, so every
            // argument — the virtual row index `i` or a column — maps to
            // COUNT(*). SQL's COUNT(col) would silently skip NULLs.
            if f == AggFunc::Count {
                if !matches!(arg, Expr::Var(v) if v == "i") {
                    // Still bind the argument so bad names error.
                    let bound = me.bind_scalar(arg, schema, false)?;
                    // Test-only fault injection (crate::testhooks): emit
                    // the pre-PR-3 null-skipping COUNT(col) on demand so
                    // the fuzz harness can demonstrate detect→shrink.
                    if crate::testhooks::reintroduce_count_col_bug() {
                        return Ok(ScalarExpr::Agg {
                            func: AggFunc::Count,
                            arg: Some(Box::new(bound)),
                        });
                    }
                }
                return Ok(ScalarExpr::Agg { func: AggFunc::Count, arg: None });
            }
            let a = me.bind_scalar(arg, schema, false)?;
            Ok(ScalarExpr::Agg { func: f, arg: Some(Box::new(a)) })
        };
        match name {
            "count" => agg(AggFunc::Count, self),
            "sum" => {
                // Q: sum over an empty list is 0; SQL SUM is NULL.
                let s = agg(AggFunc::Sum, self)?;
                let ty = s.derived_type();
                let zero = if ty.is_numeric() && matches!(ty, SqlType::Float4 | SqlType::Float8) {
                    Datum::F64(0.0)
                } else {
                    Datum::I64(0)
                };
                Ok(ScalarExpr::Func {
                    name: "coalesce".into(),
                    ty,
                    args: vec![s, ScalarExpr::Const(zero)],
                    volatile: false,
                })
            }
            "avg" => agg(AggFunc::Avg, self),
            "min" => agg(AggFunc::Min, self),
            "max" => agg(AggFunc::Max, self),
            "dev" => agg(AggFunc::StdDev, self),
            "var" => agg(AggFunc::Variance, self),
            "first" => agg(AggFunc::First, self),
            "last" => agg(AggFunc::Last, self),
            "med" => {
                if !agg_ok {
                    return Err(QError::type_err("aggregate med not allowed here"));
                }
                // Backend-toolbox aggregate (paper §5: a "toolbox" of
                // helper functions for Q constructs PG lacks).
                let a = self.bind_scalar(arg, schema, false)?;
                Ok(ScalarExpr::Func {
                    name: "median".into(),
                    ty: SqlType::Float8,
                    args: vec![a],
                    volatile: false,
                })
            }
            "not" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                Ok(ScalarExpr::Unary { op: UnOp::Not, arg: Box::new(a) })
            }
            "null" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                Ok(ScalarExpr::IsNull { arg: Box::new(a), negated: false })
            }
            "abs" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                Ok(ScalarExpr::Unary { op: UnOp::Abs, arg: Box::new(a) })
            }
            "neg" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                Ok(ScalarExpr::Unary { op: UnOp::Neg, arg: Box::new(a) })
            }
            "sqrt" | "exp" | "log" | "floor" | "ceiling" | "signum" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                let (fname, ty) = match name {
                    "sqrt" => ("sqrt", SqlType::Float8),
                    "exp" => ("exp", SqlType::Float8),
                    "log" => ("ln", SqlType::Float8),
                    "floor" => ("floor", SqlType::Int8),
                    "ceiling" => ("ceil", SqlType::Int8),
                    _ => ("sign", SqlType::Int8),
                };
                Ok(ScalarExpr::Func { name: fname.into(), args: vec![a], ty, volatile: false })
            }
            "string" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                Ok(ScalarExpr::Cast { arg: Box::new(a), ty: SqlType::Text })
            }
            "upper" | "lower" => {
                let a = self.bind_scalar(arg, schema, agg_ok)?;
                Ok(ScalarExpr::Func {
                    name: name.into(),
                    args: vec![a],
                    ty: SqlType::Varchar,
                    volatile: false,
                })
            }
            "deltas" => {
                // deltas x → x - prev x, ordered by the implicit order
                // column. Only the FIRST row keeps its value; rows whose
                // predecessor is a genuine null must stay null (q: x-0N is
                // 0N), so the row-1 test is on row_number(), not on
                // lag() IS NULL — COALESCE(x - lag(x), x) can't tell the
                // two apart.
                let a = self.bind_scalar(arg, schema, false)?;
                let oc = schema
                    .iter()
                    .find(|c| c.name == ORD_COL)
                    .ok_or_else(|| QError::type_err("deltas requires ordered input"))?;
                let order_by = vec![(ScalarExpr::col(oc.name.clone(), oc.ty), SortDir::Asc)];
                let lagged = ScalarExpr::Window {
                    func: WinFunc::Lag,
                    args: vec![a.clone()],
                    partition_by: vec![],
                    order_by: order_by.clone(),
                };
                let row_number = ScalarExpr::Window {
                    func: WinFunc::RowNumber,
                    args: vec![],
                    partition_by: vec![],
                    order_by,
                };
                Ok(ScalarExpr::Case {
                    branches: vec![(
                        ScalarExpr::binary(BinOp::Eq, row_number, ScalarExpr::i64(1)),
                        a.clone(),
                    )],
                    else_result: Some(Box::new(ScalarExpr::binary(BinOp::Sub, a, lagged))),
                })
            }
            "prev" | "next" => {
                // Windowed shift ordered by the implicit order column.
                let a = self.bind_scalar(arg, schema, false)?;
                let oc = schema
                    .iter()
                    .find(|c| c.name == ORD_COL)
                    .ok_or_else(|| QError::type_err(format!("{name} requires ordered input")))?;
                let ty = a.derived_type();
                Ok(ScalarExpr::Window {
                    func: if name == "prev" { WinFunc::Lag } else { WinFunc::Lead },
                    args: vec![a],
                    partition_by: vec![],
                    order_by: vec![(ScalarExpr::col(oc.name.clone(), oc.ty), SortDir::Asc)],
                }
                .with_type(ty))
            }
            other => Err(QError::type_err(format!("function {other} not bindable to SQL"))),
        }
    }

    /// Bind an expression that must be a constant list (RHS of `in`).
    fn bind_const_list(&mut self, e: &Expr) -> QResult<Vec<Datum>> {
        match e {
            Expr::Lit(v) => value_to_datums(v),
            Expr::Var(name) => match self.scopes.lookup(name) {
                Some(VarDef::List(items)) => Ok(items.clone()),
                Some(VarDef::Scalar(d)) => Ok(vec![d.clone()]),
                _ => Err(QError::type_err(format!(
                    "{name} is not a constant list known to Hyper-Q's variable store"
                ))),
            },
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for it in items {
                    let s = self.bind_scalar(it, &[], false)?;
                    match fold_const(&s) {
                        Some(d) => out.push(d),
                        None => return Err(QError::type_err("in: list elements must be constant")),
                    }
                }
                Ok(out)
            }
            _ => Err(QError::type_err("in: right operand must be a constant list")),
        }
    }
}

/// Small helper extensions used by the binder.
trait ScalarExt {
    fn with_type(self, ty: SqlType) -> ScalarExpr;
}

impl ScalarExt for ScalarExpr {
    /// Window functions infer their type from args; nothing to change,
    /// provided for readability at call sites.
    fn with_type(self, _ty: SqlType) -> ScalarExpr {
        self
    }
}


/// Is this bound expression aggregate-valued? Covers both native `Agg`
/// nodes and backend-toolbox aggregate functions (`median`) that bind as
/// plain function calls.
pub fn is_aggregate_like(e: &ScalarExpr) -> bool {
    fn toolbox_agg(e: &ScalarExpr) -> bool {
        match e {
            ScalarExpr::Func { name, .. } if name == "median" => true,
            ScalarExpr::Func { args, .. } => args.iter().any(toolbox_agg),
            ScalarExpr::Binary { lhs, rhs, .. } => toolbox_agg(lhs) || toolbox_agg(rhs),
            ScalarExpr::Unary { arg, .. } | ScalarExpr::Cast { arg, .. } => toolbox_agg(arg),
            ScalarExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| toolbox_agg(c) || toolbox_agg(r))
                    || else_result.as_ref().map(|x| toolbox_agg(x)).unwrap_or(false)
            }
            _ => false,
        }
    }
    e.contains_aggregate() || toolbox_agg(e)
}

/// Default q-sql output column name: named after the underlying column.
fn default_name(e: &Expr) -> String {
    match e {
        Expr::Var(n) => n.clone(),
        Expr::Apply { arg, .. } | Expr::Unary { arg, .. } => default_name(arg),
        Expr::Binary { lhs, .. } => default_name(lhs),
        Expr::Call { args, .. } => args
            .iter()
            .flatten()
            .last()
            .map(default_name)
            .unwrap_or_else(|| "x".to_string()),
        _ => "x".to_string(),
    }
}

/// Extract a symbol list literal.
fn expect_symbols(e: &Expr) -> QResult<Vec<String>> {
    match e {
        Expr::Lit(Value::Atom(Atom::Symbol(s))) => Ok(vec![s.clone()]),
        Expr::Lit(Value::Symbols(ss)) => Ok(ss.clone()),
        _ => Err(QError::type_err("expected a symbol list literal")),
    }
}

/// Constant-fold a bound scalar expression, if it is constant.
pub fn fold_const(e: &ScalarExpr) -> Option<Datum> {
    match e {
        ScalarExpr::Const(d) => Some(d.clone()),
        ScalarExpr::Unary { op: UnOp::Neg, arg } => match fold_const(arg)? {
            Datum::I64(v) => Some(Datum::I64(-v)),
            Datum::I32(v) => Some(Datum::I32(-v)),
            Datum::F64(v) => Some(Datum::F64(-v)),
            _ => None,
        },
        ScalarExpr::Binary { op, lhs, rhs } => {
            let l = fold_const(lhs)?;
            let r = fold_const(rhs)?;
            fold_binary(*op, &l, &r)
        }
        ScalarExpr::Cast { arg, ty } => {
            let v = fold_const(arg)?;
            match (v, ty) {
                (Datum::I64(x), SqlType::Float8) => Some(Datum::F64(x as f64)),
                (Datum::F64(x), SqlType::Int8) => Some(Datum::I64(x as i64)),
                (v, _) if v.sql_type() == *ty => Some(v),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Bind a Q ordering comparison with the null ranking made explicit.
/// Q treats a typed null as smaller than every value of its type
/// (`0N < x` is 1b for non-null x, `x <= 0N` only when x is null, two
/// nulls rank equal), while in SQL any comparison against NULL is NULL.
/// The raw operator keeps its SQL meaning for non-null operands; a
/// disjunct encodes the null-as-minus-infinity cases, and the outer
/// COALESCE pins the remaining NULL outcomes to q's `false` so the
/// expression is exact in projection context too, not just in filters.
fn q_ordered_cmp(op: BinOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    let is_null =
        |e: &ScalarExpr| ScalarExpr::IsNull { arg: Box::new(e.clone()), negated: false };
    let not_null =
        |e: &ScalarExpr| ScalarExpr::IsNull { arg: Box::new(e.clone()), negated: true };
    let null_wins = match op {
        BinOp::Lt => ScalarExpr::binary(BinOp::And, is_null(&l), not_null(&r)),
        BinOp::Le => is_null(&l),
        BinOp::Gt => ScalarExpr::binary(BinOp::And, is_null(&r), not_null(&l)),
        BinOp::Ge => is_null(&r),
        _ => unreachable!("q_ordered_cmp only handles ordering operators"),
    };
    ScalarExpr::Func {
        name: "coalesce".into(),
        ty: SqlType::Bool,
        args: vec![
            ScalarExpr::binary(BinOp::Or, ScalarExpr::binary(op, l, r), null_wins),
            ScalarExpr::Const(Datum::Bool(false)),
        ],
        volatile: false,
    }
}

fn fold_binary(op: BinOp, l: &Datum, r: &Datum) -> Option<Datum> {
    let as_f = |d: &Datum| -> Option<f64> {
        match d {
            Datum::I16(v) => Some(*v as f64),
            Datum::I32(v) => Some(*v as f64),
            Datum::I64(v) => Some(*v as f64),
            Datum::F32(v) => Some(*v as f64),
            Datum::F64(v) => Some(*v),
            _ => None,
        }
    };
    let both_int = matches!(l, Datum::I16(_) | Datum::I32(_) | Datum::I64(_))
        && matches!(r, Datum::I16(_) | Datum::I32(_) | Datum::I64(_));
    let (x, y) = (as_f(l)?, as_f(r)?);
    let num = |v: f64| -> Datum {
        if both_int && v.fract() == 0.0 && op != BinOp::Div {
            Datum::I64(v as i64)
        } else {
            Datum::F64(v)
        }
    };
    Some(match op {
        BinOp::Add => num(x + y),
        BinOp::Sub => num(x - y),
        BinOp::Mul => num(x * y),
        BinOp::Div => Datum::F64(x / y),
        BinOp::Mod => num(x.rem_euclid(y)),
        BinOp::Eq => Datum::Bool(x == y),
        BinOp::Neq => Datum::Bool(x != y),
        BinOp::Lt => Datum::Bool(x < y),
        BinOp::Le => Datum::Bool(x <= y),
        BinOp::Gt => Datum::Bool(x > y),
        BinOp::Ge => Datum::Bool(x >= y),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdi::StaticMdi;

    fn catalog() -> StaticMdi {
        let ord = || ColumnDef::not_null(ORD_COL, SqlType::Int8);
        StaticMdi::new()
            .with(TableMeta::new(
                "trades",
                vec![
                    ord(),
                    ColumnDef::new("Date", SqlType::Date),
                    ColumnDef::new("Symbol", SqlType::Varchar),
                    ColumnDef::new("Time", SqlType::Time),
                    ColumnDef::new("Price", SqlType::Float8),
                    ColumnDef::new("Size", SqlType::Int8),
                ],
            ))
            .with(TableMeta::new(
                "quotes",
                vec![
                    ord(),
                    ColumnDef::new("Date", SqlType::Date),
                    ColumnDef::new("Symbol", SqlType::Varchar),
                    ColumnDef::new("Time", SqlType::Time),
                    ColumnDef::new("Bid", SqlType::Float8),
                    ColumnDef::new("Ask", SqlType::Float8),
                ],
            ))
    }

    fn bind_one(src: &str) -> BindOutput {
        let mdi = catalog();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut binder =
            Binder::new(&mdi, &mut scopes, MaterializationPolicy::Logical, &mut seq);
        let stmts = qlang::parse(src).unwrap();
        let mut out = None;
        for s in &stmts {
            out = Some(binder.bind_statement(s).unwrap_or_else(|e| panic!("bind {src:?}: {e}")));
        }
        out.unwrap()
    }

    fn plan_of(out: &BindOutput) -> &RelNode {
        match &out.bound {
            Bound::Rel { plan, .. } => plan,
            other => panic!("expected rel, got {other:?}"),
        }
    }

    #[test]
    fn select_binds_to_project_over_filter_over_get() {
        let out = bind_one("select Price from trades where Symbol=`GOOG");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_sort"), "{text}");
        assert!(text.contains("xtra_project"), "{text}");
        assert!(text.contains("xtra_filter"), "{text}");
        assert!(text.contains("xtra_get(trades)"), "{text}");
    }

    #[test]
    fn select_projects_ord_col_through() {
        let out = bind_one("select Price from trades");
        let props = plan_of(&out).props();
        assert!(props.has_column(ORD_COL), "ordcol travels with the projection");
        assert!(props.has_column("Price"));
        assert_eq!(props.output.len(), 2, "column pruning keeps only what's needed");
    }

    #[test]
    fn sequential_wheres_stack_filters() {
        let out = bind_one(
            "select Price from trades where Date=2016.06.26, Symbol in `GOOG`IBM",
        );
        let text = plan_of(&out).explain();
        assert_eq!(text.matches("xtra_filter").count(), 2, "{text}");
        assert!(text.contains("IN (2 items)"), "{text}");
    }

    #[test]
    fn scalar_aggregate_gets_const_ord_col() {
        // The paper's §4.3 generated SQL: SELECT 1::int AS ordcol, MAX(Price)...
        let out = bind_one("select max Price from trades");
        let props = plan_of(&out).props();
        assert_eq!(props.output[0].name, ORD_COL);
        assert_eq!(props.output[1].name, "Price");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_aggregate"), "{text}");
    }

    #[test]
    fn group_by_binds_aggregate_with_keys() {
        let out = bind_one("select mx: max Price by Symbol from trades");
        match &out.bound {
            Bound::Rel { shape, .. } => {
                assert_eq!(*shape, ResultShape::KeyedTable { key_cols: 1 });
            }
            other => panic!("unexpected {other:?}"),
        }
        let props = plan_of(&out).props();
        assert_eq!(props.output[0].name, "Symbol");
        assert_eq!(props.output[1].name, "mx");
    }

    #[test]
    fn exec_shapes() {
        let out = bind_one("exec Price from trades");
        assert!(matches!(out.bound, Bound::Rel { shape: ResultShape::Column, .. }));
        let out = bind_one("exec Price, Size from trades");
        assert!(matches!(out.bound, Bound::Rel { shape: ResultShape::Dict, .. }));
        let out = bind_one("exec max Price from trades");
        assert!(matches!(out.bound, Bound::Rel { shape: ResultShape::Atom, .. }));
    }

    #[test]
    fn aj_binds_to_left_join_with_window() {
        // Figure 2's exact shape.
        let out = bind_one("aj[`Symbol`Time; trades; quotes]");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_join_left"), "{text}");
        assert!(text.contains("xtra_window"), "{text}");
        assert!(text.starts_with("xtra_sort"), "ordered at the end: {text}");
        let props = plan_of(&out).props();
        assert!(props.has_column("Bid"));
        assert!(props.has_column("Ask"));
        assert!(props.has_column("Price"));
    }

    #[test]
    fn aj_checks_join_columns() {
        let mdi = catalog();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut binder =
            Binder::new(&mdi, &mut scopes, MaterializationPolicy::Logical, &mut seq);
        let stmt = qlang::parse_one("aj[`NoSuchCol`Time; trades; quotes]").unwrap();
        let err = binder.bind_statement(&stmt).unwrap_err();
        assert!(err.to_string().contains("NoSuchCol"));
    }

    #[test]
    fn update_binds_to_case_projection() {
        let out = bind_one("update Price: 0.0 from trades where Symbol=`IBM");
        let props = plan_of(&out).props();
        // All original columns survive.
        assert!(props.has_column("Price"));
        assert!(props.has_column("Size"));
        let text = plan_of(&out).explain();
        assert!(!text.contains("xtra_filter"), "update must not filter rows: {text}");
    }

    #[test]
    fn delete_rows_negates_predicate() {
        let out = bind_one("delete from trades where Price<0");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_filter"), "{text}");
        assert!(text.contains("NOT"), "{text}");
    }

    #[test]
    fn delete_columns_projects_them_away() {
        let out = bind_one("delete Size from trades");
        let props = plan_of(&out).props();
        assert!(!props.has_column("Size"));
        assert!(props.has_column("Price"));
    }

    #[test]
    fn variable_assignment_logical_is_inlined() {
        let out = bind_one("dt: select Price from trades where Symbol=`GOOG; select max Price from dt");
        assert!(out.side_statements.is_empty(), "logical policy: no temp tables");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_get(trades)"), "view inlined: {text}");
    }

    #[test]
    fn variable_assignment_physical_creates_temp() {
        let mdi = catalog();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut binder =
            Binder::new(&mdi, &mut scopes, MaterializationPolicy::Physical, &mut seq);
        let stmts = qlang::parse(
            "dt: select Price from trades where Symbol=`GOOG; select max Price from dt",
        )
        .unwrap();
        let first = binder.bind_statement(&stmts[0]).unwrap();
        assert_eq!(first.side_statements.len(), 1);
        match &first.side_statements[0] {
            SideStatement::CreateTemp { name, .. } => assert_eq!(name, "HQ_TEMP_1"),
        }
        let second = binder.bind_statement(&stmts[1]).unwrap();
        let text = plan_of(&second).explain();
        assert!(text.contains("xtra_get(HQ_TEMP_1)"), "{text}");
    }

    #[test]
    fn function_unrolling_paper_example_3() {
        let out = bind_one(concat!(
            "f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}; ",
            "f[`GOOG]"
        ));
        let text = plan_of(&out).explain();
        // Unrolled: the final plan reads the base table directly and the
        // parameter became a constant filter.
        assert!(text.contains("xtra_get(trades)"), "{text}");
        assert!(text.contains("xtra_aggregate"), "{text}");
        assert!(text.contains("GOOG"), "{text}");
    }

    #[test]
    fn scalar_variables_fold_to_constants() {
        let out = bind_one("lim: 100+1; select Price from trades where Size>lim");
        let text = plan_of(&out).explain();
        assert!(text.contains("101"), "{text}");
    }

    #[test]
    fn list_variables_serve_in_lists() {
        let out = bind_one("SYMLIST: `GOOG`IBM; select Price from trades where Symbol in SYMLIST");
        let text = plan_of(&out).explain();
        assert!(text.contains("IN (2 items)"), "{text}");
    }

    #[test]
    fn lj_binds_keyed_join() {
        let out = bind_one("trades lj 1!select Symbol, Bid from quotes");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_join_left"), "{text}");
        assert!(text.contains("xtra_window"), "dedup via row_number: {text}");
        let props = plan_of(&out).props();
        assert!(props.has_column("Bid"));
    }

    #[test]
    fn xasc_binds_sort() {
        let out = bind_one("`Price xasc trades");
        assert!(plan_of(&out).explain().starts_with("xtra_sort"));
    }

    #[test]
    fn take_binds_limit() {
        let out = bind_one("5#trades");
        let text = plan_of(&out).explain();
        assert!(text.contains("xtra_limit"), "{text}");
    }

    #[test]
    fn standalone_scalar_binds() {
        let out = bind_one("1+2");
        match out.bound {
            Bound::Scalar(s) => assert_eq!(fold_const(&s), Some(Datum::I64(3))),
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn table_literal_binds_values_with_ord_col() {
        let out = bind_one("([] s:`a`b; p:1 2)");
        match plan_of(&out) {
            RelNode::Values { schema, rows } => {
                assert_eq!(schema[0].name, ORD_COL);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Datum::I64(1));
                assert_eq!(rows[1][0], Datum::I64(2));
            }
            other => panic!("expected values, got {}", other.explain()),
        }
    }

    #[test]
    fn undefined_table_is_a_value_error() {
        let mdi = catalog();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut binder =
            Binder::new(&mdi, &mut scopes, MaterializationPolicy::Logical, &mut seq);
        let stmt = qlang::parse_one("select from nosuch").unwrap();
        let err = binder.bind_statement(&stmt).unwrap_err();
        assert_eq!(err.kind, qlang::error::QErrorKind::Value);
    }

    #[test]
    fn const_folding() {
        assert_eq!(
            fold_binary(BinOp::Add, &Datum::I64(2), &Datum::I64(3)),
            Some(Datum::I64(5))
        );
        assert_eq!(
            fold_binary(BinOp::Div, &Datum::I64(1), &Datum::I64(2)),
            Some(Datum::F64(0.5))
        );
        assert_eq!(
            fold_binary(BinOp::Lt, &Datum::I64(1), &Datum::I64(2)),
            Some(Datum::Bool(true))
        );
    }
}
