//! Binder-side variable scopes (paper Figure 3).
//!
//! Unlike the engine's scopes, which hold *values*, the binder's scopes
//! hold *definitions*: references to backend tables, logical views
//! (bound XTRA trees), constant scalars/lists kept in Hyper-Q's variable
//! store, and function bodies stored as source text for re-algebrization
//! at invocation time (paper §4.3).

use crate::mdi::TableMeta;
use qlang::ast::LambdaDef;
use std::collections::HashMap;
use xtra::{Datum, RelNode};

/// What a name is bound to.
#[derive(Debug, Clone, PartialEq)]
pub enum VarDef {
    /// A physical backend table (base table or materialized temp table).
    TableRef(TableMeta),
    /// A *logical* materialization: the defining XTRA tree is inlined at
    /// every reference (paper §4.3, "using PG views, or maintaining the
    /// variable definition ... in Hyper-Q's variable store").
    View(RelNode),
    /// A scalar constant held in Hyper-Q's variable store.
    Scalar(Datum),
    /// A constant list (e.g. a symbol list used with `in`).
    List(Vec<Datum>),
    /// A function, stored as parsed definition + source text.
    Function(LambdaDef),
}

/// The three-level scope hierarchy: local frames → session → server.
#[derive(Debug, Default)]
pub struct Scopes {
    server: HashMap<String, VarDef>,
    session: HashMap<String, VarDef>,
    locals: Vec<HashMap<String, VarDef>>,
}

impl Scopes {
    /// Create an empty hierarchy.
    pub fn new() -> Self {
        Scopes::default()
    }

    /// Lookup walking local frames innermost-out, then session, then
    /// server. Returns `None` when the name must be resolved through the
    /// MDI (the bottom of Figure 3).
    pub fn lookup(&self, name: &str) -> Option<&VarDef> {
        for frame in self.locals.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(v);
            }
        }
        self.session.get(name).or_else(|| self.server.get(name))
    }

    /// Upsert: local frame when inside a function, session otherwise.
    /// Local upserts never get promoted to higher scopes.
    pub fn upsert(&mut self, name: impl Into<String>, def: VarDef) {
        if let Some(frame) = self.locals.last_mut() {
            frame.insert(name.into(), def);
        } else {
            self.session.insert(name.into(), def);
        }
    }

    /// Global (`::`) upsert straight into the server scope.
    pub fn upsert_global(&mut self, name: impl Into<String>, def: VarDef) {
        self.server.insert(name.into(), def);
    }

    /// Enter a function body.
    pub fn push_frame(&mut self) {
        self.locals.push(HashMap::new());
    }

    /// Leave a function body, discarding its locals.
    pub fn pop_frame(&mut self) {
        self.locals.pop();
    }

    /// Are we inside a function?
    pub fn in_function(&self) -> bool {
        !self.locals.is_empty()
    }

    /// Session destruction: session variables are promoted to server
    /// scope (paper §3.2.3).
    pub fn end_session(&mut self) {
        let drained: Vec<(String, VarDef)> = self.session.drain().collect();
        for (k, v) in drained {
            self.server.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::Datum;

    #[test]
    fn lookup_prefers_inner_scopes() {
        let mut s = Scopes::new();
        s.upsert_global("x", VarDef::Scalar(Datum::I64(1)));
        s.upsert("x", VarDef::Scalar(Datum::I64(2))); // session
        s.push_frame();
        s.upsert("x", VarDef::Scalar(Datum::I64(3))); // local
        assert_eq!(s.lookup("x"), Some(&VarDef::Scalar(Datum::I64(3))));
        s.pop_frame();
        assert_eq!(s.lookup("x"), Some(&VarDef::Scalar(Datum::I64(2))));
    }

    #[test]
    fn locals_never_promote() {
        let mut s = Scopes::new();
        s.push_frame();
        s.upsert("loc", VarDef::Scalar(Datum::I64(1)));
        s.pop_frame();
        assert!(s.lookup("loc").is_none());
    }

    #[test]
    fn session_promotes_on_destruction() {
        let mut s = Scopes::new();
        s.upsert("v", VarDef::Scalar(Datum::Bool(true)));
        s.end_session();
        assert!(s.lookup("v").is_some());
        // A later session upsert shadows the promoted server variable.
        s.upsert("v", VarDef::Scalar(Datum::Bool(false)));
        assert_eq!(s.lookup("v"), Some(&VarDef::Scalar(Datum::Bool(false))));
    }

    #[test]
    fn in_function_tracks_frames() {
        let mut s = Scopes::new();
        assert!(!s.in_function());
        s.push_frame();
        assert!(s.in_function());
        s.pop_frame();
        assert!(!s.in_function());
    }
}
