//! # algebrizer — binding Q ASTs into XTRA trees
//!
//! The Algebrizer is the front half of Hyper-Q's Query Translator (paper
//! §3.2). Parsing produced an *untyped* AST; this crate performs the
//! semantic analysis the paper calls **binding**:
//!
//! * variable references are resolved through the scope hierarchy of
//!   Figure 3 ([`scopes`]) and, at the bottom, through the **metadata
//!   interface** to the backend catalog ([`mdi`]) — with the configurable
//!   caching layer the evaluation section measures;
//! * each Q operator is mapped to a semantically equivalent (sometimes
//!   much more complicated) relational expression: q-sql templates become
//!   Filter/Project/Aggregate stacks, and the as-of join becomes a left
//!   outer join over a window function on its right input, exactly as in
//!   paper Figure 2 ([`bind`]);
//! * operator properties are derived bottom-up and inputs are *checked*
//!   (e.g. `aj` requires its join columns in both inputs);
//! * Q literals are mapped onto the SQL type system ([`literal`]).
//!
//! Functions are stored as source text and re-algebrized (unrolled) at
//! invocation, so no UDFs need to be created in the backend — the §5 case
//! study calls this out as important for analysts without CREATE rights.

pub mod bind;
pub mod literal;
pub mod mdi;
pub mod scopes;

pub use bind::{BindOutput, Binder, Bound, MaterializationPolicy, ResultShape, SideStatement};
pub use mdi::{CachingMdi, Mdi, MdiStats, StaticMdi, TableMeta};
pub use scopes::{Scopes, VarDef};
