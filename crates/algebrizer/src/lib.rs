//! # algebrizer — binding Q ASTs into XTRA trees
//!
//! The Algebrizer is the front half of Hyper-Q's Query Translator (paper
//! §3.2). Parsing produced an *untyped* AST; this crate performs the
//! semantic analysis the paper calls **binding**:
//!
//! * variable references are resolved through the scope hierarchy of
//!   Figure 3 ([`scopes`]) and, at the bottom, through the **metadata
//!   interface** to the backend catalog ([`mdi`]) — with the configurable
//!   caching layer the evaluation section measures;
//! * each Q operator is mapped to a semantically equivalent (sometimes
//!   much more complicated) relational expression: q-sql templates become
//!   Filter/Project/Aggregate stacks, and the as-of join becomes a left
//!   outer join over a window function on its right input, exactly as in
//!   paper Figure 2 ([`bind`]);
//! * operator properties are derived bottom-up and inputs are *checked*
//!   (e.g. `aj` requires its join columns in both inputs);
//! * Q literals are mapped onto the SQL type system ([`literal`]).
//!
//! Functions are stored as source text and re-algebrized (unrolled) at
//! invocation, so no UDFs need to be created in the backend — the §5 case
//! study calls this out as important for analysts without CREATE rights.

pub mod bind;
pub mod literal;
pub mod mdi;
pub mod scopes;

/// Test-only fault injection for the conformance harness (DESIGN §9).
///
/// The differential fuzzer's shrinker needs a *known* translation bug it
/// can be pointed at, so the PR-3 `count col` mistranslation (Q `count`
/// is length and counts nulls; SQL `COUNT(col)` silently skips them) can
/// be deliberately re-introduced behind this process-global flag. It
/// exists purely so `tests/fuzz_differential.rs` can prove the
/// detect→shrink→repro pipeline end to end; production code never sets
/// it.
#[doc(hidden)]
pub mod testhooks {
    use std::sync::atomic::{AtomicBool, Ordering};

    static COUNT_COL_BUG: AtomicBool = AtomicBool::new(false);

    /// Re-introduce (or clear) the `count col` → `COUNT(col)` bug.
    pub fn set_reintroduce_count_col_bug(on: bool) {
        COUNT_COL_BUG.store(on, Ordering::SeqCst);
    }

    /// Is the deliberate bug currently active?
    pub fn reintroduce_count_col_bug() -> bool {
        COUNT_COL_BUG.load(Ordering::SeqCst)
    }
}

pub use bind::{BindOutput, Binder, Bound, MaterializationPolicy, ResultShape, SideStatement};
pub use mdi::{CachingMdi, Mdi, MdiStats, StaticMdi, TableMeta};
pub use scopes::{Scopes, VarDef};
