//! The MetaData Interface (MDI).
//!
//! Binding resolves table variables by "executing a query against PG
//! catalog to retrieve various properties of the searched object" (paper
//! §3.2.3): columns, keys and sort order for tables. Because a metadata
//! lookup is a round trip to the backend, Hyper-Q layers a **configurable
//! metadata cache** with invalidation policies and expiration time on top
//! (§6) — the evaluation's experiments run with caching enabled, and our
//! Ablation A measures the difference.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xtra::ColumnDef;

/// Metadata describing one backend table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table name in the backend.
    pub name: String,
    /// Column definitions, in order (including the implicit `ordcol`
    /// when the table was created by Hyper-Q).
    pub columns: Vec<ColumnDef>,
    /// Candidate keys (column-name sets).
    pub keys: Vec<Vec<String>>,
    /// Physical sort order, if any.
    pub sort_order: Vec<String>,
}

impl TableMeta {
    /// Convenience constructor for an unkeyed table.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableMeta { name: name.into(), columns, keys: vec![], sort_order: vec![] }
    }

    /// Does this table carry Hyper-Q's implicit order column?
    pub fn has_ord_col(&self) -> bool {
        self.columns.iter().any(|c| c.name == xtra::ORD_COL)
    }
}

/// The metadata interface the binder resolves names through.
///
/// Implementations: [`StaticMdi`] (in-memory, for tests), [`CachingMdi`]
/// (TTL cache wrapper), and `pgdb`-backed adapters in the `hyperq` crate
/// that issue real catalog queries.
pub trait Mdi: Send + Sync {
    /// Look up a table by name; `None` if the backend has no such table.
    fn table_meta(&self, name: &str) -> Option<TableMeta>;

    /// Number of *backend* lookups performed so far (instrumentation for
    /// the Figure 6/7 harness).
    fn lookup_count(&self) -> u64 {
        0
    }
}

/// A fixed, in-memory MDI.
#[derive(Debug, Default)]
pub struct StaticMdi {
    tables: HashMap<String, TableMeta>,
    lookups: AtomicU64,
    /// Simulated backend round-trip latency, to make cache effects
    /// measurable on a laptop the way they are against a real cluster.
    pub simulated_latency: Duration,
}

impl StaticMdi {
    /// Create an empty catalog.
    pub fn new() -> Self {
        StaticMdi::default()
    }

    /// Register a table.
    pub fn add(&mut self, meta: TableMeta) -> &mut Self {
        self.tables.insert(meta.name.clone(), meta);
        self
    }

    /// Builder-style registration.
    #[must_use]
    pub fn with(mut self, meta: TableMeta) -> Self {
        self.add(meta);
        self
    }
}

impl Mdi for StaticMdi {
    fn table_meta(&self, name: &str) -> Option<TableMeta> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if !self.simulated_latency.is_zero() {
            std::thread::sleep(self.simulated_latency);
        }
        self.tables.get(name).cloned()
    }

    fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }
}

/// Cache hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MdiStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups forwarded to the backend.
    pub misses: u64,
}

impl MdiStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// TTL-based caching wrapper around any [`Mdi`].
///
/// Negative results (missing tables) are cached too — repeated binding of
/// a query referencing a session-local variable must not hammer the
/// backend catalog.
pub struct CachingMdi<M: Mdi> {
    inner: M,
    ttl: Duration,
    entries: Mutex<HashMap<String, (Instant, Option<TableMeta>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M: Mdi> CachingMdi<M> {
    /// Wrap `inner` with a cache whose entries expire after `ttl`.
    pub fn new(inner: M, ttl: Duration) -> Self {
        CachingMdi {
            inner,
            ttl,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> MdiStats {
        MdiStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Explicitly invalidate one table (DDL against the backend, or a
    /// variable shadowing change).
    pub fn invalidate(&self, name: &str) {
        self.entries.lock().remove(name);
    }

    /// Drop the entire cache.
    pub fn invalidate_all(&self) {
        self.entries.lock().clear();
    }

    /// Access the wrapped MDI.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Mdi> Mdi for CachingMdi<M> {
    fn table_meta(&self, name: &str) -> Option<TableMeta> {
        let now = Instant::now();
        {
            let entries = self.entries.lock();
            if let Some((stamp, cached)) = entries.get(name) {
                if now.duration_since(*stamp) < self.ttl {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return cached.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = self.inner.table_meta(name);
        self.entries.lock().insert(name.to_string(), (now, fresh.clone()));
        fresh
    }

    fn lookup_count(&self) -> u64 {
        self.inner.lookup_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::SqlType;

    fn meta(name: &str) -> TableMeta {
        TableMeta::new(
            name,
            vec![
                ColumnDef::not_null(xtra::ORD_COL, SqlType::Int8),
                ColumnDef::new("Price", SqlType::Float8),
            ],
        )
    }

    #[test]
    fn static_mdi_counts_lookups() {
        let mdi = StaticMdi::new().with(meta("trades"));
        assert!(mdi.table_meta("trades").is_some());
        assert!(mdi.table_meta("nope").is_none());
        assert_eq!(mdi.lookup_count(), 2);
    }

    #[test]
    fn table_meta_detects_ord_col() {
        assert!(meta("t").has_ord_col());
        let plain = TableMeta::new("t", vec![ColumnDef::new("a", SqlType::Int8)]);
        assert!(!plain.has_ord_col());
    }

    #[test]
    fn cache_serves_repeat_lookups() {
        let mdi = CachingMdi::new(StaticMdi::new().with(meta("trades")), Duration::from_secs(60));
        for _ in 0..5 {
            assert!(mdi.table_meta("trades").is_some());
        }
        let stats = mdi.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(mdi.lookup_count(), 1, "backend touched once");
        assert!(stats.hit_ratio() > 0.7);
    }

    #[test]
    fn cache_caches_negative_results() {
        let mdi = CachingMdi::new(StaticMdi::new(), Duration::from_secs(60));
        assert!(mdi.table_meta("ghost").is_none());
        assert!(mdi.table_meta("ghost").is_none());
        assert_eq!(mdi.lookup_count(), 1);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let mdi = CachingMdi::new(StaticMdi::new().with(meta("t")), Duration::from_millis(10));
        mdi.table_meta("t");
        std::thread::sleep(Duration::from_millis(20));
        mdi.table_meta("t");
        assert_eq!(mdi.stats().misses, 2, "entry expired, backend re-queried");
    }

    #[test]
    fn invalidation_forces_refetch() {
        let mdi = CachingMdi::new(StaticMdi::new().with(meta("t")), Duration::from_secs(60));
        mdi.table_meta("t");
        mdi.invalidate("t");
        mdi.table_meta("t");
        assert_eq!(mdi.stats().misses, 2);
        mdi.invalidate_all();
        mdi.table_meta("t");
        assert_eq!(mdi.stats().misses, 3);
    }
}
