//! Mapping Q literals onto the SQL type system.
//!
//! Paper §3.2.2: "int types get mapped to equivalent integer types,
//! symbol type gets mapped to varchar, whereas string literals get mapped
//! to text constants." Temporal values change epoch/resolution: Q times
//! are milliseconds, SQL times microseconds; Q timestamps are nanoseconds,
//! SQL timestamps microseconds.

use qlang::value::{Atom, Value};
use qlang::{QError, QResult};
use xtra::{Datum, SqlType};

/// Convert a Q atom to a SQL datum.
pub fn atom_to_datum(a: &Atom) -> QResult<Datum> {
    if a.is_null() {
        return Ok(Datum::Null(atom_sql_type(a)));
    }
    Ok(match a {
        Atom::Bool(b) => Datum::Bool(*b),
        Atom::Byte(b) => Datum::I16(*b as i16),
        Atom::Short(v) => Datum::I16(*v),
        Atom::Int(v) => Datum::I32(*v),
        Atom::Long(v) => Datum::I64(*v),
        Atom::Real(v) => Datum::F32(*v),
        Atom::Float(v) => Datum::F64(*v),
        Atom::Char(c) => Datum::Str(c.to_string()),
        Atom::Symbol(s) => Datum::Str(s.clone()),
        // Q date: days since 2000-01-01 — same epoch as our SQL side.
        Atom::Date(d) => Datum::Date(*d),
        // Q time: ms since midnight → µs.
        Atom::Time(t) => Datum::Time(*t as i64 * 1000),
        // Q timestamp: ns since 2000-01-01 → µs (truncating).
        Atom::Timestamp(ts) => Datum::Timestamp(ts / 1000),
    })
}

/// SQL type a Q atom maps to.
pub fn atom_sql_type(a: &Atom) -> SqlType {
    match a {
        Atom::Bool(_) => SqlType::Bool,
        Atom::Byte(_) | Atom::Short(_) => SqlType::Int2,
        Atom::Int(_) => SqlType::Int4,
        Atom::Long(_) => SqlType::Int8,
        Atom::Real(_) => SqlType::Float4,
        Atom::Float(_) => SqlType::Float8,
        Atom::Char(_) => SqlType::Varchar,
        Atom::Symbol(_) => SqlType::Varchar,
        Atom::Date(_) => SqlType::Date,
        Atom::Time(_) => SqlType::Time,
        Atom::Timestamp(_) => SqlType::Timestamp,
    }
}

/// Convert a Q value to a list of datums (for `IN` lists and constant
/// list variables). Atoms become singleton lists.
pub fn value_to_datums(v: &Value) -> QResult<Vec<Datum>> {
    match v {
        Value::Atom(a) => Ok(vec![atom_to_datum(a)?]),
        Value::Chars(s) => Ok(vec![Datum::Str(s.clone())]),
        _ => {
            let n = v
                .len()
                .ok_or_else(|| QError::type_err(format!("cannot bind {} as a constant", v.type_name())))?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match v.index(i) {
                    Some(Value::Atom(a)) => out.push(atom_to_datum(&a)?),
                    Some(Value::Chars(s)) => out.push(Datum::Str(s)),
                    Some(other) => {
                        return Err(QError::type_err(format!(
                            "nested {} not supported as a constant",
                            other.type_name()
                        )))
                    }
                    None => {}
                }
            }
            Ok(out)
        }
    }
}

/// Convert a Q value to a single datum; Q strings become text constants.
pub fn value_to_datum(v: &Value) -> QResult<Datum> {
    match v {
        Value::Atom(a) => atom_to_datum(a),
        Value::Chars(s) => Ok(Datum::Str(s.clone())),
        other => Err(QError::type_err(format!(
            "expected a scalar constant, got {}",
            other.type_name()
        ))),
    }
}

/// Translate a Q `like` glob (`*`, `?`) to a SQL LIKE pattern (`%`, `_`),
/// escaping pre-existing SQL wildcards.
pub fn glob_to_like(pattern: &str) -> String {
    let mut out = String::with_capacity(pattern.len());
    for c in pattern.chars() {
        match c {
            '*' => out.push('%'),
            '?' => out.push('_'),
            '%' => out.push_str("\\%"),
            '_' => out.push_str("\\_"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_map_to_varchar() {
        let d = atom_to_datum(&Atom::Symbol("GOOG".into())).unwrap();
        assert_eq!(d, Datum::Str("GOOG".into()));
        assert_eq!(atom_sql_type(&Atom::Symbol("x".into())), SqlType::Varchar);
    }

    #[test]
    fn integers_map_by_width() {
        assert_eq!(atom_to_datum(&Atom::Short(1)).unwrap(), Datum::I16(1));
        assert_eq!(atom_to_datum(&Atom::Int(1)).unwrap(), Datum::I32(1));
        assert_eq!(atom_to_datum(&Atom::Long(1)).unwrap(), Datum::I64(1));
    }

    #[test]
    fn nulls_map_to_typed_sql_nulls() {
        assert_eq!(atom_to_datum(&Atom::Long(i64::MIN)).unwrap(), Datum::Null(SqlType::Int8));
        assert_eq!(
            atom_to_datum(&Atom::Symbol(String::new())).unwrap(),
            Datum::Null(SqlType::Varchar)
        );
        assert_eq!(atom_to_datum(&Atom::Float(f64::NAN)).unwrap(), Datum::Null(SqlType::Float8));
    }

    #[test]
    fn temporal_resolution_conversion() {
        // 09:30:00.000 = 34_200_000 ms → 34_200_000_000 µs.
        assert_eq!(atom_to_datum(&Atom::Time(34_200_000)).unwrap(), Datum::Time(34_200_000_000));
        // ns → µs truncation.
        assert_eq!(atom_to_datum(&Atom::Timestamp(1_234_567_891)).unwrap(), Datum::Timestamp(1_234_567));
        assert_eq!(atom_to_datum(&Atom::Date(6021)).unwrap(), Datum::Date(6021));
    }

    #[test]
    fn symbol_lists_become_datum_lists() {
        let v = Value::Symbols(vec!["GOOG".into(), "IBM".into()]);
        let ds = value_to_datums(&v).unwrap();
        assert_eq!(ds, vec![Datum::Str("GOOG".into()), Datum::Str("IBM".into())]);
    }

    #[test]
    fn q_strings_are_text_constants() {
        assert_eq!(value_to_datum(&Value::Chars("abc".into())).unwrap(), Datum::Str("abc".into()));
    }

    #[test]
    fn tables_are_not_constants() {
        let t = Value::Table(Box::default());
        assert!(value_to_datum(&t).is_err());
    }

    #[test]
    fn glob_translation() {
        assert_eq!(glob_to_like("GO*"), "GO%");
        assert_eq!(glob_to_like("?BM"), "_BM");
        assert_eq!(glob_to_like("50%"), "50\\%");
    }
}
