//! Standalone pgdb server, configured entirely from the environment —
//! the process the durability chaos suite spawns and SIGKILLs:
//!
//! * `HQ_DATA_DIR` — data directory; set → durable (recover on start)
//! * `HQ_FSYNC` — `always` | `group` | `group(<n>ms)` | `off`
//! * `HQ_CHECKPOINT_EVERY` — mutations between checkpoints (0 = never)
//! * `HQ_LISTEN` — bind address (default `127.0.0.1:0`)
//! * `HQ_DUR_CRASH` — deterministic fault point (see `durability::fault`)
//!
//! Prints `pgdb listening on <addr>` on stdout once ready, then blocks.

use pgdb::server::{PgServer, ServerConfig};
use pgdb::Db;
use std::io::Write;

fn main() {
    let addr = std::env::var("HQ_LISTEN").unwrap_or_else(|_| "127.0.0.1:0".into());
    let db = match Db::open_from_env() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("pgdb-server: cannot open database: {e}");
            std::process::exit(2);
        }
    };
    let durable = db.is_durable();
    let server = match PgServer::start(db, &addr, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pgdb-server: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!("pgdb listening on {} (durability {})", server.addr, if durable { "on" } else { "off" });
    // The spawning test reads the line to learn the port; make sure it
    // is not sitting in a stdio buffer when we get SIGKILLed.
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}
