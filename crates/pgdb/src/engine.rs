//! The database facade: shared store, sessions, statement execution.
//!
//! The global table store is shared across sessions (analytical tables
//! loaded once, queried by many connections — the "increased concurrency"
//! the paper's §5 customer valued). Temporary tables are session-scoped,
//! which is what makes them the right target for Hyper-Q's physical
//! materialization of Q variables (§4.3).

use crate::catalog;
use crate::exec::columnar::run_select_batch;
use crate::exec::expr::{cast, eval};
use crate::exec::{parallel, stream, TableSource};
use crate::sql::ast::Stmt;
use crate::sql::parse_statement;
use crate::types::{Cell, Column, Rows};
use colstore::{Batch, BatchStream, TableStats};
use durability::{Durability, WalRecord};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A database error with a SQLSTATE code (transported in PG v3
/// `ErrorResponse` messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbError {
    /// SQLSTATE code.
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl DbError {
    /// `42601` syntax error.
    pub fn syntax(msg: impl Into<String>) -> Self {
        DbError { code: "42601".into(), message: msg.into() }
    }

    /// `42P01` undefined table.
    pub fn undefined_table(name: &str) -> Self {
        DbError { code: "42P01".into(), message: format!("relation \"{name}\" does not exist") }
    }

    /// `42703` undefined column.
    pub fn undefined_column(name: String) -> Self {
        DbError { code: "42703".into(), message: format!("column \"{name}\" does not exist") }
    }

    /// `42P07` duplicate table.
    pub fn duplicate_table(name: &str) -> Self {
        DbError { code: "42P07".into(), message: format!("relation \"{name}\" already exists") }
    }

    /// `XX000` internal/execution error.
    pub fn exec(msg: impl Into<String>) -> Self {
        DbError { code: "XX000".into(), message: msg.into() }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for DbError {}

/// A stored table. Storage is columnar (DESIGN §10): scans hand the
/// executor typed vectors without per-cell work, and `CREATE TABLE AS`
/// stores the executor's result batch without transposing it.
///
/// The batch sits behind an `Arc` so snapshots — [`Db::get_table_snapshot`],
/// checkpoint captures — are reference-count bumps, not deep copies;
/// in-place mutation goes through `Arc::make_mut` (copy-on-write, and
/// the copy only happens while a snapshot is actually outstanding).
#[derive(Debug, Clone, Default)]
pub struct StoredTable {
    /// Columnar data (schema + typed column vectors), shared with any
    /// outstanding snapshots.
    pub batch: Arc<Batch>,
}

impl StoredTable {
    /// Wrap a batch for storage.
    pub fn new(batch: Batch) -> Self {
        StoredTable { batch: Arc::new(batch) }
    }

    /// Column definitions.
    pub fn columns(&self) -> &[Column] {
        &self.batch.schema
    }

    /// Row-major snapshot of the data.
    pub fn rows(&self) -> Vec<Vec<Cell>> {
        self.batch.to_rows().data
    }
}

/// The shared database: a handle cloneable across threads/sessions.
#[derive(Debug, Clone, Default)]
pub struct Db {
    tables: Arc<RwLock<HashMap<String, StoredTable>>>,
    /// Per-table statistics (row counts, null counts, distinct
    /// sketches), maintained incrementally on every global-table
    /// mutation and persisted in checkpoints. Lock order: `tables`
    /// first, then `stats` — never the reverse.
    stats: Arc<RwLock<HashMap<String, TableStats>>>,
    /// Durability manager; `None` keeps the pure in-memory hot path —
    /// no WAL, no fsync, byte-for-byte the pre-durability behaviour.
    dur: Option<Arc<Durability>>,
}

/// Map a durability failure onto the SQLSTATE surface (`XX000`): the
/// statement did not commit.
fn dur_err(e: durability::DurError) -> DbError {
    DbError::exec(format!("durability: {e}"))
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A row set (SELECT).
    Rows(Rows),
    /// A command tag (DDL/DML): e.g. `CREATE TABLE`, `INSERT 0 3`.
    Command(String),
}

/// Result of executing one statement, columnar: row sets stay batches
/// all the way to the wire codec (which serializes cells only at the
/// protocol boundary).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchQueryResult {
    /// A columnar row set (SELECT).
    Batch(Batch),
    /// A command tag (DDL/DML): e.g. `CREATE TABLE`, `INSERT 0 3`.
    Command(String),
}

/// Result of executing one statement, streaming: row sets arrive as an
/// iterator of bounded batches (DESIGN §12). Statements that qualify
/// for the true-streaming gate never materialize their full result;
/// everything else runs on the materializing executor and is re-chunked
/// so consumers see one bounded-batch shape either way.
#[derive(Debug)]
pub enum StreamQueryResult {
    /// A streamed columnar row set (SELECT).
    Stream(BatchStream<DbError>),
    /// A command tag (DDL/DML): e.g. `CREATE TABLE`, `INSERT 0 3`.
    Command(String),
}

impl Db {
    /// Create an empty, in-memory-only database.
    pub fn new() -> Self {
        Db::default()
    }

    /// Open a durable database: recover the catalog from the data
    /// directory (newest valid checkpoint + WAL tail), then WAL-log
    /// every committed mutation from here on.
    pub fn open(options: &durability::Options) -> Result<Db, DbError> {
        let (dur, recovered) = Durability::open_full(options).map_err(dur_err)?;
        let map = recovered
            .tables
            .into_iter()
            .map(|(n, b)| (n, StoredTable::new(b)))
            .collect();
        Ok(Db {
            tables: Arc::new(RwLock::new(map)),
            stats: Arc::new(RwLock::new(recovered.stats)),
            dur: Some(Arc::new(dur)),
        })
    }

    /// Open per `HQ_DATA_DIR` / `HQ_FSYNC` / `HQ_CHECKPOINT_EVERY`;
    /// falls back to a plain in-memory database when `HQ_DATA_DIR` is
    /// unset.
    pub fn open_from_env() -> Result<Db, DbError> {
        match durability::Options::from_env() {
            Some(opts) => Db::open(&opts),
            None => Ok(Db::new()),
        }
    }

    /// Whether committed mutations survive process death.
    pub fn is_durable(&self) -> bool {
        self.dur.is_some()
    }

    /// Open a session.
    pub fn session(&self) -> Session {
        Session { db: self.clone(), temps: HashMap::new(), exec_threads: None }
    }

    /// WAL-log one record. Must be called with the table write lock
    /// held so LSN order equals apply order — a checkpoint snapshots
    /// under the same lock and must never capture LSN `n` before the
    /// commit carrying `n-1` has applied. No-op when not durable.
    fn log(&self, rec: impl FnOnce() -> WalRecord) -> Result<Option<u64>, DbError> {
        match &self.dur {
            Some(d) => Ok(Some(d.append(&rec()).map_err(dur_err)?)),
            None => Ok(None),
        }
    }

    /// After the table lock is released: block until the logged record
    /// is durable per the fsync policy, then checkpoint if due. The
    /// client ack happens strictly after this returns.
    fn finish_commit(&self, lsn: Option<u64>) -> Result<(), DbError> {
        if let (Some(d), Some(lsn)) = (&self.dur, lsn) {
            d.wait_durable(lsn).map_err(dur_err)?;
            self.maybe_checkpoint();
        }
        Ok(())
    }

    /// Spill all tables as a checkpoint when enough mutations have
    /// accumulated. The snapshot (Arc bumps) and the WAL rotation
    /// happen atomically with respect to commits — the read lock
    /// excludes writers; segment writing runs outside any lock.
    fn maybe_checkpoint(&self) {
        let Some(d) = &self.dur else { return };
        if !d.should_checkpoint() || !d.try_begin_checkpoint() {
            return;
        }
        let (snapshot, stats_snapshot, lsn) = {
            let guard = self.tables.read();
            let snap: Vec<(String, Arc<Batch>)> =
                guard.iter().map(|(n, t)| (n.clone(), Arc::clone(&t.batch))).collect();
            let stats_snap = self.stats.read().clone();
            match d.rotate_for_checkpoint() {
                Ok(lsn) => (snap, stats_snap, lsn),
                Err(e) => {
                    eprintln!("pgdb: wal rotation for checkpoint failed: {e}");
                    d.abandon_checkpoint();
                    return;
                }
            }
        };
        if let Err(e) = d.write_checkpoint(lsn, &snapshot, &stats_snapshot) {
            // Best effort: the WAL retains everything the checkpoint
            // would have captured, so durability is unaffected.
            eprintln!("pgdb: checkpoint at lsn {lsn} failed: {e}");
        }
    }

    /// Host API: create (or replace) a global table directly.
    pub fn put_table(&self, name: &str, columns: Vec<Column>, rows: Vec<Vec<Cell>>) {
        let batch = Batch::from_rows(Rows { columns, data: rows });
        self.put_table_batch(name, batch);
    }

    /// Host API: create (or replace) a global table from a columnar
    /// batch directly — no row-major round trip (bench loaders).
    /// Panics on a durability failure; hosts that need to handle that
    /// use [`Db::try_put_table_batch`].
    pub fn put_table_batch(&self, name: &str, batch: Batch) {
        self.try_put_table_batch(name, batch)
            .expect("durable put_table failed");
    }

    /// Fallible form of [`Db::put_table_batch`].
    pub fn try_put_table_batch(&self, name: &str, batch: Batch) -> Result<(), DbError> {
        let stats = TableStats::from_batch(&batch);
        let mut guard = self.tables.write();
        let lsn = self.log(|| WalRecord::PutTable { name: name.to_string(), batch: batch.clone() })?;
        guard.insert(name.to_string(), StoredTable::new(batch));
        self.stats.write().insert(name.to_string(), stats);
        drop(guard);
        self.finish_commit(lsn)
    }

    /// Current statistics for a global table, if it exists.
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.stats.read().get(name).cloned()
    }

    /// Host API: fetch a snapshot of a global table. Cheap — the
    /// returned handle shares the stored batch (copy-on-write), so this
    /// is a map lookup plus a reference-count bump regardless of table
    /// size.
    pub fn get_table_snapshot(&self, name: &str) -> Option<StoredTable> {
        self.tables.read().get(name).cloned()
    }

    /// Names of all global tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// A session: shares the global store, owns its temp tables.
#[derive(Debug)]
pub struct Session {
    db: Db,
    temps: HashMap<String, StoredTable>,
    /// Executor worker-pool width override; `None` defers to
    /// `HQ_EXEC_THREADS` / available parallelism at query time.
    exec_threads: Option<usize>,
}

impl TableSource for Session {
    fn get_table(&self, name: &str) -> Option<(Vec<Column>, Vec<Vec<Cell>>)> {
        if let Some(t) = self.temps.get(name) {
            return Some((t.columns().to_vec(), t.rows()));
        }
        if let Some(t) = self.db.tables.read().get(name) {
            return Some((t.columns().to_vec(), t.rows()));
        }
        catalog::virtual_table(self, name)
    }

    fn get_table_batch(&self, name: &str) -> Option<Batch> {
        // The executor consumes the batch (`mem::take` on its columns),
        // so this hands out an owned deep copy — same cost as before
        // the store went copy-on-write.
        if let Some(t) = self.temps.get(name) {
            return Some(t.batch.as_ref().clone());
        }
        if let Some(t) = self.db.tables.read().get(name) {
            return Some(t.batch.as_ref().clone());
        }
        let (columns, rows) = catalog::virtual_table(self, name)?;
        Some(Batch::from_rows(Rows { columns, data: rows }))
    }

    fn exec_threads(&self) -> usize {
        self.exec_threads.unwrap_or_else(parallel::default_exec_threads)
    }
}

impl Session {
    /// Access the shared database handle.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Pin the executor worker-pool width for this session (`1` forces
    /// the serial path); `None` restores the environment default.
    pub fn set_exec_threads(&mut self, threads: Option<usize>) {
        self.exec_threads = threads.map(|t| t.max(1));
    }

    /// Names of this session's temp tables, sorted.
    pub fn temp_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.temps.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of temp + global tables for catalog purposes.
    pub(crate) fn all_tables_meta(&self) -> Vec<(String, Vec<Column>)> {
        let mut out: Vec<(String, Vec<Column>)> = self
            .temps
            .iter()
            .map(|(n, t)| (n.clone(), t.columns().to_vec()))
            .collect();
        for (n, t) in self.db.tables.read().iter() {
            out.push((n.clone(), t.columns().to_vec()));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Execute one SQL statement, row-major result (transposes the
    /// batch at the API boundary; see [`Session::execute_batch`]).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        Ok(match self.execute_batch(sql)? {
            BatchQueryResult::Batch(b) => QueryResult::Rows(b.into_rows()),
            BatchQueryResult::Command(tag) => QueryResult::Command(tag),
        })
    }

    /// Execute one SQL statement, streaming result: SELECTs inside the
    /// streamable gate (see `exec::stream`) yield morsel-sized batches
    /// without materializing; everything else executes on the
    /// materializing path and is re-chunked for uniform consumption.
    pub fn execute_stream(&mut self, sql: &str) -> Result<StreamQueryResult, DbError> {
        if let Ok(Stmt::Select(s)) = parse_statement(sql) {
            if let Some(stream) = stream::try_select_stream(self, &s) {
                return Ok(StreamQueryResult::Stream(stream));
            }
        }
        Ok(match self.execute_batch(sql)? {
            BatchQueryResult::Batch(b) => {
                StreamQueryResult::Stream(BatchStream::chunked(b, parallel::MORSEL_ROWS))
            }
            BatchQueryResult::Command(tag) => StreamQueryResult::Command(tag),
        })
    }

    /// Execute one SQL statement, columnar result.
    pub fn execute_batch(&mut self, sql: &str) -> Result<BatchQueryResult, DbError> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Stmt::Select(s) => {
                let batch = run_select_batch(self, &s)?;
                Ok(BatchQueryResult::Batch(batch))
            }
            Stmt::CreateTableAs { name, query, temp } => {
                if self.table_exists(&name) {
                    return Err(DbError::duplicate_table(&name));
                }
                let batch = run_select_batch(self, &query)?;
                let count = batch.rows();
                self.store(name, batch, temp)?;
                Ok(BatchQueryResult::Command(format!("SELECT {count}")))
            }
            Stmt::CreateTable { name, columns, temp } => {
                if self.table_exists(&name) {
                    return Err(DbError::duplicate_table(&name));
                }
                let schema: Vec<Column> =
                    columns.into_iter().map(|(n, t)| Column::new(n, t)).collect();
                self.store(name, Batch::empty(schema), temp)?;
                Ok(BatchQueryResult::Command("CREATE TABLE".into()))
            }
            Stmt::Insert { table, columns, rows } => {
                let meta = self
                    .get_table(&table)
                    .ok_or_else(|| DbError::undefined_table(&table))?
                    .0;
                // Map provided columns to table positions.
                let positions: Vec<usize> = match &columns {
                    None => (0..meta.len()).collect(),
                    Some(cols) => cols
                        .iter()
                        .map(|c| {
                            meta.iter()
                                .position(|m| m.name == *c)
                                .ok_or_else(|| DbError::undefined_column(c.clone()))
                        })
                        .collect::<Result<_, _>>()?,
                };
                let mut new_rows = Vec::with_capacity(rows.len());
                for r in &rows {
                    if r.len() != positions.len() {
                        return Err(DbError::exec("INSERT value count mismatch"));
                    }
                    let mut row = vec![Cell::Null; meta.len()];
                    for (expr, &pos) in r.iter().zip(&positions) {
                        let v = eval(expr, &[], &[])?;
                        row[pos] = cast(&v, meta[pos].ty)?;
                    }
                    new_rows.push(row);
                }
                let count = new_rows.len();
                self.append_rows(&table, new_rows)?;
                Ok(BatchQueryResult::Command(format!("INSERT 0 {count}")))
            }
            Stmt::DropTable { name, if_exists } => {
                let mut existed = self.temps.remove(&name).is_some();
                if !existed {
                    let mut guard = self.db.tables.write();
                    if guard.contains_key(&name) {
                        let lsn = self.db.log(|| WalRecord::DropTable { name: name.clone() })?;
                        guard.remove(&name);
                        self.db.stats.write().remove(&name);
                        drop(guard);
                        self.db.finish_commit(lsn)?;
                        existed = true;
                    }
                }
                if !existed && !if_exists {
                    return Err(DbError::undefined_table(&name));
                }
                Ok(BatchQueryResult::Command("DROP TABLE".into()))
            }
            Stmt::NoOp(tag) => Ok(BatchQueryResult::Command(tag)),
        }
    }

    fn table_exists(&self, name: &str) -> bool {
        self.temps.contains_key(name) || self.db.tables.read().contains_key(name)
    }

    /// Store a table. Temp tables are session-local and never logged;
    /// global tables commit through the WAL when durable.
    fn store(&mut self, name: String, batch: Batch, temp: bool) -> Result<(), DbError> {
        if temp {
            self.temps.insert(name, StoredTable::new(batch));
            return Ok(());
        }
        let stats = TableStats::from_batch(&batch);
        let mut guard = self.db.tables.write();
        // CREATE TABLE AS logs the *computed* result, so replay never
        // re-runs the query; a plain empty CREATE logs just the schema.
        let lsn = self.db.log(|| {
            if batch.rows() == 0 {
                WalRecord::CreateTable { name: name.clone(), schema: batch.schema.clone() }
            } else {
                WalRecord::PutTable { name: name.clone(), batch: batch.clone() }
            }
        })?;
        self.db.stats.write().insert(name.clone(), stats);
        guard.insert(name, StoredTable::new(batch));
        drop(guard);
        self.db.finish_commit(lsn)
    }

    fn append_rows(&mut self, name: &str, rows: Vec<Vec<Cell>>) -> Result<(), DbError> {
        if let Some(t) = self.temps.get_mut(name) {
            let add = Batch::from_rows(Rows { columns: t.batch.schema.clone(), data: rows });
            Arc::make_mut(&mut t.batch).append(add);
            return Ok(());
        }
        let mut guard = self.db.tables.write();
        let Some(t) = guard.get_mut(name) else {
            return Err(DbError::undefined_table(name));
        };
        let add = Batch::from_rows(Rows { columns: t.batch.schema.clone(), data: rows });
        let lsn = self
            .db
            .log(|| WalRecord::InsertBatch { table: name.to_string(), batch: add.clone() })?;
        self.db
            .stats
            .write()
            .entry(name.to_string())
            .or_insert_with(|| TableStats::empty(&add.schema))
            .observe_batch(&add);
        Arc::make_mut(&mut t.batch).append(add);
        drop(guard);
        self.db.finish_commit(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(r: QueryResult) -> Rows {
        match r {
            QueryResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn setup() -> Session {
        let db = Db::new();
        let mut s = db.session();
        s.execute(
            "CREATE TABLE trades (ordcol bigint, \"Symbol\" varchar, \"Price\" double precision, \"Size\" bigint)",
        )
        .unwrap();
        s.execute(concat!(
            "INSERT INTO trades VALUES ",
            "(1, 'GOOG', 100.0, 10), (2, 'IBM', 50.0, 20), (3, 'GOOG', 101.5, 30)"
        ))
        .unwrap();
        s
    }

    #[test]
    fn create_insert_select() {
        let mut s = setup();
        let r = rows(s.execute("SELECT \"Price\" FROM trades WHERE \"Symbol\" = 'GOOG'").unwrap());
        assert_eq!(r.len(), 2);
        assert_eq!(r.data[0][0], Cell::Float(100.0));
    }

    #[test]
    fn select_star_and_order() {
        let mut s = setup();
        let r = rows(s.execute("SELECT * FROM trades ORDER BY \"Price\" DESC").unwrap());
        assert_eq!(r.columns.len(), 4);
        assert_eq!(r.data[0][2], Cell::Float(101.5));
    }

    #[test]
    fn aggregates() {
        let mut s = setup();
        let r = rows(s.execute("SELECT max(\"Price\") AS mx, count(*) AS n FROM trades").unwrap());
        assert_eq!(r.data[0], vec![Cell::Float(101.5), Cell::Int(3)]);
    }

    #[test]
    fn group_by_with_order() {
        let mut s = setup();
        let r = rows(
            s.execute(
                "SELECT \"Symbol\", max(\"Price\") AS mx FROM trades GROUP BY \"Symbol\" ORDER BY \"Symbol\" ASC",
            )
            .unwrap(),
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.data[0][0], Cell::Text("GOOG".into()));
        assert_eq!(r.data[0][1], Cell::Float(101.5));
        assert_eq!(r.data[1][0], Cell::Text("IBM".into()));
    }

    #[test]
    fn having_filters_groups() {
        let mut s = setup();
        let r = rows(
            s.execute(
                "SELECT \"Symbol\" FROM trades GROUP BY \"Symbol\" HAVING count(*) > 1",
            )
            .unwrap(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.data[0][0], Cell::Text("GOOG".into()));
    }

    #[test]
    fn three_valued_where_drops_null_comparisons() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE t (x bigint)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (NULL)").unwrap();
        // x = x is unknown for NULL → row dropped under plain equality.
        let r = rows(s.execute("SELECT x FROM t WHERE x = x").unwrap());
        assert_eq!(r.len(), 1);
        // IS NOT DISTINCT FROM keeps it — the Hyper-Q rewrite target.
        let r = rows(s.execute("SELECT x FROM t WHERE x IS NOT DISTINCT FROM x").unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn create_temp_table_as_is_session_scoped() {
        let mut s = setup();
        s.execute("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT \"Price\" FROM trades")
            .unwrap();
        let r = rows(s.execute("SELECT count(*) FROM \"HQ_TEMP_1\"").unwrap());
        assert_eq!(r.data[0][0], Cell::Int(3));
        // Another session must not see it.
        let mut s2 = s.db().session();
        assert!(s2.execute("SELECT count(*) FROM \"HQ_TEMP_1\"").is_err());
    }

    #[test]
    fn duplicate_table_errors() {
        let mut s = setup();
        let err = s.execute("CREATE TABLE trades (x bigint)").unwrap_err();
        assert_eq!(err.code, "42P07");
    }

    #[test]
    fn missing_table_errors() {
        let mut s = setup();
        let err = s.execute("SELECT 1 FROM nonexistent").unwrap_err();
        assert_eq!(err.code, "42P01");
    }

    #[test]
    fn drop_table() {
        let mut s = setup();
        s.execute("DROP TABLE trades").unwrap();
        assert!(s.execute("SELECT 1 FROM trades").is_err());
        assert!(s.execute("DROP TABLE trades").is_err());
        s.execute("DROP TABLE IF EXISTS trades").unwrap();
    }

    #[test]
    fn window_function_lead() {
        let mut s = setup();
        let r = rows(
            s.execute(concat!(
                "SELECT \"Symbol\", lead(\"Price\") OVER (PARTITION BY \"Symbol\" ORDER BY ordcol ASC) AS nxt ",
                "FROM trades ORDER BY ordcol ASC"
            ))
            .unwrap(),
        );
        // GOOG@1 → next GOOG price 101.5; IBM@2 → NULL; GOOG@3 → NULL.
        assert_eq!(r.data[0][1], Cell::Float(101.5));
        assert_eq!(r.data[1][1], Cell::Null);
        assert_eq!(r.data[2][1], Cell::Null);
    }

    #[test]
    fn row_number_window() {
        let mut s = setup();
        let r = rows(
            s.execute(
                "SELECT row_number() OVER (ORDER BY \"Price\" DESC) AS rn, \"Symbol\" FROM trades ORDER BY rn ASC",
            )
            .unwrap(),
        );
        assert_eq!(r.data[0], vec![Cell::Int(1), Cell::Text("GOOG".into())]);
        assert_eq!(r.data[2], vec![Cell::Int(3), Cell::Text("IBM".into())]);
    }

    #[test]
    fn left_join_with_derived_tables() {
        let mut s = setup();
        s.execute("CREATE TABLE quotes (\"Symbol\" varchar, \"Bid\" double precision)").unwrap();
        s.execute("INSERT INTO quotes VALUES ('GOOG', 99.5)").unwrap();
        let r = rows(
            s.execute(concat!(
                "SELECT l.\"Symbol\", r.\"Bid\" FROM (SELECT \"Symbol\" FROM trades) AS l ",
                "LEFT OUTER JOIN (SELECT \"Symbol\" AS s2, \"Bid\" FROM quotes) AS r ",
                "ON l.\"Symbol\" = r.s2 ORDER BY l.\"Symbol\" ASC"
            ))
            .unwrap(),
        );
        assert_eq!(r.len(), 3);
        // GOOG rows matched, IBM row null-extended.
        assert_eq!(r.data[0][1], Cell::Float(99.5));
        assert_eq!(r.data[2][1], Cell::Null);
    }

    #[test]
    fn union_all_and_values() {
        let mut s = setup();
        let r = rows(
            s.execute("SELECT 1 AS x UNION ALL SELECT 2 UNION ALL SELECT 2").unwrap(),
        );
        assert_eq!(r.len(), 3);
        let r = rows(
            s.execute("SELECT c1 FROM (VALUES (1, 'a'), (2, 'b')) AS v(c1, c2) ORDER BY c1 DESC")
                .unwrap(),
        );
        assert_eq!(r.data[0][0], Cell::Int(2));
    }

    #[test]
    fn limit_offset() {
        let mut s = setup();
        let r = rows(s.execute("SELECT ordcol FROM trades ORDER BY ordcol ASC LIMIT 1 OFFSET 1").unwrap());
        assert_eq!(r.len(), 1);
        assert_eq!(r.data[0][0], Cell::Int(2));
    }

    #[test]
    fn toolbox_aggregates_first_last_median() {
        let mut s = setup();
        let r = rows(
            s.execute(
                "SELECT hq_first(\"Price\") AS f, hq_last(\"Price\") AS l, median(\"Size\") AS m FROM trades",
            )
            .unwrap(),
        );
        assert_eq!(r.data[0][0], Cell::Float(100.0));
        assert_eq!(r.data[0][1], Cell::Float(101.5));
        assert_eq!(r.data[0][2], Cell::Float(20.0));
    }

    #[test]
    fn select_without_from() {
        let db = Db::new();
        let mut s = db.session();
        let r = rows(s.execute("SELECT 1 + 2 AS three, 'x' AS s").unwrap());
        assert_eq!(r.data[0], vec![Cell::Int(3), Cell::Text("x".into())]);
    }

    #[test]
    fn noop_statements_acknowledged() {
        let db = Db::new();
        let mut s = db.session();
        assert_eq!(s.execute("BEGIN").unwrap(), QueryResult::Command("BEGIN".into()));
        assert_eq!(
            s.execute("SET client_encoding = 'UTF8'").unwrap(),
            QueryResult::Command("SET".into())
        );
    }

    #[test]
    fn insert_casts_to_declared_types() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE t (d date, x bigint)").unwrap();
        s.execute("INSERT INTO t VALUES ('2016-06-26', 1.0)").unwrap();
        let r = rows(s.execute("SELECT d, x FROM t").unwrap());
        assert_eq!(r.data[0][0], Cell::Date(6021));
        assert_eq!(r.data[0][1], Cell::Int(1));
    }

    #[test]
    fn hash_join_null_key_semantics() {
        // Plain = never matches NULL keys; IS NOT DISTINCT FROM does.
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE l (k varchar)").unwrap();
        s.execute("CREATE TABLE r (k2 varchar, v bigint)").unwrap();
        s.execute("INSERT INTO l VALUES ('a'), (NULL)").unwrap();
        s.execute("INSERT INTO r VALUES ('a', 1), (NULL, 2)").unwrap();
        let eq = rows(
            s.execute(concat!(
                "SELECT v FROM (SELECT k FROM l) AS a ",
                "INNER JOIN (SELECT k2, v FROM r) AS b ON k = k2"
            ))
            .unwrap(),
        );
        assert_eq!(eq.len(), 1, "= must not match NULLs");
        let indf = rows(
            s.execute(concat!(
                "SELECT v FROM (SELECT k FROM l) AS a ",
                "INNER JOIN (SELECT k2, v FROM r) AS b ON k IS NOT DISTINCT FROM k2"
            ))
            .unwrap(),
        );
        assert_eq!(indf.len(), 2, "INDF matches NULL to NULL");
    }

    #[test]
    fn left_hash_join_null_extends() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE l (k bigint)").unwrap();
        s.execute("CREATE TABLE r (k2 bigint, v bigint)").unwrap();
        s.execute("INSERT INTO l VALUES (1), (2)").unwrap();
        s.execute("INSERT INTO r VALUES (1, 10)").unwrap();
        let out = rows(
            s.execute(concat!(
                "SELECT v FROM (SELECT k FROM l) AS a ",
                "LEFT OUTER JOIN (SELECT k2, v FROM r) AS b ON k = k2 ORDER BY k ASC"
            ))
            .unwrap(),
        );
        assert_eq!(out.data[0][0], Cell::Int(10));
        assert_eq!(out.data[1][0], Cell::Null);
    }

    #[test]
    fn except_and_intersect() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE t (x bigint)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (2), (3), (3)").unwrap();
        let r = rows(s.execute("SELECT x FROM t EXCEPT SELECT 3").unwrap());
        assert_eq!(r.len(), 2);
        let r = rows(s.execute("SELECT x FROM t INTERSECT SELECT 3").unwrap());
        assert_eq!(r.len(), 1, "INTERSECT dedups");
    }

    #[test]
    fn order_by_output_alias() {
        let mut s = setup();
        let r = rows(
            s.execute("SELECT \"Price\" * 2 AS dbl FROM trades ORDER BY dbl DESC").unwrap(),
        );
        assert_eq!(r.data[0][0], Cell::Float(203.0));
    }

    #[test]
    fn not_in_list() {
        let mut s = setup();
        let r = rows(
            s.execute("SELECT \"Symbol\" FROM trades WHERE \"Symbol\" NOT IN ('IBM')").unwrap(),
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn in_subquery_execution() {
        let mut s = setup();
        s.execute("CREATE TABLE u (s varchar)").unwrap();
        s.execute("INSERT INTO u VALUES ('GOOG')").unwrap();
        let r = rows(
            s.execute("SELECT \"Price\" FROM trades WHERE \"Symbol\" IN (SELECT s FROM u)")
                .unwrap(),
        );
        assert_eq!(r.len(), 2);
        // NOT IN with subquery.
        let r = rows(
            s.execute("SELECT \"Price\" FROM trades WHERE \"Symbol\" NOT IN (SELECT s FROM u)")
                .unwrap(),
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rank_window_with_ties() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE t (g varchar, v bigint)").unwrap();
        s.execute("INSERT INTO t VALUES ('a', 1), ('a', 1), ('a', 2)").unwrap();
        let r = rows(
            s.execute("SELECT rank() OVER (ORDER BY v ASC) AS rk FROM t ORDER BY rk ASC").unwrap(),
        );
        assert_eq!(
            r.data.iter().map(|row| row[0].clone()).collect::<Vec<_>>(),
            vec![Cell::Int(1), Cell::Int(1), Cell::Int(3)],
            "ties share rank, next rank skips"
        );
    }

    #[test]
    fn count_distinct() {
        let mut s = setup();
        let r = rows(s.execute("SELECT count(DISTINCT \"Symbol\") AS n FROM trades").unwrap());
        assert_eq!(r.data[0][0], Cell::Int(2));
    }

    #[test]
    fn durable_db_recovers_sql_mutations_across_reopen() {
        let dir = std::env::temp_dir().join(format!("hq-engine-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = durability::Options::new(&dir);
        {
            let db = Db::open(&opts).unwrap();
            assert!(db.is_durable());
            let mut s = db.session();
            s.execute("CREATE TABLE t (x bigint, s varchar)").unwrap();
            s.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
            s.execute("CREATE TABLE dropped (y bigint)").unwrap();
            s.execute("DROP TABLE dropped").unwrap();
            s.execute("CREATE TABLE derived AS SELECT x * 2 AS d FROM t").unwrap();
            // Temp tables must NOT be logged.
            s.execute("CREATE TEMPORARY TABLE tmp AS SELECT x FROM t").unwrap();
        }
        let db = Db::open(&opts).unwrap();
        assert_eq!(db.table_names(), vec!["derived".to_string(), "t".to_string()]);
        let mut s = db.session();
        let r = match s.execute("SELECT x, s FROM t ORDER BY x ASC").unwrap() {
            QueryResult::Rows(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(r.data[0], vec![Cell::Int(1), Cell::Text("a".into())]);
        assert_eq!(r.data[1], vec![Cell::Int(2), Cell::Null]);
        let r = rows(s.execute("SELECT d FROM derived ORDER BY d ASC").unwrap());
        assert_eq!(r.data[1][0], Cell::Int(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_track_mutations_and_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("hq-engine-stats-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = durability::Options::new(&dir);
        {
            let db = Db::open(&opts).unwrap();
            let mut s = db.session();
            s.execute("CREATE TABLE t (x bigint, s varchar)").unwrap();
            s.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL), (2, 'b')").unwrap();
            let st = db.table_stats("t").unwrap();
            assert_eq!(st.rows, 3);
            assert_eq!(st.col("s").unwrap().nulls, 1);
            assert_eq!(st.distinct("x"), Some(2));
            // Temp tables are session-local and never tracked.
            s.execute("CREATE TEMPORARY TABLE tmp AS SELECT x FROM t").unwrap();
            assert!(db.table_stats("tmp").is_none());
        }
        // Recovery (pure WAL replay here) restores identical stats.
        let db = Db::open(&opts).unwrap();
        let st = db.table_stats("t").unwrap();
        assert_eq!(st.rows, 3);
        assert_eq!(st.distinct("x"), Some(2));
        assert_eq!(st, TableStats::from_batch(&db.get_table_snapshot("t").unwrap().batch));
        let mut s = db.session();
        s.execute("DROP TABLE t").unwrap();
        assert!(db.table_stats("t").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_is_cheap_and_isolated_from_later_writes() {
        let mut s = setup();
        let snap = s.db().get_table_snapshot("trades").unwrap();
        // The snapshot shares storage with the live table...
        assert!(Arc::ptr_eq(&snap.batch, &s.db().tables.read()["trades"].batch));
        // ...until a mutation copies-on-write underneath it.
        s.execute("INSERT INTO trades VALUES (4, 'MSFT', 70.0, 5)").unwrap();
        assert_eq!(snap.batch.rows(), 3, "snapshot unaffected by later insert");
        assert_eq!(s.db().get_table_snapshot("trades").unwrap().batch.rows(), 4);
    }

    #[test]
    fn case_expression_in_projection() {
        let mut s = setup();
        let r = rows(
            s.execute(concat!(
                "SELECT CASE WHEN \"Symbol\" IS NOT DISTINCT FROM 'IBM' THEN 0.0 ELSE \"Price\" END AS p ",
                "FROM trades ORDER BY ordcol ASC"
            ))
            .unwrap(),
        );
        assert_eq!(r.data[1][0], Cell::Float(0.0));
        assert_eq!(r.data[0][0], Cell::Float(100.0));
    }
}
