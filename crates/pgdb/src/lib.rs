//! # pgdb — a PostgreSQL-compatible in-memory analytical database
//!
//! The paper's deployments run Hyper-Q against Greenplum, a PG-compatible
//! MPP system. Greenplum is not embeddable here, so this crate provides
//! the substrate: an in-memory, columnar-result SQL engine that
//!
//! * parses the PG dialect Hyper-Q's serializer emits (derived tables,
//!   window functions, `IS NOT DISTINCT FROM`, `::` casts, `CREATE
//!   TEMPORARY TABLE ... AS`, `VALUES` lists) — [`sql`];
//! * executes it with SQL semantics — notably **three-valued logic**,
//!   bag semantics and explicit `ORDER BY`, the exact mismatches Hyper-Q
//!   must bridge — [`exec`];
//! * serves the catalog through `information_schema.columns` /
//!   `pg_catalog.pg_tables` virtual tables so Hyper-Q's metadata
//!   interface can bind names the way the paper describes (§3.2.3);
//! * ships the backend "toolbox" functions (paper §5) Hyper-Q's
//!   translations rely on: `hq_first`, `hq_last`, `median`, `div`,
//!   `least`/`greatest`;
//! * speaks PG v3 over TCP — [`server`] — including clear-text and MD5
//!   authentication.
//!
//! Per-session temporary tables provide the physical-materialization
//! target of paper §4.3.

pub mod catalog;
pub mod engine;
pub mod exec;
pub mod server;
pub mod sql;
pub mod types;

pub use colstore::{Batch, BatchStream, ColumnVec, TableStats};
pub use durability::{DurError, FsyncPolicy, Options as DurabilityOptions};
pub use engine::{BatchQueryResult, Db, DbError, QueryResult, Session, StreamQueryResult};
pub use exec::parallel::{default_exec_threads, MORSEL_ROWS};
pub use types::{Cell, Column, PgType, Rows};
