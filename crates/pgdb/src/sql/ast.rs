//! SQL abstract syntax tree.

use crate::types::{Cell, PgType};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A query.
    Select(SelectStmt),
    /// `CREATE [TEMPORARY] TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, PgType)>,
        /// Session-scoped when true.
        temp: bool,
    },
    /// `CREATE [TEMPORARY] TABLE name AS <select>`.
    CreateTableAs {
        /// Table name.
        name: String,
        /// Defining query.
        query: SelectStmt,
        /// Session-scoped when true.
        temp: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Literal rows.
        rows: Vec<Vec<SqlExpr>>,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the error when missing.
        if_exists: bool,
    },
    /// `BEGIN` / `COMMIT` / `SET ...` — accepted and ignored (clients
    /// send these during start-up).
    NoOp(String),
}

/// Set operations between selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION ALL`
    UnionAll,
    /// `UNION` (dedup)
    Union,
    /// `EXCEPT`
    Except,
    /// `INTERSECT`
    Intersect,
}

/// One item in a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Output alias.
        alias: Option<String>,
    },
}

/// A SELECT statement (one block plus optional chained set ops).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM clause; `None` for `SELECT <exprs>`.
    pub from: Option<FromItem>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate.
    pub having: Option<SqlExpr>,
    /// ORDER BY keys with `desc` flags.
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// OFFSET.
    pub offset: Option<u64>,
    /// Chained set operation, if any.
    pub set_op: Option<(SetOp, Box<SelectStmt>)>,
}

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// `INNER JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `CROSS JOIN`
    Cross,
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// Base table (possibly schema-qualified, e.g.
    /// `information_schema.columns`).
    Table {
        /// Table name (with schema prefix when given).
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// Derived table.
    Subquery {
        /// Inner query.
        query: Box<SelectStmt>,
        /// Mandatory alias.
        alias: String,
    },
    /// `VALUES (...), (...) AS alias(c1, c2)`.
    Values {
        /// Literal rows.
        rows: Vec<Vec<SqlExpr>>,
        /// Alias.
        alias: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// A join of two items.
    Join {
        /// Join type.
        kind: JoinType,
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// ON condition (`None` for cross joins).
        on: Option<SqlExpr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `IS NOT DISTINCT FROM`
    IsNotDistinctFrom,
    /// `IS DISTINCT FROM`
    IsDistinctFrom,
    /// `||`
    Concat,
    /// `LIKE`
    Like,
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, optionally qualified by table alias.
    Column {
        /// Qualifier (`t` in `t.c`).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Cell),
    /// `*` inside `count(*)`.
    Star,
    /// Binary operation.
    Binary {
        /// Operator.
        op: SqlBinOp,
        /// Left operand.
        lhs: Box<SqlExpr>,
        /// Right operand.
        rhs: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `-expr`.
    Neg(Box<SqlExpr>),
    /// Function call (scalar or aggregate — resolved by the executor).
    Func {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
        /// `DISTINCT` inside an aggregate call.
        distinct: bool,
    },
    /// Window function: `func(args) OVER (PARTITION BY ... ORDER BY ...)`.
    WindowFunc {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
        /// PARTITION BY expressions.
        partition_by: Vec<SqlExpr>,
        /// ORDER BY keys with `desc` flags.
        order_by: Vec<(SqlExpr, bool)>,
    },
    /// `CASE WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// Branches.
        branches: Vec<(SqlExpr, SqlExpr)>,
        /// ELSE.
        else_result: Option<Box<SqlExpr>>,
    },
    /// `expr::type` / `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Target type.
        ty: PgType,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Needle.
        expr: Box<SqlExpr>,
        /// Haystack.
        list: Vec<SqlExpr>,
        /// Negated?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<SqlExpr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — uncorrelated subquery, resolved to
    /// a literal list before row evaluation.
    InSubquery {
        /// Needle.
        expr: Box<SqlExpr>,
        /// Subquery; its first output column is the haystack.
        query: Box<SelectStmt>,
        /// Negated?
        negated: bool,
    },
}

impl SqlExpr {
    /// Does this expression contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Func { name, .. } if is_aggregate_name(name) => true,
            SqlExpr::Func { args, .. } => args.iter().any(|a| a.contains_aggregate()),
            SqlExpr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            SqlExpr::Not(e) | SqlExpr::Neg(e) => e.contains_aggregate(),
            SqlExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_result.as_ref().map(|e| e.contains_aggregate()).unwrap_or(false)
            }
            SqlExpr::Cast { expr, .. } => expr.contains_aggregate(),
            SqlExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            SqlExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            SqlExpr::InSubquery { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Does this expression contain a window function?
    pub fn contains_window(&self) -> bool {
        match self {
            SqlExpr::WindowFunc { .. } => true,
            SqlExpr::Func { args, .. } => args.iter().any(|a| a.contains_window()),
            SqlExpr::Binary { lhs, rhs, .. } => lhs.contains_window() || rhs.contains_window(),
            SqlExpr::Not(e) | SqlExpr::Neg(e) => e.contains_window(),
            SqlExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| c.contains_window() || r.contains_window())
                    || else_result.as_ref().map(|e| e.contains_window()).unwrap_or(false)
            }
            SqlExpr::Cast { expr, .. } => expr.contains_window(),
            SqlExpr::InList { expr, list, .. } => {
                expr.contains_window() || list.iter().any(|e| e.contains_window())
            }
            SqlExpr::IsNull { expr, .. } => expr.contains_window(),
            SqlExpr::InSubquery { expr, .. } => expr.contains_window(),
            _ => false,
        }
    }
}

/// Aggregate function names known to the engine (including the Hyper-Q
/// toolbox: `hq_first`, `hq_last`, `median`).
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name,
        "count"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "stddev_samp"
            | "stddev"
            | "var_samp"
            | "variance"
            | "median"
            | "hq_first"
            | "hq_last"
            | "bool_and"
            | "bool_or"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = SqlExpr::Func {
            name: "max".into(),
            args: vec![SqlExpr::Column { qualifier: None, name: "p".into() }],
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        let wrapped = SqlExpr::Binary {
            op: SqlBinOp::Add,
            lhs: Box::new(agg),
            rhs: Box::new(SqlExpr::Literal(Cell::Int(1))),
        };
        assert!(wrapped.contains_aggregate());
        let plain = SqlExpr::Func {
            name: "abs".into(),
            args: vec![SqlExpr::Literal(Cell::Int(-1))],
            distinct: false,
        };
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn toolbox_aggregates_recognised() {
        assert!(is_aggregate_name("hq_first"));
        assert!(is_aggregate_name("hq_last"));
        assert!(is_aggregate_name("median"));
        assert!(!is_aggregate_name("coalesce"));
    }
}
