//! Recursive-descent SQL parser with standard operator precedence
//! (OR < AND < NOT < comparison < additive < multiplicative < unary <
//! `::` cast < primary).

use crate::engine::DbError;
use crate::sql::ast::*;
use crate::sql::lexer::{lex, SqlTok};
use crate::types::{Cell, PgType};

/// Parse a single SQL statement.
pub fn parse_statement(src: &str) -> Result<Stmt, DbError> {
    let tokens = lex(src)?;
    let mut p = P { t: tokens, i: 0 };
    let stmt = p.statement()?;
    // Optional trailing semicolon.
    if p.peek_sym(";") {
        p.i += 1;
    }
    if p.i != p.t.len() {
        return Err(DbError::syntax(format!("trailing tokens: {:?}", &p.t[p.i..])));
    }
    Ok(stmt)
}

struct P {
    t: Vec<SqlTok>,
    i: usize,
}

impl P {
    fn peek(&self) -> Option<&SqlTok> {
        self.t.get(self.i)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn peek_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Some(SqlTok::Sym(x)) if *x == s)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek_sym(s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::syntax(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), DbError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(DbError::syntax(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.peek().cloned() {
            Some(SqlTok::Ident(s)) => {
                self.i += 1;
                Ok(s)
            }
            Some(SqlTok::QuotedIdent(s)) => {
                self.i += 1;
                Ok(s)
            }
            other => Err(DbError::syntax(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, DbError> {
        if self.peek_kw("select") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.eat_kw("create") {
            let temp = self.eat_kw("temporary") || self.eat_kw("temp");
            self.expect_kw("table")?;
            let name = self.ident()?;
            if self.eat_kw("as") {
                let query = self.select()?;
                return Ok(Stmt::CreateTableAs { name, query, temp });
            }
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.type_name()?;
                columns.push((col, ty));
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Stmt::CreateTable { name, columns, temp });
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            let columns = if self.eat_sym("(") {
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                Some(cols)
            } else {
                None
            };
            self.expect_kw("values")?;
            let rows = self.values_rows()?;
            return Ok(Stmt::Insert { table, columns, rows });
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        for noop in ["begin", "commit", "rollback", "set"] {
            if self.peek_kw(noop) {
                // Swallow the rest of the statement.
                let tag = noop.to_uppercase();
                while self.peek().is_some() && !self.peek_sym(";") {
                    self.i += 1;
                }
                return Ok(Stmt::NoOp(tag));
            }
        }
        Err(DbError::syntax(format!("unrecognized statement start: {:?}", self.peek())))
    }

    fn values_rows(&mut self) -> Result<Vec<Vec<SqlExpr>>, DbError> {
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(rows)
    }

    fn select(&mut self) -> Result<SelectStmt, DbError> {
        self.expect_kw("select")?;
        let mut stmt = SelectStmt::default();

        // Select list.
        loop {
            if self.eat_sym("*") {
                stmt.items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    match self.peek() {
                        Some(SqlTok::Ident(s))
                            if !is_reserved(s) =>
                        {
                            let a = s.clone();
                            self.i += 1;
                            Some(a)
                        }
                        Some(SqlTok::QuotedIdent(s)) => {
                            let a = s.clone();
                            self.i += 1;
                            Some(a)
                        }
                        _ => None,
                    }
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }

        if self.eat_kw("from") {
            stmt.from = Some(self.parse_from_item()?);
        }
        if self.eat_kw("where") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            stmt.having = Some(self.expr()?);
        }
        // Set operations bind before ORDER BY/LIMIT of the whole chain;
        // we attach ORDER BY to the left block, which matches how the
        // serializer emits (it wraps when it needs the other reading).
        if self.peek_kw("union") || self.peek_kw("except") || self.peek_kw("intersect") {
            let op = if self.eat_kw("union") {
                if self.eat_kw("all") {
                    SetOp::UnionAll
                } else {
                    SetOp::Union
                }
            } else if self.eat_kw("except") {
                SetOp::Except
            } else {
                self.expect_kw("intersect")?;
                SetOp::Intersect
            };
            let rhs = self.select()?;
            stmt.set_op = Some((op, Box::new(rhs)));
            return Ok(stmt);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                stmt.order_by.push((e, desc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            match self.peek().cloned() {
                Some(SqlTok::Int(n)) if n >= 0 => {
                    self.i += 1;
                    stmt.limit = Some(n as u64);
                }
                other => return Err(DbError::syntax(format!("bad LIMIT: {other:?}"))),
            }
        }
        if self.eat_kw("offset") {
            match self.peek().cloned() {
                Some(SqlTok::Int(n)) if n >= 0 => {
                    self.i += 1;
                    stmt.offset = Some(n as u64);
                }
                other => return Err(DbError::syntax(format!("bad OFFSET: {other:?}"))),
            }
        }
        Ok(stmt)
    }

    fn parse_from_item(&mut self) -> Result<FromItem, DbError> {
        let mut left = self.parse_from_primary()?;
        loop {
            let kind = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                JoinType::Inner
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinType::Left
            } else if self.eat_kw("cross") {
                self.expect_kw("join")?;
                JoinType::Cross
            } else if self.eat_kw("join") {
                JoinType::Inner
            } else {
                break;
            };
            let right = self.parse_from_primary()?;
            let on = if kind == JoinType::Cross {
                None
            } else {
                self.expect_kw("on")?;
                Some(self.expr()?)
            };
            left = FromItem::Join {
                kind,
                left: Box::new(left),
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn parse_from_primary(&mut self) -> Result<FromItem, DbError> {
        if self.eat_sym("(") {
            if self.peek_kw("values") {
                self.i += 1;
                let rows = self.values_rows()?;
                self.expect_sym(")")?;
                self.eat_kw("as");
                let alias = self.ident()?;
                let mut columns = Vec::new();
                if self.eat_sym("(") {
                    loop {
                        columns.push(self.ident()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                }
                return Ok(FromItem::Values { rows, alias, columns });
            }
            let query = self.select()?;
            self.expect_sym(")")?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(FromItem::Subquery { query: Box::new(query), alias });
        }
        let mut name = self.ident()?;
        // Schema-qualified name (information_schema.columns).
        if self.eat_sym(".") {
            let rest = self.ident()?;
            name = format!("{name}.{rest}");
        }
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(SqlTok::Ident(s)) if !is_reserved(s) => {
                    let a = s.clone();
                    self.i += 1;
                    Some(a)
                }
                Some(SqlTok::QuotedIdent(s)) => {
                    let a = s.clone();
                    self.i += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(FromItem::Table { name, alias })
    }

    fn type_name(&mut self) -> Result<PgType, DbError> {
        let first = self.ident()?;
        let full = if first == "double" && self.peek_kw("precision") {
            self.i += 1;
            "double precision".to_string()
        } else if first == "character" && self.peek_kw("varying") {
            self.i += 1;
            "varchar".to_string()
        } else {
            first
        };
        PgType::parse(&full).ok_or_else(|| DbError::syntax(format!("unknown type {full}")))
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<SqlExpr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Binary { op: SqlBinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Binary { op: SqlBinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlExpr, DbError> {
        let lhs = self.additive()?;
        // IS [NOT] NULL / IS [NOT] DISTINCT FROM.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            if self.eat_kw("null") {
                return Ok(SqlExpr::IsNull { expr: Box::new(lhs), negated });
            }
            self.expect_kw("distinct")?;
            self.expect_kw("from")?;
            let rhs = self.additive()?;
            let op = if negated { SqlBinOp::IsNotDistinctFrom } else { SqlBinOp::IsDistinctFrom };
            return Ok(SqlExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        // [NOT] IN.
        let negated_in = if self.peek_kw("not") {
            // Lookahead for IN.
            if matches!(self.t.get(self.i + 1), Some(t) if t.is_kw("in")) {
                self.i += 2;
                true
            } else {
                false
            }
        } else if self.eat_kw("in") {
            false
        } else {
            // Comparison operators and LIKE.
            if self.eat_kw("like") {
                let rhs = self.additive()?;
                return Ok(SqlExpr::Binary {
                    op: SqlBinOp::Like,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                });
            }
            for (sym, op) in [
                ("=", SqlBinOp::Eq),
                ("<>", SqlBinOp::Neq),
                ("<=", SqlBinOp::Le),
                (">=", SqlBinOp::Ge),
                ("<", SqlBinOp::Lt),
                (">", SqlBinOp::Gt),
            ] {
                if self.eat_sym(sym) {
                    let rhs = self.additive()?;
                    return Ok(SqlExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
                }
            }
            return Ok(lhs);
        };
        // IN list.
        if !negated_in {
            // `in` already consumed above when negated_in is false via eat_kw.
        }
        self.expect_sym("(")?;
        // Subquery form: IN (SELECT ...).
        if self.peek_kw("select") {
            let query = self.select()?;
            self.expect_sym(")")?;
            return Ok(SqlExpr::InSubquery {
                expr: Box::new(lhs),
                query: Box::new(query),
                negated: negated_in,
            });
        }
        let mut list = Vec::new();
        loop {
            list.push(self.expr()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(SqlExpr::InList { expr: Box::new(lhs), list, negated: negated_in })
    }

    fn additive(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                SqlBinOp::Add
            } else if self.eat_sym("-") {
                SqlBinOp::Sub
            } else if self.eat_sym("||") {
                SqlBinOp::Concat
            } else {
                break;
            };
            let rhs = self.multiplicative()?;
            lhs = SqlExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_sym("*") {
                SqlBinOp::Mul
            } else if self.eat_sym("/") {
                SqlBinOp::Div
            } else if self.eat_sym("%") {
                SqlBinOp::Mod
            } else {
                break;
            };
            let rhs = self.unary()?;
            lhs = SqlExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_sym("-") {
            let inner = self.unary()?;
            return Ok(SqlExpr::Neg(Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<SqlExpr, DbError> {
        let mut e = self.primary()?;
        while self.eat_sym("::") {
            let ty = self.type_name()?;
            e = SqlExpr::Cast { expr: Box::new(e), ty };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<SqlExpr, DbError> {
        match self.peek().cloned() {
            Some(SqlTok::Int(n)) => {
                self.i += 1;
                Ok(SqlExpr::Literal(Cell::Int(n)))
            }
            Some(SqlTok::Float(f)) => {
                self.i += 1;
                Ok(SqlExpr::Literal(Cell::Float(f)))
            }
            Some(SqlTok::Str(s)) => {
                self.i += 1;
                Ok(SqlExpr::Literal(Cell::Text(s)))
            }
            Some(SqlTok::Sym("(")) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(SqlTok::Sym("*")) => {
                self.i += 1;
                Ok(SqlExpr::Star)
            }
            Some(SqlTok::QuotedIdent(name)) => {
                self.i += 1;
                // Qualified reference "t"."c".
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(SqlExpr::Column { qualifier: Some(name), name: col });
                }
                Ok(SqlExpr::Column { qualifier: None, name })
            }
            Some(SqlTok::Ident(word)) => {
                // Keyword literals.
                if word == "true" {
                    self.i += 1;
                    return Ok(SqlExpr::Literal(Cell::Bool(true)));
                }
                if word == "false" {
                    self.i += 1;
                    return Ok(SqlExpr::Literal(Cell::Bool(false)));
                }
                if word == "null" {
                    self.i += 1;
                    return Ok(SqlExpr::Literal(Cell::Null));
                }
                // Typed literals: DATE '...' TIME '...' TIMESTAMP '...'.
                if matches!(word.as_str(), "date" | "time" | "timestamp") {
                    if let Some(SqlTok::Str(text)) = self.t.get(self.i + 1).cloned() {
                        self.i += 2;
                        let ty = PgType::parse(&word).unwrap();
                        let cell = Cell::from_wire_text(&text, ty).ok_or_else(|| {
                            DbError::syntax(format!("bad {word} literal '{text}'"))
                        })?;
                        return Ok(SqlExpr::Literal(cell));
                    }
                }
                if word == "case" {
                    self.i += 1;
                    return self.case_expr();
                }
                if word == "cast" {
                    self.i += 1;
                    self.expect_sym("(")?;
                    let e = self.expr()?;
                    self.expect_kw("as")?;
                    let ty = self.type_name()?;
                    self.expect_sym(")")?;
                    return Ok(SqlExpr::Cast { expr: Box::new(e), ty });
                }
                if is_reserved(&word) {
                    return Err(DbError::syntax(format!(
                        "unexpected keyword {word} in expression"
                    )));
                }
                self.i += 1;
                // Function call?
                if self.peek_sym("(") {
                    self.i += 1;
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.peek_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    // OVER clause → window function.
                    if self.eat_kw("over") {
                        self.expect_sym("(")?;
                        let mut partition_by = Vec::new();
                        let mut order_by = Vec::new();
                        if self.eat_kw("partition") {
                            self.expect_kw("by")?;
                            loop {
                                partition_by.push(self.expr()?);
                                if !self.eat_sym(",") {
                                    break;
                                }
                            }
                        }
                        if self.eat_kw("order") {
                            self.expect_kw("by")?;
                            loop {
                                let e = self.expr()?;
                                let desc = if self.eat_kw("desc") {
                                    true
                                } else {
                                    self.eat_kw("asc");
                                    false
                                };
                                order_by.push((e, desc));
                                if !self.eat_sym(",") {
                                    break;
                                }
                            }
                        }
                        self.expect_sym(")")?;
                        return Ok(SqlExpr::WindowFunc { name: word, args, partition_by, order_by });
                    }
                    return Ok(SqlExpr::Func { name: word, args, distinct });
                }
                // Qualified column t.c.
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(SqlExpr::Column { qualifier: Some(word), name: col });
                }
                Ok(SqlExpr::Column { qualifier: None, name: word })
            }
            other => Err(DbError::syntax(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut branches = Vec::new();
        let mut else_result = None;
        loop {
            if self.eat_kw("when") {
                let cond = self.expr()?;
                self.expect_kw("then")?;
                let result = self.expr()?;
                branches.push((cond, result));
            } else if self.eat_kw("else") {
                else_result = Some(Box::new(self.expr()?));
            } else {
                self.expect_kw("end")?;
                break;
            }
        }
        Ok(SqlExpr::Case { branches, else_result })
    }
}

/// Words that cannot be implicit aliases.
fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "offset"
            | "union"
            | "except"
            | "intersect"
            | "inner"
            | "left"
            | "right"
            | "cross"
            | "join"
            | "on"
            | "as"
            | "and"
            | "or"
            | "not"
            | "in"
            | "is"
            | "like"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "asc"
            | "desc"
            | "values"
            | "all"
            | "distinct"
            | "by"
            | "over"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse_statement(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}")) {
            Stmt::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn basic_select() {
        let s = sel(r#"SELECT "Price" FROM "trades""#);
        assert_eq!(s.items.len(), 1);
        assert!(matches!(&s.from, Some(FromItem::Table { name, .. }) if name == "trades"));
    }

    #[test]
    fn where_and_order_limit() {
        let s = sel(r#"SELECT "a" FROM "t" WHERE "a" > 1 ORDER BY "a" DESC LIMIT 5 OFFSET 2"#);
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1, "desc");
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn is_not_distinct_from() {
        let s = sel(r#"SELECT 1 FROM "t" WHERE "s" IS NOT DISTINCT FROM 'GOOG'::varchar"#);
        match s.where_clause.unwrap() {
            SqlExpr::Binary { op: SqlBinOp::IsNotDistinctFrom, rhs, .. } => {
                assert!(matches!(*rhs, SqlExpr::Cast { .. }));
            }
            other => panic!("expected INDF, got {other:?}"),
        }
    }

    #[test]
    fn group_by_and_aggregates() {
        let s = sel(r#"SELECT "Symbol", max("Price") AS "mx" FROM "t" GROUP BY "Symbol""#);
        assert_eq!(s.group_by.len(), 1);
        match &s.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert!(expr.contains_aggregate());
                assert_eq!(alias.as_deref(), Some("mx"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let s = sel(r#"SELECT count(*) FROM "t""#);
        match &s.items[0] {
            SelectItem::Expr { expr: SqlExpr::Func { name, args, .. }, .. } => {
                assert_eq!(name, "count");
                assert_eq!(args, &vec![SqlExpr::Star]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn window_function() {
        let s = sel(
            r#"SELECT lead("Time") OVER (PARTITION BY "Symbol" ORDER BY "Time" ASC) AS "nxt" FROM "q""#,
        );
        match &s.items[0] {
            SelectItem::Expr { expr: SqlExpr::WindowFunc { name, partition_by, order_by, .. }, .. } => {
                assert_eq!(name, "lead");
                assert_eq!(partition_by.len(), 1);
                assert_eq!(order_by.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn joins() {
        let s = sel(
            r#"SELECT * FROM (SELECT "a" FROM "t") AS l LEFT OUTER JOIN (SELECT "b" FROM "u") AS r ON "a" = "b""#,
        );
        match s.from.unwrap() {
            FromItem::Join { kind: JoinType::Left, on, .. } => assert!(on.is_some()),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn values_in_from() {
        let s = sel(r#"SELECT "c1" FROM (VALUES (1, 'a'), (2, 'b')) AS v("c1", "c2")"#);
        match s.from.unwrap() {
            FromItem::Values { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns, vec!["c1".to_string(), "c2".into()]);
            }
            other => panic!("expected values, got {other:?}"),
        }
    }

    #[test]
    fn union_all_chain() {
        let s = sel(r#"SELECT 1 UNION ALL SELECT 2"#);
        assert!(matches!(s.set_op, Some((SetOp::UnionAll, _))));
    }

    #[test]
    fn create_temp_table_as() {
        let stmt = parse_statement(
            r#"CREATE TEMPORARY TABLE "HQ_TEMP_1" AS SELECT "ordcol", "Price" FROM "trades""#,
        )
        .unwrap();
        match stmt {
            Stmt::CreateTableAs { name, temp, .. } => {
                assert_eq!(name, "HQ_TEMP_1");
                assert!(temp);
            }
            other => panic!("expected CTAS, got {other:?}"),
        }
    }

    #[test]
    fn create_table_and_insert() {
        let stmt = parse_statement(
            "CREATE TABLE t (a bigint, b varchar, c double precision, d date)",
        )
        .unwrap();
        match stmt {
            Stmt::CreateTable { columns, temp, .. } => {
                assert!(!temp);
                assert_eq!(columns[2].1, PgType::Float8);
                assert_eq!(columns[3].1, PgType::Date);
            }
            other => panic!("expected create, got {other:?}"),
        }
        let ins = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match ins {
            Stmt::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap().len(), 2);
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn typed_literals() {
        let s = sel("SELECT DATE '2016-06-26', TIME '09:30:00', TIMESTAMP '2016-06-26 09:30:00'");
        assert_eq!(s.items.len(), 3);
        match &s.items[0] {
            SelectItem::Expr { expr: SqlExpr::Literal(Cell::Date(d)), .. } => assert_eq!(*d, 6021),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_list_and_not_in() {
        let s = sel(r#"SELECT 1 FROM "t" WHERE "s" IN ('a', 'b') AND "x" NOT IN (1, 2)"#);
        let w = s.where_clause.unwrap();
        match w {
            SqlExpr::Binary { op: SqlBinOp::And, lhs, rhs } => {
                assert!(matches!(*lhs, SqlExpr::InList { negated: false, .. }));
                assert!(matches!(*rhs, SqlExpr::InList { negated: true, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_when() {
        let s = sel(r#"SELECT CASE WHEN "a" > 0 THEN 1 ELSE 0 END FROM "t""#);
        match &s.items[0] {
            SelectItem::Expr { expr: SqlExpr::Case { branches, else_result }, .. } => {
                assert_eq!(branches.len(), 1);
                assert!(else_result.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 parses as 1 + (2*3).
        let s = sel("SELECT 1 + 2 * 3");
        match &s.items[0] {
            SelectItem::Expr { expr: SqlExpr::Binary { op: SqlBinOp::Add, rhs, .. }, .. } => {
                assert!(matches!(**rhs, SqlExpr::Binary { op: SqlBinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // AND binds tighter than OR.
        let s = sel(r#"SELECT 1 FROM "t" WHERE "a" = 1 OR "b" = 2 AND "c" = 3"#);
        match s.where_clause.unwrap() {
            SqlExpr::Binary { op: SqlBinOp::Or, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn information_schema_names_parse() {
        let s = sel("SELECT column_name FROM information_schema.columns WHERE table_name = 'trades'");
        assert!(matches!(
            s.from,
            Some(FromItem::Table { ref name, .. }) if name == "information_schema.columns"
        ));
    }

    #[test]
    fn noop_statements() {
        assert!(matches!(parse_statement("BEGIN").unwrap(), Stmt::NoOp(_)));
        assert!(matches!(parse_statement("SET client_encoding = 'UTF8'").unwrap(), Stmt::NoOp(_)));
    }

    #[test]
    fn drop_table_if_exists() {
        match parse_statement("DROP TABLE IF EXISTS t").unwrap() {
            Stmt::DropTable { if_exists, .. } => assert!(if_exists),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_are_clean() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT 1 extra garbage ,").is_err());
    }
}
