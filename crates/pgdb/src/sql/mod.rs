//! SQL front end: lexer, AST and parser for the PG dialect Hyper-Q emits.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod render;

pub use ast::{FromItem, JoinType, SelectItem, SelectStmt, SetOp, SqlExpr, Stmt};
pub use parser::parse_statement;
pub use render::{render_expr, render_select, render_stmt};
