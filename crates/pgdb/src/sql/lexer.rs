//! SQL tokenizer.
//!
//! Unquoted identifiers fold to lowercase (PostgreSQL behaviour);
//! double-quoted identifiers preserve case — which is why Hyper-Q's
//! serializer quotes everything. Strings use single quotes with `''`
//! escaping.

use crate::engine::DbError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlTok {
    /// Identifier or keyword (already lowercased if unquoted).
    Ident(String),
    /// Double-quoted identifier (case preserved).
    QuotedIdent(String),
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Any operator/punctuation symbol.
    Sym(&'static str),
}

impl SqlTok {
    /// Is this the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, SqlTok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn lex(src: &str) -> Result<Vec<SqlTok>, DbError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::syntax("unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(SqlTok::Str(s));
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::syntax("unterminated quoted identifier")),
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(SqlTok::QuotedIdent(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // Exponent.
                if i < bytes.len() && (bytes[i] | 32) == b'e' {
                    let save = i;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    if i < bytes.len() && bytes[i].is_ascii_digit() {
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save;
                    }
                }
                let text = &src[start..i];
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    out.push(SqlTok::Float(text.parse().map_err(|_| {
                        DbError::syntax(format!("bad numeric literal {text}"))
                    })?));
                } else {
                    out.push(SqlTok::Int(text.parse().map_err(|_| {
                        DbError::syntax(format!("bad numeric literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(SqlTok::Ident(src[start..i].to_ascii_lowercase()));
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                out.push(SqlTok::Sym("::"));
                i += 2;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(SqlTok::Sym("<>"));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(SqlTok::Sym("<="));
                    i += 2;
                } else {
                    out.push(SqlTok::Sym("<"));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(SqlTok::Sym(">="));
                    i += 2;
                } else {
                    out.push(SqlTok::Sym(">"));
                    i += 1;
                }
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(SqlTok::Sym("<>"));
                i += 2;
            }
            b'|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(SqlTok::Sym("||"));
                i += 2;
            }
            b'=' => {
                out.push(SqlTok::Sym("="));
                i += 1;
            }
            b'+' => {
                out.push(SqlTok::Sym("+"));
                i += 1;
            }
            b'-' => {
                out.push(SqlTok::Sym("-"));
                i += 1;
            }
            b'*' => {
                out.push(SqlTok::Sym("*"));
                i += 1;
            }
            b'/' => {
                out.push(SqlTok::Sym("/"));
                i += 1;
            }
            b'%' => {
                out.push(SqlTok::Sym("%"));
                i += 1;
            }
            b'(' => {
                out.push(SqlTok::Sym("("));
                i += 1;
            }
            b')' => {
                out.push(SqlTok::Sym(")"));
                i += 1;
            }
            b',' => {
                out.push(SqlTok::Sym(","));
                i += 1;
            }
            b';' => {
                out.push(SqlTok::Sym(";"));
                i += 1;
            }
            b'.' => {
                out.push(SqlTok::Sym("."));
                i += 1;
            }
            other => {
                return Err(DbError::syntax(format!(
                    "unexpected character {:?} in SQL",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_fold_to_lowercase() {
        let toks = lex("SELECT Price FROM trades").unwrap();
        assert_eq!(toks[0], SqlTok::Ident("select".into()));
        assert_eq!(toks[1], SqlTok::Ident("price".into()), "unquoted folds");
    }

    #[test]
    fn quoted_identifiers_preserve_case() {
        let toks = lex(r#"SELECT "Price" FROM "trades""#).unwrap();
        assert_eq!(toks[1], SqlTok::QuotedIdent("Price".into()));
    }

    #[test]
    fn string_escaping() {
        let toks = lex("'O''Neil'").unwrap();
        assert_eq!(toks[0], SqlTok::Str("O'Neil".into()));
    }

    #[test]
    fn numbers() {
        let toks = lex("42 1.5 2e3").unwrap();
        assert_eq!(toks[0], SqlTok::Int(42));
        assert_eq!(toks[1], SqlTok::Float(1.5));
        assert_eq!(toks[2], SqlTok::Float(2000.0));
    }

    #[test]
    fn operators() {
        let toks = lex("a <> b :: <= >= != ||").unwrap();
        assert!(toks.contains(&SqlTok::Sym("<>")));
        assert!(toks.contains(&SqlTok::Sym("::")));
        assert!(toks.contains(&SqlTok::Sym("<=")));
        assert!(toks.contains(&SqlTok::Sym(">=")));
        assert!(toks.contains(&SqlTok::Sym("||")));
        // != normalizes to <>
        assert_eq!(toks.iter().filter(|t| **t == SqlTok::Sym("<>")).count(), 2);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n+ 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
