//! AST → SQL rendering: turn a parsed [`Stmt`] back into the PG dialect
//! the parser accepts.
//!
//! The shard router rewrites statements per shard (appending hidden
//! ordinal columns, decomposing aggregates into partials) and needs to
//! re-serialize the rewritten trees. Rendering is the exact inverse of
//! parsing: every identifier is double-quoted, every literal round-trips
//! through the same textual forms the lexer produces, so
//! `parse_statement(render_stmt(&s))` reproduces `s` for every shape
//! the parser can emit.

use super::ast::{FromItem, JoinType, SelectItem, SelectStmt, SetOp, SqlBinOp, SqlExpr, Stmt};
use crate::types::{Cell, PgType};
use std::fmt::Write;

/// Double-quote an identifier, escaping embedded quotes.
pub fn ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Render a literal cell as a SQL literal expression.
pub fn literal(c: &Cell) -> String {
    match c {
        Cell::Null => "NULL".to_string(),
        Cell::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Cell::Int(i) => i.to_string(),
        Cell::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point / exponent, so the value
                // re-parses as a float (never silently an int).
                format!("{f:?}")
            } else {
                // NaN / ±inf have no literal form; round-trip via text.
                format!("'{f}'::double precision")
            }
        }
        Cell::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Cell::Date(_) | Cell::Time(_) | Cell::Timestamp(_) => {
            let ty = c.natural_type().sql_name();
            match c.to_wire_text() {
                Some(t) => format!("'{t}'::{ty}"),
                None => "NULL".to_string(),
            }
        }
    }
}

fn bin_op(op: SqlBinOp) -> &'static str {
    match op {
        SqlBinOp::Add => "+",
        SqlBinOp::Sub => "-",
        SqlBinOp::Mul => "*",
        SqlBinOp::Div => "/",
        SqlBinOp::Mod => "%",
        SqlBinOp::Eq => "=",
        SqlBinOp::Neq => "<>",
        SqlBinOp::Lt => "<",
        SqlBinOp::Le => "<=",
        SqlBinOp::Gt => ">",
        SqlBinOp::Ge => ">=",
        SqlBinOp::And => "AND",
        SqlBinOp::Or => "OR",
        SqlBinOp::IsNotDistinctFrom => "IS NOT DISTINCT FROM",
        SqlBinOp::IsDistinctFrom => "IS DISTINCT FROM",
        SqlBinOp::Concat => "||",
        SqlBinOp::Like => "LIKE",
    }
}

/// Render an expression. Every compound sub-expression is parenthesized,
/// so operator precedence never has to be reconstructed.
pub fn render_expr(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{}.{}", ident(q), ident(name)),
            None => ident(name),
        },
        SqlExpr::Literal(c) => literal(c),
        SqlExpr::Star => "*".to_string(),
        SqlExpr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", render_expr(lhs), bin_op(*op), render_expr(rhs))
        }
        SqlExpr::Not(inner) => format!("(NOT {})", render_expr(inner)),
        SqlExpr::Neg(inner) => format!("(- {})", render_expr(inner)),
        SqlExpr::Func { name, args, distinct } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!(
                "{}({}{})",
                name,
                if *distinct { "DISTINCT " } else { "" },
                args.join(", ")
            )
        }
        SqlExpr::WindowFunc { name, args, partition_by, order_by } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            let mut over = String::new();
            if !partition_by.is_empty() {
                let keys: Vec<String> = partition_by.iter().map(render_expr).collect();
                write!(over, "PARTITION BY {}", keys.join(", ")).unwrap();
            }
            if !order_by.is_empty() {
                if !over.is_empty() {
                    over.push(' ');
                }
                write!(over, "ORDER BY {}", render_order(order_by)).unwrap();
            }
            format!("{}({}) OVER ({})", name, args.join(", "), over)
        }
        SqlExpr::Case { branches, else_result } => {
            let mut s = String::from("CASE");
            for (cond, res) in branches {
                write!(s, " WHEN {} THEN {}", render_expr(cond), render_expr(res)).unwrap();
            }
            if let Some(e) = else_result {
                write!(s, " ELSE {}", render_expr(e)).unwrap();
            }
            s.push_str(" END");
            s
        }
        SqlExpr::Cast { expr, ty } => {
            format!("({}::{})", render_expr(expr), type_name(*ty))
        }
        SqlExpr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(render_expr).collect();
            format!(
                "({} {}IN ({}))",
                render_expr(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        SqlExpr::IsNull { expr, negated } => {
            format!(
                "({} IS {}NULL)",
                render_expr(expr),
                if *negated { "NOT " } else { "" }
            )
        }
        SqlExpr::InSubquery { expr, query, negated } => {
            format!(
                "({} {}IN ({}))",
                render_expr(expr),
                if *negated { "NOT " } else { "" },
                render_select(query)
            )
        }
    }
}

/// SQL spelling for a type in DDL / cast position.
pub fn type_name(ty: PgType) -> &'static str {
    ty.sql_name()
}

fn render_order(order_by: &[(SqlExpr, bool)]) -> String {
    order_by
        .iter()
        .map(|(e, desc)| {
            format!("{}{}", render_expr(e), if *desc { " DESC" } else { " ASC" })
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_from(f: &FromItem) -> String {
    match f {
        FromItem::Table { name, alias } => match alias {
            // Schema-qualified names (`information_schema.columns`) are
            // stored dotted and must not be quoted as one identifier.
            Some(a) => format!("{} AS {}", render_table_name(name), ident(a)),
            None => render_table_name(name),
        },
        FromItem::Subquery { query, alias } => {
            format!("({}) AS {}", render_select(query), ident(alias))
        }
        FromItem::Values { rows, alias, columns } => {
            let rows: Vec<String> = rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(render_expr).collect();
                    format!("({})", cells.join(", "))
                })
                .collect();
            let cols: Vec<String> = columns.iter().map(|c| ident(c)).collect();
            format!("(VALUES {}) AS {} ({})", rows.join(", "), ident(alias), cols.join(", "))
        }
        FromItem::Join { kind, left, right, on } => {
            let kw = match kind {
                JoinType::Inner => "INNER JOIN",
                JoinType::Left => "LEFT JOIN",
                JoinType::Cross => "CROSS JOIN",
            };
            let mut s = format!("{} {} {}", render_from(left), kw, render_from(right));
            if let Some(cond) = on {
                write!(s, " ON {}", render_expr(cond)).unwrap();
            }
            s
        }
    }
}

fn render_table_name(name: &str) -> String {
    match name.split_once('.') {
        Some((schema, table)) => format!("{}.{}", ident(schema), ident(table)),
        None => ident(name),
    }
}

/// Render a full SELECT (including chained set operations).
pub fn render_select(s: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    let items: Vec<String> = s
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {}", render_expr(expr), ident(a)),
                None => render_expr(expr),
            },
        })
        .collect();
    out.push_str(&items.join(", "));
    if let Some(f) = &s.from {
        write!(out, " FROM {}", render_from(f)).unwrap();
    }
    if let Some(w) = &s.where_clause {
        write!(out, " WHERE {}", render_expr(w)).unwrap();
    }
    if !s.group_by.is_empty() {
        let keys: Vec<String> = s.group_by.iter().map(render_expr).collect();
        write!(out, " GROUP BY {}", keys.join(", ")).unwrap();
    }
    if let Some(h) = &s.having {
        write!(out, " HAVING {}", render_expr(h)).unwrap();
    }
    if let Some((op, rhs)) = &s.set_op {
        let kw = match op {
            SetOp::UnionAll => "UNION ALL",
            SetOp::Union => "UNION",
            SetOp::Except => "EXCEPT",
            SetOp::Intersect => "INTERSECT",
        };
        write!(out, " {} {}", kw, render_select(rhs)).unwrap();
    }
    if !s.order_by.is_empty() {
        write!(out, " ORDER BY {}", render_order(&s.order_by)).unwrap();
    }
    if let Some(l) = s.limit {
        write!(out, " LIMIT {l}").unwrap();
    }
    if let Some(o) = s.offset {
        write!(out, " OFFSET {o}").unwrap();
    }
    out
}

/// Render any statement.
pub fn render_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Select(s) => render_select(s),
        Stmt::CreateTable { name, columns, temp } => {
            let cols: Vec<String> = columns
                .iter()
                .map(|(n, ty)| format!("{} {}", ident(n), type_name(*ty)))
                .collect();
            format!(
                "CREATE {}TABLE {} ({})",
                if *temp { "TEMPORARY " } else { "" },
                ident(name),
                cols.join(", ")
            )
        }
        Stmt::CreateTableAs { name, query, temp } => format!(
            "CREATE {}TABLE {} AS {}",
            if *temp { "TEMPORARY " } else { "" },
            ident(name),
            render_select(query)
        ),
        Stmt::Insert { table, columns, rows } => {
            let cols = match columns {
                Some(cs) => {
                    let cs: Vec<String> = cs.iter().map(|c| ident(c)).collect();
                    format!(" ({})", cs.join(", "))
                }
                None => String::new(),
            };
            let rows: Vec<String> = rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(render_expr).collect();
                    format!("({})", cells.join(", "))
                })
                .collect();
            format!("INSERT INTO {}{} VALUES {}", ident(table), cols, rows.join(", "))
        }
        Stmt::DropTable { name, if_exists } => format!(
            "DROP TABLE {}{}",
            if *if_exists { "IF EXISTS " } else { "" },
            ident(name)
        ),
        Stmt::NoOp(raw) => raw.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_statement;

    /// Round-trip: parse → render → parse must be a fixed point.
    fn round_trip(sql: &str) {
        let first = parse_statement(sql).expect(sql);
        let rendered = render_stmt(&first);
        let second = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(first, second, "round-trip diverged for {sql:?} → {rendered:?}");
    }

    #[test]
    fn statements_round_trip() {
        for sql in [
            "SELECT 1",
            "SELECT * FROM t",
            r#"SELECT "a" AS "x", b + 1 FROM "t" WHERE a > 1.5 AND s = 'it''s' ORDER BY a DESC, b LIMIT 3 OFFSET 1"#,
            "SELECT count(*), sum(x), avg(x) FROM t GROUP BY k HAVING count(*) > 2",
            "SELECT x FROM t WHERE x IN (1, 2, 3) AND y IS NOT NULL",
            "SELECT x FROM t WHERE x NOT IN (SELECT y FROM u)",
            "SELECT a, row_number() OVER (PARTITION BY k ORDER BY a DESC) FROM t",
            "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
            "SELECT a::double precision, CAST(b AS bigint) FROM t",
            "SELECT t.a, u.b FROM t INNER JOIN u ON t.k = u.k",
            "SELECT a FROM (SELECT a FROM t) AS s LEFT JOIN (SELECT b FROM u) AS r ON s.a = r.b",
            "SELECT * FROM (VALUES (1, 'a'), (2, 'b')) AS v (n, s)",
            "SELECT a FROM t UNION ALL SELECT b FROM u",
            "SELECT column_name FROM information_schema.columns WHERE table_name = 't'",
            "SELECT sum(DISTINCT x) FROM t",
            "SELECT x FROM t WHERE s LIKE 'a%' OR s IS DISTINCT FROM 'b'",
            "SELECT -x, NOT b, least(a, b) FROM t",
            "CREATE TABLE t (a bigint, b varchar, c double precision, d date)",
            "CREATE TEMPORARY TABLE tmp AS SELECT a FROM t",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y')",
            "INSERT INTO t VALUES (1.25, TRUE)",
            "DROP TABLE IF EXISTS t",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn literal_rendering_round_trips_floats() {
        // A float literal must re-parse as a float even when integral.
        assert_eq!(literal(&Cell::Float(3.0)), "3.0");
        assert_eq!(literal(&Cell::Float(0.1)), "0.1");
        assert!(literal(&Cell::Float(f64::NAN)).contains("NaN"));
    }

    #[test]
    fn quoted_identifiers_escape() {
        assert_eq!(ident(r#"we"ird"#), r#""we""ird""#);
    }
}
