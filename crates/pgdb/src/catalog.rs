//! Virtual catalog tables.
//!
//! Hyper-Q's binder resolves table variables "by looking up associated
//! metadata in the metadata store ... executing a query against PG
//! catalog" (paper §3.2.3). We expose the two catalog relations the MDI
//! uses: `information_schema.columns` and `pg_catalog.pg_tables` (also
//! reachable as bare `pg_tables`).

use crate::engine::Session;
use crate::types::{Cell, Column, PgType};

/// Resolve a virtual catalog table by name, materializing it from the
/// session's current table set.
pub fn virtual_table(session: &Session, name: &str) -> Option<(Vec<Column>, Vec<Vec<Cell>>)> {
    match name {
        "information_schema.columns" => {
            let columns = vec![
                Column::new("table_name", PgType::Varchar),
                Column::new("column_name", PgType::Varchar),
                Column::new("data_type", PgType::Varchar),
                Column::new("ordinal_position", PgType::Int8),
            ];
            let mut rows = Vec::new();
            for (tname, cols) in session.all_tables_meta() {
                for (i, c) in cols.iter().enumerate() {
                    rows.push(vec![
                        Cell::Text(tname.clone()),
                        Cell::Text(c.name.clone()),
                        Cell::Text(c.ty.sql_name().to_string()),
                        Cell::Int(i as i64 + 1),
                    ]);
                }
            }
            Some((columns, rows))
        }
        "pg_catalog.pg_tables" | "pg_tables" => {
            let columns = vec![
                Column::new("schemaname", PgType::Varchar),
                Column::new("tablename", PgType::Varchar),
            ];
            let rows = session
                .all_tables_meta()
                .into_iter()
                .map(|(tname, _)| {
                    vec![Cell::Text("public".to_string()), Cell::Text(tname)]
                })
                .collect();
            Some((columns, rows))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{Db, QueryResult};
    use crate::types::Cell;

    #[test]
    fn information_schema_lists_columns() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE trades (ordcol bigint, \"Price\" double precision)").unwrap();
        let r = match s
            .execute(concat!(
                "SELECT column_name, data_type FROM information_schema.columns ",
                "WHERE table_name = 'trades' ORDER BY ordinal_position ASC"
            ))
            .unwrap()
        {
            QueryResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.data[0][0], Cell::Text("ordcol".into()));
        assert_eq!(r.data[0][1], Cell::Text("bigint".into()));
        assert_eq!(r.data[1][0], Cell::Text("Price".into()));
        assert_eq!(r.data[1][1], Cell::Text("double precision".into()));
    }

    #[test]
    fn pg_tables_lists_tables_including_temps() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE a (x bigint)").unwrap();
        s.execute("CREATE TEMPORARY TABLE b (y bigint)").unwrap();
        let r = match s.execute("SELECT tablename FROM pg_tables ORDER BY tablename ASC").unwrap() {
            QueryResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        };
        let names: Vec<String> = r
            .data
            .iter()
            .map(|row| match &row[0] {
                Cell::Text(s) => s.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn catalog_queries_compose_with_filters() {
        let db = Db::new();
        let mut s = db.session();
        s.execute("CREATE TABLE wide (c0 bigint, c1 bigint, c2 bigint)").unwrap();
        let r = match s
            .execute("SELECT count(*) FROM information_schema.columns WHERE table_name = 'wide'")
            .unwrap()
        {
            QueryResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        };
        assert_eq!(r.data[0][0], Cell::Int(3));
    }
}
