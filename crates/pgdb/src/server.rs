//! PG v3 TCP server.
//!
//! One thread per connection, simple-query protocol: start-up →
//! authentication (trust, clear text or MD5 — the mechanisms paper §4.2
//! lists) → `ReadyForQuery` → a loop of `Query` messages answered with
//! `RowDescription` + streamed `DataRow`s + `CommandComplete` (the
//! row-oriented stream of Figure 5).
//!
//! Robustness: the accept loop survives transient `accept()` errors, a
//! configurable connection cap turns overload into a clean
//! protocol-level rejection (SQLSTATE 53300, like PostgreSQL), and
//! malformed frames are answered with an `08P01` protocol-violation
//! error instead of killing the process or hanging the peer.

use crate::engine::{Db, StreamQueryResult};
use crate::types::PgType;
use bytes::BytesMut;
use pgwire::codec::{encode_backend, MessageReader};
use pgwire::messages::{AuthRequest, BackendMessage, FieldDesc, FrontendMessage, TransactionStatus, TypeOid};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Authentication policy.
#[derive(Debug, Clone, Default)]
pub enum AuthMode {
    /// Accept everyone.
    #[default]
    Trust,
    /// Request a clear-text password and check it against the map.
    Cleartext(HashMap<String, String>),
    /// Request an MD5-hashed password.
    Md5(HashMap<String, String>),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Authentication policy.
    pub auth: AuthMode,
    /// Concurrent-connection ceiling; connection attempts beyond it are
    /// rejected with SQLSTATE 53300 ("too many connections") after the
    /// start-up packet, mirroring PostgreSQL.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { auth: AuthMode::default(), max_connections: 64 }
    }
}

/// A running PG v3 server.
pub struct PgServer {
    /// Bound address (useful with port 0).
    pub addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl PgServer {
    /// Start serving `db` on `bind_addr` (e.g. `127.0.0.1:0`).
    pub fn start(db: Db, bind_addr: &str, config: ServerConfig) -> std::io::Result<PgServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let cfg = Arc::new(config);
        let active = Arc::new(AtomicUsize::new(0));
        let handle = std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let db = db.clone();
                    let cfg = Arc::clone(&cfg);
                    let active = Arc::clone(&active);
                    let slot = active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        if slot >= cfg.max_connections {
                            let _ = reject_connection(stream);
                        } else {
                            let _ = serve_connection(stream, db, &cfg);
                        }
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                // A failed accept() of one connection (peer reset the
                // socket while it sat in the backlog, fd pressure, a
                // signal) must not take the listener down with it.
                Err(e) if transient_accept_error(&e) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(_) => break,
            }
        });
        Ok(PgServer { addr, handle: Some(handle) })
    }

    /// Detach the accept thread (it ends when the process does).
    pub fn detach(mut self) {
        self.handle.take();
    }
}

fn queries_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: std::sync::OnceLock<Arc<obs::Counter>> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| obs::global_registry().counter("pgdb_queries_total"))
}

fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

fn send(stream: &mut TcpStream, msg: &BackendMessage) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    encode_backend(msg, &mut buf);
    stream.write_all(&buf)
}

/// Admin path (observability): `\metrics` or `SHOW metrics` answers with
/// the process-wide Prometheus dump as a one-column result set, without
/// entering the SQL engine. Operators can point any PG client at the
/// server to scrape it.
fn is_metrics_query(sql: &str) -> bool {
    sql == "\\metrics" || sql.eq_ignore_ascii_case("show metrics")
}

fn send_metrics_dump(stream: &mut TcpStream) -> std::io::Result<()> {
    let dump = obs::global_registry().render_prometheus();
    send(
        stream,
        &BackendMessage::RowDescription(vec![FieldDesc {
            name: "metrics".into(),
            type_oid: TypeOid::Text,
        }]),
    )?;
    let count = dump.lines().count();
    for line in dump.lines() {
        send(stream, &BackendMessage::DataRow(vec![Some(line.to_string())]))?;
    }
    send(stream, &BackendMessage::CommandComplete(format!("SELECT {count}")))
}

fn pg_type_oid(ty: PgType) -> TypeOid {
    match ty {
        PgType::Bool => TypeOid::Bool,
        PgType::Int2 => TypeOid::Int2,
        PgType::Int4 => TypeOid::Int4,
        PgType::Int8 => TypeOid::Int8,
        PgType::Float4 => TypeOid::Float4,
        PgType::Float8 => TypeOid::Float8,
        PgType::Varchar => TypeOid::Varchar,
        PgType::Text => TypeOid::Text,
        PgType::Date => TypeOid::Date,
        PgType::Time => TypeOid::Time,
        PgType::Timestamp => TypeOid::Timestamp,
    }
}

/// Pull the next frontend message off the wire. `Ok(None)` means the
/// conversation is over: the peer closed cleanly, or it sent a malformed
/// frame and has already been answered with an `08P01` error.
fn recv_frontend(
    stream: &mut TcpStream,
    reader: &mut MessageReader,
    chunk: &mut [u8],
) -> std::io::Result<Option<FrontendMessage>> {
    loop {
        match reader.next_frontend() {
            Ok(Some(m)) => return Ok(Some(m)),
            Ok(None) => {}
            Err(e) => {
                let _ = send(
                    stream,
                    &BackendMessage::ErrorResponse {
                        severity: "FATAL".into(),
                        code: "08P01".into(),
                        message: e.to_string(),
                    },
                );
                return Ok(None);
            }
        }
        let n = stream.read(chunk)?;
        if n == 0 {
            return Ok(None);
        }
        reader.feed(&chunk[..n]);
    }
}

/// Over the cap: accept the start-up packet, answer with 53300, close.
fn reject_connection(mut stream: TcpStream) -> std::io::Result<()> {
    let mut reader = MessageReader::new(true);
    let mut chunk = [0u8; 8192];
    // Wait for the start-up packet so the client sees a protocol-level
    // error rather than a connection reset mid-handshake.
    while recv_frontend(&mut stream, &mut reader, &mut chunk)?
        .map(|m| !matches!(m, FrontendMessage::Startup { .. }))
        .unwrap_or(false)
    {}
    send(
        &mut stream,
        &BackendMessage::ErrorResponse {
            severity: "FATAL".into(),
            code: "53300".into(),
            message: "too many connections".into(),
        },
    )
}

fn serve_connection(
    mut stream: TcpStream,
    db: Db,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    let mut reader = MessageReader::new(true);
    let mut chunk = [0u8; 8192];

    // Start-up.
    let params = loop {
        match recv_frontend(&mut stream, &mut reader, &mut chunk)? {
            Some(FrontendMessage::Startup { params }) => break params,
            Some(_) => {}
            None => return Ok(()),
        }
    };
    let user = params
        .iter()
        .find(|(k, _)| k == "user")
        .map(|(_, v)| v.clone())
        .unwrap_or_default();

    // Authentication.
    let authenticated = match &cfg.auth {
        AuthMode::Trust => true,
        AuthMode::Cleartext(creds) => {
            send(&mut stream, &BackendMessage::Authentication(AuthRequest::CleartextPassword))?;
            match read_password(&mut stream, &mut reader, &mut chunk)? {
                Some(pw) => creds.get(&user).map(|expect| *expect == pw).unwrap_or(false),
                None => return Ok(()),
            }
        }
        AuthMode::Md5(creds) => {
            let salt = [0x13, 0x37, 0xBE, 0xEF];
            send(&mut stream, &BackendMessage::Authentication(AuthRequest::Md5Password { salt }))?;
            match read_password(&mut stream, &mut reader, &mut chunk)? {
                Some(pw) => creds
                    .get(&user)
                    .map(|expect| pgwire::md5_password(&user, expect, salt) == pw)
                    .unwrap_or(false),
                None => return Ok(()),
            }
        }
    };
    if !authenticated {
        send(
            &mut stream,
            &BackendMessage::ErrorResponse {
                severity: "FATAL".into(),
                code: "28P01".into(),
                message: format!("password authentication failed for user \"{user}\""),
            },
        )?;
        return Ok(());
    }
    send(&mut stream, &BackendMessage::Authentication(AuthRequest::Ok))?;
    send(
        &mut stream,
        &BackendMessage::ParameterStatus { name: "server_version".into(), value: "9.2-hyperq-pgdb".into() },
    )?;
    // Advertise durability so gateways know committed effects survive a
    // crash (they adjust their non-idempotent replay policy on it).
    send(
        &mut stream,
        &BackendMessage::ParameterStatus {
            name: "hyperq_durability".into(),
            value: if db.is_durable() { "on" } else { "off" }.into(),
        },
    )?;
    send(&mut stream, &BackendMessage::BackendKeyData { pid: std::process::id() as i32, secret: 0 })?;
    send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;

    let mut session = db.session();

    // Query loop.
    loop {
        let Some(msg) = recv_frontend(&mut stream, &mut reader, &mut chunk)? else {
            return Ok(());
        };
        match msg {
            FrontendMessage::Query(sql) => {
                let trimmed = sql.trim();
                if trimmed.is_empty() {
                    send(&mut stream, &BackendMessage::EmptyQueryResponse)?;
                    send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;
                    continue;
                }
                if is_metrics_query(trimmed) {
                    send_metrics_dump(&mut stream)?;
                    send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;
                    continue;
                }
                queries_counter().inc();
                // Multiple statements separated by ';'.
                for stmt_sql in split_statements(trimmed) {
                    // Results stream as bounded batches until this
                    // point; cells are realized one wire row at a time
                    // (the protocol's representation boundary, DESIGN
                    // §10/§12). Peak resident result state is one
                    // morsel-sized chunk, not the full row set.
                    match session.execute_stream(&stmt_sql) {
                        Ok(StreamQueryResult::Stream(batches)) => {
                            let fields: Vec<FieldDesc> = batches
                                .schema
                                .iter()
                                .map(|c| FieldDesc {
                                    name: c.name.clone(),
                                    type_oid: pg_type_oid(c.ty),
                                })
                                .collect();
                            send(&mut stream, &BackendMessage::RowDescription(fields))?;
                            let mut count = 0usize;
                            let mut failed = false;
                            for item in batches {
                                match item {
                                    Ok(batch) => {
                                        for i in 0..batch.rows() {
                                            let cells: Vec<Option<String>> = batch
                                                .columns
                                                .iter()
                                                .map(|col| col.cell_at(i).to_wire_text())
                                                .collect();
                                            send(&mut stream, &BackendMessage::DataRow(cells))?;
                                        }
                                        count += batch.rows();
                                    }
                                    // Mid-stream failure: the protocol
                                    // allows ErrorResponse after partial
                                    // DataRows — the client discards them.
                                    Err(e) => {
                                        send(
                                            &mut stream,
                                            &BackendMessage::ErrorResponse {
                                                severity: "ERROR".into(),
                                                code: e.code.clone(),
                                                message: e.message.clone(),
                                            },
                                        )?;
                                        failed = true;
                                        break;
                                    }
                                }
                            }
                            if failed {
                                break;
                            }
                            send(
                                &mut stream,
                                &BackendMessage::CommandComplete(format!("SELECT {count}")),
                            )?;
                        }
                        Ok(StreamQueryResult::Command(tag)) => {
                            send(&mut stream, &BackendMessage::CommandComplete(tag))?;
                        }
                        Err(e) => {
                            send(
                                &mut stream,
                                &BackendMessage::ErrorResponse {
                                    severity: "ERROR".into(),
                                    code: e.code.clone(),
                                    message: e.message.clone(),
                                },
                            )?;
                            break;
                        }
                    }
                }
                send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;
            }
            FrontendMessage::Terminate => return Ok(()),
            _ => {}
        }
    }
}

fn read_password(
    stream: &mut TcpStream,
    reader: &mut MessageReader,
    chunk: &mut [u8],
) -> std::io::Result<Option<String>> {
    loop {
        match recv_frontend(stream, reader, chunk)? {
            Some(FrontendMessage::Password(p)) => return Ok(Some(p)),
            Some(_) => {}
            None => return Ok(None),
        }
    }
}

/// Split on top-level semicolons (quotes respected).
fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_ident = false;
    for c in sql.chars() {
        match c {
            '\'' if !in_ident => in_str = !in_str,
            '"' if !in_str => in_ident = !in_ident,
            ';' if !in_str && !in_ident => {
                let t = cur.trim().to_string();
                if !t.is_empty() {
                    out.push(t);
                }
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgwire::codec::encode_frontend;

    struct TestClient {
        stream: TcpStream,
        reader: MessageReader,
    }

    impl TestClient {
        fn connect(addr: std::net::SocketAddr, user: &str) -> Self {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut buf = BytesMut::new();
            encode_frontend(
                &FrontendMessage::Startup {
                    params: vec![("user".into(), user.into()), ("database".into(), "hist".into())],
                },
                &mut buf,
            );
            stream.write_all(&buf).unwrap();
            TestClient { stream, reader: MessageReader::new(false) }
        }

        fn send(&mut self, msg: &FrontendMessage) {
            let mut buf = BytesMut::new();
            encode_frontend(msg, &mut buf);
            self.stream.write_all(&buf).unwrap();
        }

        fn recv(&mut self) -> BackendMessage {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(m) = self.reader.next_backend().unwrap() {
                    return m;
                }
                let n = self.stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed connection");
                self.reader.feed(&chunk[..n]);
            }
        }

        fn recv_until_ready(&mut self) -> Vec<BackendMessage> {
            let mut msgs = Vec::new();
            loop {
                let m = self.recv();
                let done = matches!(m, BackendMessage::ReadyForQuery(_));
                msgs.push(m);
                if done {
                    return msgs;
                }
            }
        }
    }

    #[test]
    fn full_wire_session_with_trust_auth() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "trader");
        let startup = client.recv_until_ready();
        assert!(matches!(startup[0], BackendMessage::Authentication(AuthRequest::Ok)));

        client.send(&FrontendMessage::Query(
            "CREATE TABLE t (x bigint); INSERT INTO t VALUES (1), (2); SELECT x FROM t ORDER BY x DESC".into(),
        ));
        let msgs = client.recv_until_ready();
        let rows: Vec<&BackendMessage> =
            msgs.iter().filter(|m| matches!(m, BackendMessage::DataRow(_))).collect();
        assert_eq!(rows.len(), 2);
        match rows[0] {
            BackendMessage::DataRow(cells) => assert_eq!(cells[0].as_deref(), Some("2")),
            _ => unreachable!(),
        }
        client.send(&FrontendMessage::Terminate);
        server.detach();
    }

    #[test]
    fn cleartext_auth_rejects_bad_password() {
        let db = Db::new();
        let mut creds = HashMap::new();
        creds.insert("trader".to_string(), "secret".to_string());
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { auth: AuthMode::Cleartext(creds), ..ServerConfig::default() },
        )
        .unwrap();

        // Good password.
        let mut ok = TestClient::connect(server.addr, "trader");
        assert!(matches!(
            ok.recv(),
            BackendMessage::Authentication(AuthRequest::CleartextPassword)
        ));
        ok.send(&FrontendMessage::Password("secret".into()));
        let msgs = ok.recv_until_ready();
        assert!(matches!(msgs[0], BackendMessage::Authentication(AuthRequest::Ok)));

        // Bad password.
        let mut bad = TestClient::connect(server.addr, "trader");
        bad.recv();
        bad.send(&FrontendMessage::Password("wrong".into()));
        let m = bad.recv();
        assert!(matches!(m, BackendMessage::ErrorResponse { code, .. } if code == "28P01"));
        server.detach();
    }

    #[test]
    fn md5_auth_end_to_end() {
        let db = Db::new();
        let mut creds = HashMap::new();
        creds.insert("trader".to_string(), "secret".to_string());
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { auth: AuthMode::Md5(creds), ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = TestClient::connect(server.addr, "trader");
        let salt = match client.recv() {
            BackendMessage::Authentication(AuthRequest::Md5Password { salt }) => salt,
            other => panic!("expected md5 request, got {other:?}"),
        };
        client.send(&FrontendMessage::Password(pgwire::md5_password("trader", "secret", salt)));
        let msgs = client.recv_until_ready();
        assert!(matches!(msgs[0], BackendMessage::Authentication(AuthRequest::Ok)));
        server.detach();
    }

    #[test]
    fn errors_travel_as_error_responses() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "x");
        client.recv_until_ready();
        client.send(&FrontendMessage::Query("SELECT * FROM missing_table".into()));
        let msgs = client.recv_until_ready();
        assert!(msgs
            .iter()
            .any(|m| matches!(m, BackendMessage::ErrorResponse { code, .. } if code == "42P01")));
        server.detach();
    }

    #[test]
    fn connection_cap_rejects_with_53300() {
        let db = Db::new();
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { max_connections: 1, ..ServerConfig::default() },
        )
        .unwrap();
        let mut first = TestClient::connect(server.addr, "a");
        first.recv_until_ready();
        // The second concurrent connection must be turned away cleanly.
        let mut second = TestClient::connect(server.addr, "b");
        let m = second.recv();
        assert!(
            matches!(&m, BackendMessage::ErrorResponse { code, .. } if code == "53300"),
            "expected 53300 rejection, got {m:?}"
        );
        // The first connection keeps working.
        first.send(&FrontendMessage::Query("SELECT 1".into()));
        let msgs = first.recv_until_ready();
        assert!(msgs.iter().any(|m| matches!(m, BackendMessage::DataRow(_))));
        server.detach();
    }

    #[test]
    fn metrics_admin_query_returns_prometheus_dump() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "ops");
        client.recv_until_ready();
        // Run a normal query first so pgdb_queries_total is registered.
        client.send(&FrontendMessage::Query("SELECT 1".into()));
        client.recv_until_ready();
        for admin in ["SHOW metrics", "\\metrics"] {
            client.send(&FrontendMessage::Query(admin.into()));
            let msgs = client.recv_until_ready();
            let lines: Vec<String> = msgs
                .iter()
                .filter_map(|m| match m {
                    BackendMessage::DataRow(cells) => cells[0].clone(),
                    _ => None,
                })
                .collect();
            assert!(
                lines.iter().any(|l| l.starts_with("pgdb_queries_total")),
                "{admin}: {lines:?}"
            );
            assert!(lines.iter().any(|l| l.starts_with("# TYPE")), "{admin}: {lines:?}");
        }
        server.detach();
    }

    #[test]
    fn malformed_frame_gets_a_protocol_violation_error() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "x");
        client.recv_until_ready();
        // A Query frame whose length prefix declares half a gigabyte.
        let mut evil = vec![b'Q'];
        evil.extend_from_slice(&(512 * 1024 * 1024i32).to_be_bytes());
        client.stream.write_all(&evil).unwrap();
        let m = client.recv();
        assert!(
            matches!(&m, BackendMessage::ErrorResponse { code, .. } if code == "08P01"),
            "expected 08P01, got {m:?}"
        );
        server.detach();
    }
}
