//! PG v3 TCP server.
//!
//! Simple-query protocol: start-up → authentication (trust, clear text
//! or MD5 — the mechanisms paper §4.2 lists) → `ReadyForQuery` → a loop
//! of `Query` messages answered with `RowDescription` + streamed
//! `DataRow`s + `CommandComplete` (the row-oriented stream of Figure 5).
//!
//! The protocol itself lives in a sans-io state machine,
//! [`PgConnMachine`]: bytes in, bytes out, no socket in sight. Two
//! drivers run it, selected by [`ServerConfig::io_model`]:
//!
//! * **thread-per-connection** — the legacy model, one blocking thread
//!   per accepted socket;
//! * **multiplexed** (the default) — sockets registered with the
//!   `netpool` readiness scheduler, sessions parked while idle and
//!   dispatched to a bounded worker pool when the peer speaks.
//!
//! Because both drivers feed the *same* machine, they are byte-identical
//! on the wire — which the session-park differential suite pins.
//!
//! Robustness: the accept loop survives transient `accept()` errors
//! with a capped exponential backoff, a configurable connection cap
//! turns overload into a clean protocol-level rejection (SQLSTATE
//! 53300, like PostgreSQL), and malformed frames are answered with an
//! `08P01` protocol-violation error instead of killing the process or
//! hanging the peer.

use crate::engine::{Db, Session, StreamQueryResult};
use crate::types::PgType;
use bytes::BytesMut;
use netpool::{AcceptBackoff, HandlerControl, IoModel, NetPool, SessionHandler};
use pgwire::codec::{encode_backend, MessageReader};
use pgwire::messages::{AuthRequest, BackendMessage, FieldDesc, FrontendMessage, TransactionStatus, TypeOid};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Authentication policy.
#[derive(Debug, Clone, Default)]
pub enum AuthMode {
    /// Accept everyone.
    #[default]
    Trust,
    /// Request a clear-text password and check it against the map.
    Cleartext(HashMap<String, String>),
    /// Request an MD5-hashed password.
    Md5(HashMap<String, String>),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Authentication policy.
    pub auth: AuthMode,
    /// Concurrent-connection ceiling; connection attempts beyond it are
    /// rejected with SQLSTATE 53300 ("too many connections") after the
    /// start-up packet, mirroring PostgreSQL.
    pub max_connections: usize,
    /// Connection layer: thread-per-conn or readiness-multiplexed.
    /// Defaults from `HQ_IO_MODEL` (multiplexed when unset).
    pub io_model: IoModel,
    /// Dispatch threads for the multiplexed model; `0` defers to
    /// `HQ_NET_WORKERS` (then a small built-in default).
    pub net_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            auth: AuthMode::default(),
            max_connections: 64,
            io_model: IoModel::from_env(),
            net_workers: 0,
        }
    }
}

/// A running PG v3 server.
pub struct PgServer {
    /// Bound address (useful with port 0).
    pub addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl PgServer {
    /// Start serving `db` on `bind_addr` (e.g. `127.0.0.1:0`).
    pub fn start(db: Db, bind_addr: &str, config: ServerConfig) -> std::io::Result<PgServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let pool = match config.io_model {
            IoModel::Multiplexed => Some(NetPool::start(config.net_workers)?),
            IoModel::ThreadPerConn => None,
        };
        let cfg = Arc::new(config);
        let active = Arc::new(AtomicUsize::new(0));
        let handle = std::thread::spawn(move || {
            let mut backoff = AcceptBackoff::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff.reset();
                        let slot = active.fetch_add(1, Ordering::SeqCst);
                        let reject = slot >= cfg.max_connections;
                        let machine = PgConnMachine::new(
                            db.clone(),
                            cfg.auth.clone(),
                            reject,
                            ConnGuard(Arc::clone(&active)),
                        );
                        match &pool {
                            Some(pool) => {
                                // Registration failure drops the machine,
                                // whose guard releases the slot.
                                let _ = pool.register(stream, Box::new(machine), None);
                            }
                            None => {
                                std::thread::spawn(move || {
                                    let _ = serve_connection(stream, machine);
                                });
                            }
                        }
                    }
                    // A failed accept() of one connection (peer reset the
                    // socket while it sat in the backlog, fd pressure, a
                    // signal) must not take the listener down with it —
                    // and must not spin the core while the fault lasts.
                    Err(e) if netpool::transient_accept_error(&e) => backoff.sleep(),
                    Err(_) => break,
                }
            }
        });
        Ok(PgServer { addr, handle: Some(handle) })
    }

    /// Detach the accept thread (it ends when the process does).
    pub fn detach(mut self) {
        self.handle.take();
    }
}

fn queries_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: std::sync::OnceLock<Arc<obs::Counter>> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| obs::global_registry().counter("pgdb_queries_total"))
}

/// Releases the connection-cap slot when the connection ends, whichever
/// driver ran it.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn emit(out: &mut Vec<u8>, msg: &BackendMessage) {
    let mut buf = BytesMut::new();
    encode_backend(msg, &mut buf);
    out.extend_from_slice(&buf);
}

/// Admin path (observability): `\metrics` or `SHOW metrics` answers with
/// the process-wide Prometheus dump as a one-column result set, without
/// entering the SQL engine. Operators can point any PG client at the
/// server to scrape it.
fn is_metrics_query(sql: &str) -> bool {
    sql == "\\metrics" || sql.eq_ignore_ascii_case("show metrics")
}

fn emit_metrics_dump(out: &mut Vec<u8>) {
    let dump = obs::global_registry().render_prometheus();
    emit(
        out,
        &BackendMessage::RowDescription(vec![FieldDesc {
            name: "metrics".into(),
            type_oid: TypeOid::Text,
        }]),
    );
    let count = dump.lines().count();
    for line in dump.lines() {
        emit(out, &BackendMessage::DataRow(vec![Some(line.to_string())]));
    }
    emit(out, &BackendMessage::CommandComplete(format!("SELECT {count}")));
}

fn pg_type_oid(ty: PgType) -> TypeOid {
    match ty {
        PgType::Bool => TypeOid::Bool,
        PgType::Int2 => TypeOid::Int2,
        PgType::Int4 => TypeOid::Int4,
        PgType::Int8 => TypeOid::Int8,
        PgType::Float4 => TypeOid::Float4,
        PgType::Float8 => TypeOid::Float8,
        PgType::Varchar => TypeOid::Varchar,
        PgType::Text => TypeOid::Text,
        PgType::Date => TypeOid::Date,
        PgType::Time => TypeOid::Time,
        PgType::Timestamp => TypeOid::Timestamp,
    }
}

/// Where the conversation stands.
enum ConnState {
    /// Waiting for the start-up packet.
    Startup,
    /// Password requested, waiting for the `Password` message.
    AwaitPassword { user: String, md5_salt: Option<[u8; 4]> },
    /// Authenticated; `Query` messages drive the engine session.
    Ready(Box<Session>),
}

/// The PG v3 protocol as a sans-io state machine: raw bytes in,
/// response bytes out, a [`HandlerControl`] verdict per dispatch. The
/// blocking and multiplexed drivers both run this — the per-connection
/// engine session (and its temp tables) lives inside, so parking a
/// session preserves its state exactly like a dedicated thread would.
pub struct PgConnMachine {
    db: Db,
    auth: AuthMode,
    /// Over the connection cap: answer the start-up packet with 53300
    /// and close (a protocol-level rejection, not a TCP reset).
    reject: bool,
    reader: MessageReader,
    state: ConnState,
    _guard: Option<ConnGuard>,
}

impl PgConnMachine {
    fn new(db: Db, auth: AuthMode, reject: bool, guard: ConnGuard) -> PgConnMachine {
        PgConnMachine {
            db,
            auth,
            reject,
            reader: MessageReader::new(true),
            state: ConnState::Startup,
            _guard: Some(guard),
        }
    }

    fn handle_msg(&mut self, msg: FrontendMessage, out: &mut Vec<u8>) -> HandlerControl {
        match std::mem::replace(&mut self.state, ConnState::Startup) {
            ConnState::Startup => match msg {
                FrontendMessage::Startup { params } => {
                    if self.reject {
                        emit(
                            out,
                            &BackendMessage::ErrorResponse {
                                severity: "FATAL".into(),
                                code: "53300".into(),
                                message: "too many connections".into(),
                            },
                        );
                        return HandlerControl::Close;
                    }
                    let user = params
                        .iter()
                        .find(|(k, _)| k == "user")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default();
                    match &self.auth {
                        AuthMode::Trust => self.complete_auth(out),
                        AuthMode::Cleartext(_) => {
                            emit(out, &BackendMessage::Authentication(AuthRequest::CleartextPassword));
                            self.state = ConnState::AwaitPassword { user, md5_salt: None };
                        }
                        AuthMode::Md5(_) => {
                            let salt = [0x13, 0x37, 0xBE, 0xEF];
                            emit(out, &BackendMessage::Authentication(AuthRequest::Md5Password { salt }));
                            self.state = ConnState::AwaitPassword { user, md5_salt: Some(salt) };
                        }
                    }
                    HandlerControl::Continue
                }
                // Anything else before start-up is ignored.
                _ => HandlerControl::Continue,
            },
            ConnState::AwaitPassword { user, md5_salt } => match msg {
                FrontendMessage::Password(pw) => {
                    let ok = match (&self.auth, md5_salt) {
                        (AuthMode::Cleartext(creds), _) => {
                            creds.get(&user).map(|expect| *expect == pw).unwrap_or(false)
                        }
                        (AuthMode::Md5(creds), Some(salt)) => creds
                            .get(&user)
                            .map(|expect| pgwire::md5_password(&user, expect, salt) == pw)
                            .unwrap_or(false),
                        _ => false,
                    };
                    if !ok {
                        emit(
                            out,
                            &BackendMessage::ErrorResponse {
                                severity: "FATAL".into(),
                                code: "28P01".into(),
                                message: format!(
                                    "password authentication failed for user \"{user}\""
                                ),
                            },
                        );
                        return HandlerControl::Close;
                    }
                    self.complete_auth(out);
                    HandlerControl::Continue
                }
                FrontendMessage::Terminate => HandlerControl::Close,
                _ => {
                    self.state = ConnState::AwaitPassword { user, md5_salt };
                    HandlerControl::Continue
                }
            },
            ConnState::Ready(mut session) => match msg {
                FrontendMessage::Query(sql) => {
                    let control = run_query(&mut session, &sql, out);
                    self.state = ConnState::Ready(session);
                    control
                }
                FrontendMessage::Terminate => HandlerControl::Close,
                _ => {
                    self.state = ConnState::Ready(session);
                    HandlerControl::Continue
                }
            },
        }
    }

    fn complete_auth(&mut self, out: &mut Vec<u8>) {
        emit(out, &BackendMessage::Authentication(AuthRequest::Ok));
        emit(
            out,
            &BackendMessage::ParameterStatus {
                name: "server_version".into(),
                value: "9.2-hyperq-pgdb".into(),
            },
        );
        // Advertise durability so gateways know committed effects
        // survive a crash (they adjust their non-idempotent replay
        // policy on it).
        emit(
            out,
            &BackendMessage::ParameterStatus {
                name: "hyperq_durability".into(),
                value: if self.db.is_durable() { "on" } else { "off" }.into(),
            },
        );
        emit(
            out,
            &BackendMessage::BackendKeyData { pid: std::process::id() as i32, secret: 0 },
        );
        emit(out, &BackendMessage::ReadyForQuery(TransactionStatus::Idle));
        self.state = ConnState::Ready(Box::new(self.db.session()));
    }
}

impl SessionHandler for PgConnMachine {
    fn on_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> HandlerControl {
        self.reader.feed(bytes);
        loop {
            match self.reader.next_frontend() {
                Ok(Some(msg)) => {
                    if self.handle_msg(msg, out) == HandlerControl::Close {
                        return HandlerControl::Close;
                    }
                }
                Ok(None) => return HandlerControl::Continue,
                Err(e) => {
                    emit(
                        out,
                        &BackendMessage::ErrorResponse {
                            severity: "FATAL".into(),
                            code: "08P01".into(),
                            message: e.to_string(),
                        },
                    );
                    return HandlerControl::Close;
                }
            }
        }
    }

    fn mid_frame(&self) -> bool {
        self.reader.has_partial()
    }
}

/// One `Query` message: split, execute, stream rows, `ReadyForQuery`.
fn run_query(session: &mut Session, sql: &str, out: &mut Vec<u8>) -> HandlerControl {
    let trimmed = sql.trim();
    if trimmed.is_empty() {
        emit(out, &BackendMessage::EmptyQueryResponse);
        emit(out, &BackendMessage::ReadyForQuery(TransactionStatus::Idle));
        return HandlerControl::Continue;
    }
    if is_metrics_query(trimmed) {
        emit_metrics_dump(out);
        emit(out, &BackendMessage::ReadyForQuery(TransactionStatus::Idle));
        return HandlerControl::Continue;
    }
    queries_counter().inc();
    // Multiple statements separated by ';'.
    for stmt_sql in split_statements(trimmed) {
        // Results stream as bounded batches until this point; cells are
        // realized one wire row at a time (the protocol's
        // representation boundary, DESIGN §10/§12). Peak resident
        // result state is one morsel-sized chunk, not the full row set.
        match session.execute_stream(&stmt_sql) {
            Ok(StreamQueryResult::Stream(batches)) => {
                let fields: Vec<FieldDesc> = batches
                    .schema
                    .iter()
                    .map(|c| FieldDesc { name: c.name.clone(), type_oid: pg_type_oid(c.ty) })
                    .collect();
                emit(out, &BackendMessage::RowDescription(fields));
                let mut count = 0usize;
                let mut failed = false;
                for item in batches {
                    match item {
                        Ok(batch) => {
                            for i in 0..batch.rows() {
                                let cells: Vec<Option<String>> = batch
                                    .columns
                                    .iter()
                                    .map(|col| col.cell_at(i).to_wire_text())
                                    .collect();
                                emit(out, &BackendMessage::DataRow(cells));
                            }
                            count += batch.rows();
                        }
                        // Mid-stream failure: the protocol allows
                        // ErrorResponse after partial DataRows — the
                        // client discards them.
                        Err(e) => {
                            emit(
                                out,
                                &BackendMessage::ErrorResponse {
                                    severity: "ERROR".into(),
                                    code: e.code.clone(),
                                    message: e.message.clone(),
                                },
                            );
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    break;
                }
                emit(out, &BackendMessage::CommandComplete(format!("SELECT {count}")));
            }
            Ok(StreamQueryResult::Command(tag)) => {
                emit(out, &BackendMessage::CommandComplete(tag));
            }
            Err(e) => {
                emit(
                    out,
                    &BackendMessage::ErrorResponse {
                        severity: "ERROR".into(),
                        code: e.code.clone(),
                        message: e.message.clone(),
                    },
                );
                break;
            }
        }
    }
    emit(out, &BackendMessage::ReadyForQuery(TransactionStatus::Idle));
    HandlerControl::Continue
}

/// The thread-per-connection driver: a blocking read → machine → write
/// loop over the same state machine the multiplexed scheduler runs.
fn serve_connection(mut stream: TcpStream, mut machine: PgConnMachine) -> std::io::Result<()> {
    let mut chunk = [0u8; 8192];
    let mut out = Vec::new();
    loop {
        let n = stream.read(&mut chunk)?;
        let control = if n == 0 {
            machine.on_eof(&mut out);
            HandlerControl::Close
        } else {
            machine.on_bytes(&chunk[..n], &mut out)
        };
        if !out.is_empty() {
            stream.write_all(&out)?;
            out.clear();
        }
        if control == HandlerControl::Close {
            return Ok(());
        }
    }
}

/// Split on top-level semicolons (quotes respected).
fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_ident = false;
    for c in sql.chars() {
        match c {
            '\'' if !in_ident => in_str = !in_str,
            '"' if !in_str => in_ident = !in_ident,
            ';' if !in_str && !in_ident => {
                let t = cur.trim().to_string();
                if !t.is_empty() {
                    out.push(t);
                }
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgwire::codec::encode_frontend;

    struct TestClient {
        stream: TcpStream,
        reader: MessageReader,
    }

    impl TestClient {
        fn connect(addr: std::net::SocketAddr, user: &str) -> Self {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut buf = BytesMut::new();
            encode_frontend(
                &FrontendMessage::Startup {
                    params: vec![("user".into(), user.into()), ("database".into(), "hist".into())],
                },
                &mut buf,
            );
            stream.write_all(&buf).unwrap();
            TestClient { stream, reader: MessageReader::new(false) }
        }

        fn send(&mut self, msg: &FrontendMessage) {
            let mut buf = BytesMut::new();
            encode_frontend(msg, &mut buf);
            self.stream.write_all(&buf).unwrap();
        }

        fn recv(&mut self) -> BackendMessage {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(m) = self.reader.next_backend().unwrap() {
                    return m;
                }
                let n = self.stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed connection");
                self.reader.feed(&chunk[..n]);
            }
        }

        fn recv_until_ready(&mut self) -> Vec<BackendMessage> {
            let mut msgs = Vec::new();
            loop {
                let m = self.recv();
                let done = matches!(m, BackendMessage::ReadyForQuery(_));
                msgs.push(m);
                if done {
                    return msgs;
                }
            }
        }
    }

    fn config_for(io_model: IoModel) -> ServerConfig {
        ServerConfig { io_model, ..ServerConfig::default() }
    }

    fn full_wire_session(io_model: IoModel) {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", config_for(io_model)).unwrap();
        let mut client = TestClient::connect(server.addr, "trader");
        let startup = client.recv_until_ready();
        assert!(matches!(startup[0], BackendMessage::Authentication(AuthRequest::Ok)));

        client.send(&FrontendMessage::Query(
            "CREATE TABLE t (x bigint); INSERT INTO t VALUES (1), (2); SELECT x FROM t ORDER BY x DESC".into(),
        ));
        let msgs = client.recv_until_ready();
        let rows: Vec<&BackendMessage> =
            msgs.iter().filter(|m| matches!(m, BackendMessage::DataRow(_))).collect();
        assert_eq!(rows.len(), 2);
        match rows[0] {
            BackendMessage::DataRow(cells) => assert_eq!(cells[0].as_deref(), Some("2")),
            _ => unreachable!(),
        }
        client.send(&FrontendMessage::Terminate);
        server.detach();
    }

    #[test]
    fn full_wire_session_with_trust_auth() {
        full_wire_session(IoModel::Multiplexed);
    }

    #[test]
    fn full_wire_session_thread_per_conn() {
        full_wire_session(IoModel::ThreadPerConn);
    }

    #[test]
    fn cleartext_auth_rejects_bad_password() {
        let db = Db::new();
        let mut creds = HashMap::new();
        creds.insert("trader".to_string(), "secret".to_string());
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { auth: AuthMode::Cleartext(creds), ..ServerConfig::default() },
        )
        .unwrap();

        // Good password.
        let mut ok = TestClient::connect(server.addr, "trader");
        assert!(matches!(
            ok.recv(),
            BackendMessage::Authentication(AuthRequest::CleartextPassword)
        ));
        ok.send(&FrontendMessage::Password("secret".into()));
        let msgs = ok.recv_until_ready();
        assert!(matches!(msgs[0], BackendMessage::Authentication(AuthRequest::Ok)));

        // Bad password.
        let mut bad = TestClient::connect(server.addr, "trader");
        bad.recv();
        bad.send(&FrontendMessage::Password("wrong".into()));
        let m = bad.recv();
        assert!(matches!(m, BackendMessage::ErrorResponse { code, .. } if code == "28P01"));
        server.detach();
    }

    #[test]
    fn md5_auth_end_to_end() {
        let db = Db::new();
        let mut creds = HashMap::new();
        creds.insert("trader".to_string(), "secret".to_string());
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { auth: AuthMode::Md5(creds), ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = TestClient::connect(server.addr, "trader");
        let salt = match client.recv() {
            BackendMessage::Authentication(AuthRequest::Md5Password { salt }) => salt,
            other => panic!("expected md5 request, got {other:?}"),
        };
        client.send(&FrontendMessage::Password(pgwire::md5_password("trader", "secret", salt)));
        let msgs = client.recv_until_ready();
        assert!(matches!(msgs[0], BackendMessage::Authentication(AuthRequest::Ok)));
        server.detach();
    }

    #[test]
    fn errors_travel_as_error_responses() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "x");
        client.recv_until_ready();
        client.send(&FrontendMessage::Query("SELECT * FROM missing_table".into()));
        let msgs = client.recv_until_ready();
        assert!(msgs
            .iter()
            .any(|m| matches!(m, BackendMessage::ErrorResponse { code, .. } if code == "42P01")));
        server.detach();
    }

    #[test]
    fn connection_cap_rejects_with_53300() {
        let db = Db::new();
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { max_connections: 1, ..ServerConfig::default() },
        )
        .unwrap();
        let mut first = TestClient::connect(server.addr, "a");
        first.recv_until_ready();
        // The second concurrent connection must be turned away cleanly.
        let mut second = TestClient::connect(server.addr, "b");
        let m = second.recv();
        assert!(
            matches!(&m, BackendMessage::ErrorResponse { code, .. } if code == "53300"),
            "expected 53300 rejection, got {m:?}"
        );
        // The first connection keeps working.
        first.send(&FrontendMessage::Query("SELECT 1".into()));
        let msgs = first.recv_until_ready();
        assert!(msgs.iter().any(|m| matches!(m, BackendMessage::DataRow(_))));
        server.detach();
    }

    #[test]
    fn metrics_admin_query_returns_prometheus_dump() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "ops");
        client.recv_until_ready();
        // Run a normal query first so pgdb_queries_total is registered.
        client.send(&FrontendMessage::Query("SELECT 1".into()));
        client.recv_until_ready();
        for admin in ["SHOW metrics", "\\metrics"] {
            client.send(&FrontendMessage::Query(admin.into()));
            let msgs = client.recv_until_ready();
            let lines: Vec<String> = msgs
                .iter()
                .filter_map(|m| match m {
                    BackendMessage::DataRow(cells) => cells[0].clone(),
                    _ => None,
                })
                .collect();
            assert!(
                lines.iter().any(|l| l.starts_with("pgdb_queries_total")),
                "{admin}: {lines:?}"
            );
            assert!(lines.iter().any(|l| l.starts_with("# TYPE")), "{admin}: {lines:?}");
        }
        server.detach();
    }

    #[test]
    fn metrics_expose_multiplexed_sessions() {
        let db = Db::new();
        let server =
            PgServer::start(db, "127.0.0.1:0", config_for(IoModel::Multiplexed)).unwrap();
        let mut client = TestClient::connect(server.addr, "ops");
        client.recv_until_ready();
        client.send(&FrontendMessage::Query("SHOW metrics".into()));
        let msgs = client.recv_until_ready();
        let lines: Vec<String> = msgs
            .iter()
            .filter_map(|m| match m {
                BackendMessage::DataRow(cells) => cells[0].clone(),
                _ => None,
            })
            .collect();
        for metric in ["net_sessions_active", "net_sessions_parked", "net_worker_busy"] {
            assert!(lines.iter().any(|l| l.starts_with(metric)), "missing {metric}");
        }
        server.detach();
    }

    #[test]
    fn malformed_frame_gets_a_protocol_violation_error() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "x");
        client.recv_until_ready();
        // A Query frame whose length prefix declares half a gigabyte.
        let mut evil = vec![b'Q'];
        evil.extend_from_slice(&(512 * 1024 * 1024i32).to_be_bytes());
        client.stream.write_all(&evil).unwrap();
        let m = client.recv();
        assert!(
            matches!(&m, BackendMessage::ErrorResponse { code, .. } if code == "08P01"),
            "expected 08P01, got {m:?}"
        );
        server.detach();
    }
}
