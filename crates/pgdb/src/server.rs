//! PG v3 TCP server.
//!
//! One thread per connection, simple-query protocol: start-up →
//! authentication (trust, clear text or MD5 — the mechanisms paper §4.2
//! lists) → `ReadyForQuery` → a loop of `Query` messages answered with
//! `RowDescription` + streamed `DataRow`s + `CommandComplete` (the
//! row-oriented stream of Figure 5).

use crate::engine::{Db, QueryResult};
use crate::types::PgType;
use bytes::BytesMut;
use pgwire::codec::{encode_backend, MessageReader};
use pgwire::messages::{AuthRequest, BackendMessage, FieldDesc, FrontendMessage, TransactionStatus, TypeOid};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Authentication policy.
#[derive(Debug, Clone, Default)]
pub enum AuthMode {
    /// Accept everyone.
    #[default]
    Trust,
    /// Request a clear-text password and check it against the map.
    Cleartext(HashMap<String, String>),
    /// Request an MD5-hashed password.
    Md5(HashMap<String, String>),
}

/// Server configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Authentication policy.
    pub auth: AuthMode,
}

/// A running PG v3 server.
pub struct PgServer {
    /// Bound address (useful with port 0).
    pub addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl PgServer {
    /// Start serving `db` on `bind_addr` (e.g. `127.0.0.1:0`).
    pub fn start(db: Db, bind_addr: &str, config: ServerConfig) -> std::io::Result<PgServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let cfg = Arc::new(config);
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let db = db.clone();
                let cfg = Arc::clone(&cfg);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, db, &cfg);
                });
            }
        });
        Ok(PgServer { addr, handle: Some(handle) })
    }

    /// Detach the accept thread (it ends when the process does).
    pub fn detach(mut self) {
        self.handle.take();
    }
}

fn send(stream: &mut TcpStream, msg: &BackendMessage) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    encode_backend(msg, &mut buf);
    stream.write_all(&buf)
}

fn pg_type_oid(ty: PgType) -> TypeOid {
    match ty {
        PgType::Bool => TypeOid::Bool,
        PgType::Int2 => TypeOid::Int2,
        PgType::Int4 => TypeOid::Int4,
        PgType::Int8 => TypeOid::Int8,
        PgType::Float4 => TypeOid::Float4,
        PgType::Float8 => TypeOid::Float8,
        PgType::Varchar => TypeOid::Varchar,
        PgType::Text => TypeOid::Text,
        PgType::Date => TypeOid::Date,
        PgType::Time => TypeOid::Time,
        PgType::Timestamp => TypeOid::Timestamp,
    }
}

fn serve_connection(
    mut stream: TcpStream,
    db: Db,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    let mut reader = MessageReader::new(true);
    let mut chunk = [0u8; 8192];

    // Start-up.
    let params = loop {
        if let Some(FrontendMessage::Startup { params }) = reader.next_frontend() {
            break params;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        reader.feed(&chunk[..n]);
    };
    let user = params
        .iter()
        .find(|(k, _)| k == "user")
        .map(|(_, v)| v.clone())
        .unwrap_or_default();

    // Authentication.
    let authenticated = match &cfg.auth {
        AuthMode::Trust => true,
        AuthMode::Cleartext(creds) => {
            send(&mut stream, &BackendMessage::Authentication(AuthRequest::CleartextPassword))?;
            let pw = read_password(&mut stream, &mut reader, &mut chunk)?;
            creds.get(&user).map(|expect| *expect == pw).unwrap_or(false)
        }
        AuthMode::Md5(creds) => {
            let salt = [0x13, 0x37, 0xBE, 0xEF];
            send(&mut stream, &BackendMessage::Authentication(AuthRequest::Md5Password { salt }))?;
            let pw = read_password(&mut stream, &mut reader, &mut chunk)?;
            creds
                .get(&user)
                .map(|expect| pgwire::md5_password(&user, expect, salt) == pw)
                .unwrap_or(false)
        }
    };
    if !authenticated {
        send(
            &mut stream,
            &BackendMessage::ErrorResponse {
                severity: "FATAL".into(),
                code: "28P01".into(),
                message: format!("password authentication failed for user \"{user}\""),
            },
        )?;
        return Ok(());
    }
    send(&mut stream, &BackendMessage::Authentication(AuthRequest::Ok))?;
    send(
        &mut stream,
        &BackendMessage::ParameterStatus { name: "server_version".into(), value: "9.2-hyperq-pgdb".into() },
    )?;
    send(&mut stream, &BackendMessage::BackendKeyData { pid: std::process::id() as i32, secret: 0 })?;
    send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;

    let mut session = db.session();

    // Query loop.
    loop {
        let msg = loop {
            if let Some(m) = reader.next_frontend() {
                break m;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(());
            }
            reader.feed(&chunk[..n]);
        };
        match msg {
            FrontendMessage::Query(sql) => {
                let trimmed = sql.trim();
                if trimmed.is_empty() {
                    send(&mut stream, &BackendMessage::EmptyQueryResponse)?;
                    send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;
                    continue;
                }
                // Multiple statements separated by ';'.
                for stmt_sql in split_statements(trimmed) {
                    match session.execute(&stmt_sql) {
                        Ok(QueryResult::Rows(rows)) => {
                            let fields: Vec<FieldDesc> = rows
                                .columns
                                .iter()
                                .map(|c| FieldDesc {
                                    name: c.name.clone(),
                                    type_oid: pg_type_oid(c.ty),
                                })
                                .collect();
                            send(&mut stream, &BackendMessage::RowDescription(fields))?;
                            let count = rows.len();
                            for row in &rows.data {
                                let cells: Vec<Option<String>> =
                                    row.iter().map(|c| c.to_wire_text()).collect();
                                send(&mut stream, &BackendMessage::DataRow(cells))?;
                            }
                            send(
                                &mut stream,
                                &BackendMessage::CommandComplete(format!("SELECT {count}")),
                            )?;
                        }
                        Ok(QueryResult::Command(tag)) => {
                            send(&mut stream, &BackendMessage::CommandComplete(tag))?;
                        }
                        Err(e) => {
                            send(
                                &mut stream,
                                &BackendMessage::ErrorResponse {
                                    severity: "ERROR".into(),
                                    code: e.code.clone(),
                                    message: e.message.clone(),
                                },
                            )?;
                            break;
                        }
                    }
                }
                send(&mut stream, &BackendMessage::ReadyForQuery(TransactionStatus::Idle))?;
            }
            FrontendMessage::Terminate => return Ok(()),
            _ => {}
        }
    }
}

fn read_password(
    stream: &mut TcpStream,
    reader: &mut MessageReader,
    chunk: &mut [u8],
) -> std::io::Result<String> {
    loop {
        if let Some(FrontendMessage::Password(p)) = reader.next_frontend() {
            return Ok(p);
        }
        let n = stream.read(chunk)?;
        if n == 0 {
            return Ok(String::new());
        }
        reader.feed(&chunk[..n]);
    }
}

/// Split on top-level semicolons (quotes respected).
fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_ident = false;
    for c in sql.chars() {
        match c {
            '\'' if !in_ident => in_str = !in_str,
            '"' if !in_str => in_ident = !in_ident,
            ';' if !in_str && !in_ident => {
                let t = cur.trim().to_string();
                if !t.is_empty() {
                    out.push(t);
                }
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgwire::codec::encode_frontend;

    struct TestClient {
        stream: TcpStream,
        reader: MessageReader,
    }

    impl TestClient {
        fn connect(addr: std::net::SocketAddr, user: &str) -> Self {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut buf = BytesMut::new();
            encode_frontend(
                &FrontendMessage::Startup {
                    params: vec![("user".into(), user.into()), ("database".into(), "hist".into())],
                },
                &mut buf,
            );
            stream.write_all(&buf).unwrap();
            TestClient { stream, reader: MessageReader::new(false) }
        }

        fn send(&mut self, msg: &FrontendMessage) {
            let mut buf = BytesMut::new();
            encode_frontend(msg, &mut buf);
            self.stream.write_all(&buf).unwrap();
        }

        fn recv(&mut self) -> BackendMessage {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(m) = self.reader.next_backend() {
                    return m;
                }
                let n = self.stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed connection");
                self.reader.feed(&chunk[..n]);
            }
        }

        fn recv_until_ready(&mut self) -> Vec<BackendMessage> {
            let mut msgs = Vec::new();
            loop {
                let m = self.recv();
                let done = matches!(m, BackendMessage::ReadyForQuery(_));
                msgs.push(m);
                if done {
                    return msgs;
                }
            }
        }
    }

    #[test]
    fn full_wire_session_with_trust_auth() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "trader");
        let startup = client.recv_until_ready();
        assert!(matches!(startup[0], BackendMessage::Authentication(AuthRequest::Ok)));

        client.send(&FrontendMessage::Query(
            "CREATE TABLE t (x bigint); INSERT INTO t VALUES (1), (2); SELECT x FROM t ORDER BY x DESC".into(),
        ));
        let msgs = client.recv_until_ready();
        let rows: Vec<&BackendMessage> =
            msgs.iter().filter(|m| matches!(m, BackendMessage::DataRow(_))).collect();
        assert_eq!(rows.len(), 2);
        match rows[0] {
            BackendMessage::DataRow(cells) => assert_eq!(cells[0].as_deref(), Some("2")),
            _ => unreachable!(),
        }
        client.send(&FrontendMessage::Terminate);
        server.detach();
    }

    #[test]
    fn cleartext_auth_rejects_bad_password() {
        let db = Db::new();
        let mut creds = HashMap::new();
        creds.insert("trader".to_string(), "secret".to_string());
        let server =
            PgServer::start(db, "127.0.0.1:0", ServerConfig { auth: AuthMode::Cleartext(creds) })
                .unwrap();

        // Good password.
        let mut ok = TestClient::connect(server.addr, "trader");
        assert!(matches!(
            ok.recv(),
            BackendMessage::Authentication(AuthRequest::CleartextPassword)
        ));
        ok.send(&FrontendMessage::Password("secret".into()));
        let msgs = ok.recv_until_ready();
        assert!(matches!(msgs[0], BackendMessage::Authentication(AuthRequest::Ok)));

        // Bad password.
        let mut bad = TestClient::connect(server.addr, "trader");
        bad.recv();
        bad.send(&FrontendMessage::Password("wrong".into()));
        let m = bad.recv();
        assert!(matches!(m, BackendMessage::ErrorResponse { code, .. } if code == "28P01"));
        server.detach();
    }

    #[test]
    fn md5_auth_end_to_end() {
        let db = Db::new();
        let mut creds = HashMap::new();
        creds.insert("trader".to_string(), "secret".to_string());
        let server =
            PgServer::start(db, "127.0.0.1:0", ServerConfig { auth: AuthMode::Md5(creds) }).unwrap();
        let mut client = TestClient::connect(server.addr, "trader");
        let salt = match client.recv() {
            BackendMessage::Authentication(AuthRequest::Md5Password { salt }) => salt,
            other => panic!("expected md5 request, got {other:?}"),
        };
        client.send(&FrontendMessage::Password(pgwire::md5_password("trader", "secret", salt)));
        let msgs = client.recv_until_ready();
        assert!(matches!(msgs[0], BackendMessage::Authentication(AuthRequest::Ok)));
        server.detach();
    }

    #[test]
    fn errors_travel_as_error_responses() {
        let db = Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TestClient::connect(server.addr, "x");
        client.recv_until_ready();
        client.send(&FrontendMessage::Query("SELECT * FROM missing_table".into()));
        let msgs = client.recv_until_ready();
        assert!(msgs
            .iter()
            .any(|m| matches!(m, BackendMessage::ErrorResponse { code, .. } if code == "42P01")));
        server.detach();
    }

    #[test]
    fn statement_splitting_respects_quotes() {
        assert_eq!(split_statements("SELECT 1; SELECT 2"), vec!["SELECT 1", "SELECT 2"]);
        assert_eq!(split_statements("SELECT 'a;b'"), vec!["SELECT 'a;b'"]);
        assert_eq!(split_statements("SELECT \"a;b\" FROM t"), vec!["SELECT \"a;b\" FROM t"]);
    }
}
