//! Runtime value and type model — re-exported from [`colstore`].
//!
//! The `PgType`/`Cell`/`Column`/`Rows` family moved to the shared
//! `colstore` crate when the columnar batch representation landed
//! (DESIGN §10), so the executor, the gateway pivot, and QIPC encoding
//! all speak one type vocabulary. This module keeps every historical
//! `pgdb::types::*` path compiling.

pub use colstore::types::{days_to_ymd, ymd_to_days, Cell, Column, PgType, Rows};
