//! Morsel-driven parallel execution scaffolding (DESIGN §12).
//!
//! A *morsel* is a fixed-size contiguous range of rows (~64K). Operators
//! that parallelize split their input into morsels, a bounded pool of
//! scoped `std::thread` workers claims morsels off a shared atomic
//! cursor (work-stealing by construction: fast workers simply claim
//! more), and per-morsel results are merged back **in morsel order** —
//! that canonical merge order is what keeps parallel output bit-identical
//! to the serial path, row order, group order, and error identity
//! included.
//!
//! The pool is created per operator invocation rather than kept warm:
//! scoped threads let workers borrow the frame directly (no `Arc`
//! plumbing, no lifetime laundering), and thread spawn cost is noise
//! against the ≥64K-row inputs that take this path at all.

use crate::engine::DbError;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Target rows per morsel. 64K rows keeps a morsel's working set (a
/// handful of 8-byte columns) around L2 size while amortizing claim
/// overhead to nothing; it is also the streaming chunk size, so one
/// constant bounds both worker granularity and peak chunk residency.
pub const MORSEL_ROWS: usize = 65_536;

/// Session default worker count: `HQ_EXEC_THREADS` when set to a
/// positive integer (read uncached so tests can flip it per call),
/// otherwise the machine's available parallelism. `1` is the serial
/// path — no pool, no morsel splitting.
pub fn default_exec_threads() -> usize {
    if let Ok(v) = std::env::var("HQ_EXEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Does a `rows`-row operator input warrant the pool at all? Inputs of
/// one morsel or less always run serially — identical to `threads = 1`.
pub(crate) fn should_parallelize(rows: usize, threads: usize) -> bool {
    threads > 1 && rows > MORSEL_ROWS
}

/// Split `[0, n)` into MORSEL_ROWS-sized contiguous ranges.
pub(crate) fn morsel_ranges(n: usize) -> Vec<Range<usize>> {
    (0..n).step_by(MORSEL_ROWS).map(|o| o..(o + MORSEL_ROWS).min(n)).collect()
}

/// Split `[0, n)` into at most `parts` near-even contiguous ranges —
/// used where the natural work unit is not a row (group chunks in
/// aggregate phase 2, output-row chunks in gathers).
pub(crate) fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

fn morsels_counter() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::global_registry().counter("pgdb_morsels_total"))
}

fn workers_gauge() -> &'static Arc<obs::Gauge> {
    static G: OnceLock<Arc<obs::Gauge>> = OnceLock::new();
    G.get_or_init(|| obs::global_registry().gauge("pgdb_exec_workers"))
}

/// Per-stage morsel-size histogram (`pgdb_morsel_rows_<stage>`): how
/// many rows each morsel of that stage covered.
fn stage_histogram(stage: &str) -> Arc<obs::Histogram> {
    obs::global_registry().histogram_with(
        &format!("pgdb_morsel_rows_{stage}"),
        &[256.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0],
    )
}

/// Run `f` over morsel-sized ranges of `[0, n)` on up to `threads`
/// workers; results come back in morsel order.
pub(crate) fn run_morsels<T, F>(
    n: usize,
    threads: usize,
    stage: &str,
    f: F,
) -> Result<Vec<T>, DbError>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T, DbError> + Sync,
{
    run_ranges(morsel_ranges(n), threads, stage, f)
}

/// The morsel pool. Workers claim ranges off an atomic cursor; results
/// are merged back in range order, so the output (and, on failure, the
/// reported error — see below) is independent of scheduling.
///
/// Error canonicalization: ranges are claimed in index order, so every
/// range with an index below the lowest failing one was fully processed
/// before any worker observed the failure flag. Returning the
/// lowest-indexed error therefore reports *the same* error the serial
/// loop would have stopped at.
pub(crate) fn run_ranges<T, F>(
    ranges: Vec<Range<usize>>,
    threads: usize,
    stage: &str,
    f: F,
) -> Result<Vec<T>, DbError>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T, DbError> + Sync,
{
    if ranges.is_empty() {
        return Ok(Vec::new());
    }
    morsels_counter().add(ranges.len() as u64);
    let hist = stage_histogram(stage);
    for r in &ranges {
        hist.observe_secs(r.len() as f64);
    }
    let workers = threads.min(ranges.len());
    if workers <= 1 {
        return ranges.into_iter().enumerate().map(|(i, r)| f(i, r)).collect();
    }
    workers_gauge().set(workers as i64);
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, DbError>>>> =
        ranges.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= ranges.len() || failed.load(Ordering::Relaxed) {
                    break;
                }
                let out = f(i, ranges[i].clone());
                if out.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Unreachable while the claim order argument above holds;
            // fail loudly rather than return a truncated result.
            None => return Err(DbError::exec("morsel abandoned without a preceding error")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_ranges_tile_the_input_exactly() {
        let rs = morsel_ranges(MORSEL_ROWS * 2 + 5);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0], 0..MORSEL_ROWS);
        assert_eq!(rs[2], MORSEL_ROWS * 2..MORSEL_ROWS * 2 + 5);
        assert!(morsel_ranges(0).is_empty());
    }

    #[test]
    fn even_ranges_cover_without_gaps() {
        let rs = even_ranges(10, 4);
        assert_eq!(rs, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(even_ranges(2, 8), vec![0..1, 1..2]);
        assert!(even_ranges(0, 4).is_empty());
    }

    #[test]
    fn results_come_back_in_morsel_order_regardless_of_workers() {
        let n = MORSEL_ROWS * 5 + 17;
        for threads in [1, 2, 4, 8] {
            let sums = run_morsels(n, threads, "test", |_, r| Ok(r.len())).unwrap();
            assert_eq!(sums.iter().sum::<usize>(), n);
            let serial = run_morsels(n, 1, "test", |_, r| Ok(r.len())).unwrap();
            assert_eq!(sums, serial, "threads={threads}");
        }
    }

    #[test]
    fn lowest_morsel_error_wins() {
        let n = MORSEL_ROWS * 6;
        let got = run_morsels(n, 4, "test", |i, _| {
            if i >= 2 {
                Err(DbError::exec(format!("boom at morsel {i}")))
            } else {
                Ok(i)
            }
        });
        let msg = format!("{:?}", got.unwrap_err());
        assert!(msg.contains("boom at morsel 2"), "{msg}");
    }
}
