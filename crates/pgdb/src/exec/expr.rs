//! Scalar expression evaluation with SQL three-valued logic.
//!
//! This is the semantic counterpoint to the Q engine: `NULL = NULL` is
//! unknown, `NOT unknown` is unknown, and a WHERE clause keeps only rows
//! whose predicate is *definitely* true. Hyper-Q's null-logic
//! transformation exists precisely because of the gap between this module
//! and `qengine::ops`.

use crate::engine::DbError;
use crate::sql::ast::{SqlBinOp, SqlExpr};
use crate::types::{Cell, PgType};

/// A bound column during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCol {
    /// Source alias (for qualified references).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: PgType,
}

/// Resolve a column reference to an index in the frame.
pub fn resolve_column(
    cols: &[BoundCol],
    qualifier: Option<&str>,
    name: &str,
) -> Result<usize, DbError> {
    let mut found = None;
    for (i, c) in cols.iter().enumerate() {
        let name_matches = c.name == name;
        let qual_matches = match qualifier {
            None => true,
            Some(q) => c.qualifier.as_deref() == Some(q),
        };
        if name_matches && qual_matches {
            found = Some(i);
            break; // First match wins; Hyper-Q keeps names unique.
        }
    }
    found.ok_or_else(|| {
        DbError::undefined_column(match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.to_string(),
        })
    })
}

/// Evaluate a scalar expression against one row.
pub fn eval(expr: &SqlExpr, cols: &[BoundCol], row: &[Cell]) -> Result<Cell, DbError> {
    match expr {
        SqlExpr::Column { qualifier, name } => {
            let idx = resolve_column(cols, qualifier.as_deref(), name)?;
            Ok(row[idx].clone())
        }
        SqlExpr::Literal(c) => Ok(c.clone()),
        SqlExpr::Star => Err(DbError::exec("'*' outside count(*)")),
        SqlExpr::Binary { op, lhs, rhs } => {
            // AND/OR need Kleene short-circuit over 3VL.
            if *op == SqlBinOp::And || *op == SqlBinOp::Or {
                let l = eval(lhs, cols, row)?;
                let r = eval(rhs, cols, row)?;
                return Ok(kleene(*op, &l, &r));
            }
            let l = eval(lhs, cols, row)?;
            let r = eval(rhs, cols, row)?;
            binary(*op, &l, &r)
        }
        SqlExpr::Not(inner) => {
            let v = eval(inner, cols, row)?;
            Ok(match v {
                Cell::Null => Cell::Null,
                Cell::Bool(b) => Cell::Bool(!b),
                other => return Err(DbError::exec(format!("NOT applied to {other:?}"))),
            })
        }
        SqlExpr::Neg(inner) => {
            let v = eval(inner, cols, row)?;
            Ok(match v {
                Cell::Null => Cell::Null,
                Cell::Int(i) => Cell::Int(-i),
                Cell::Float(f) => Cell::Float(-f),
                other => return Err(DbError::exec(format!("cannot negate {other:?}"))),
            })
        }
        SqlExpr::Func { name, args, .. } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, cols, row)?);
            }
            scalar_function(name, &vals)
        }
        SqlExpr::WindowFunc { .. } => {
            Err(DbError::exec("window function evaluated outside window context"))
        }
        SqlExpr::Case { branches, else_result } => {
            for (cond, result) in branches {
                if matches!(eval(cond, cols, row)?, Cell::Bool(true)) {
                    return eval(result, cols, row);
                }
            }
            match else_result {
                Some(e) => eval(e, cols, row),
                None => Ok(Cell::Null),
            }
        }
        SqlExpr::Cast { expr, ty } => {
            let v = eval(expr, cols, row)?;
            cast(&v, *ty)
        }
        SqlExpr::InList { expr, list, negated } => {
            let needle = eval(expr, cols, row)?;
            if needle.is_null() {
                return Ok(Cell::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(item, cols, row)?;
                match needle.sql_eq(&v) {
                    Some(true) => return Ok(Cell::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            // SQL: x IN (..no match.., NULL) is unknown.
            Ok(if saw_null { Cell::Null } else { Cell::Bool(*negated) })
        }
        SqlExpr::IsNull { expr, negated } => {
            let v = eval(expr, cols, row)?;
            Ok(Cell::Bool(v.is_null() != *negated))
        }
        SqlExpr::InSubquery { .. } => Err(DbError::exec(
            "subquery reached row evaluation unresolved (executor bug)",
        )),
    }
}

/// Kleene three-valued AND/OR.
pub(crate) fn kleene(op: SqlBinOp, l: &Cell, r: &Cell) -> Cell {
    let lb = match l {
        Cell::Bool(b) => Some(*b),
        _ => None,
    };
    let rb = match r {
        Cell::Bool(b) => Some(*b),
        _ => None,
    };
    match op {
        SqlBinOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Cell::Bool(false),
            (Some(true), Some(true)) => Cell::Bool(true),
            _ => Cell::Null,
        },
        SqlBinOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Cell::Bool(true),
            (Some(false), Some(false)) => Cell::Bool(false),
            _ => Cell::Null,
        },
        _ => unreachable!(),
    }
}

/// Evaluate a non-logical binary operator.
pub fn binary(op: SqlBinOp, l: &Cell, r: &Cell) -> Result<Cell, DbError> {
    use SqlBinOp::*;
    match op {
        IsNotDistinctFrom => return Ok(Cell::Bool(l.not_distinct(r))),
        IsDistinctFrom => return Ok(Cell::Bool(!l.not_distinct(r))),
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Cell::Null);
    }
    match op {
        Eq => Ok(Cell::Bool(l.sql_eq(r).unwrap_or(false))),
        Neq => Ok(Cell::Bool(!l.sql_eq(r).unwrap_or(true))),
        Lt | Le | Gt | Ge => {
            let ord = l
                .sql_cmp(r)
                .ok_or_else(|| DbError::exec(format!("cannot compare {l:?} and {r:?}")))?;
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Cell::Bool(b))
        }
        Concat => {
            let ls = l.to_wire_text().unwrap_or_default();
            let rs = r.to_wire_text().unwrap_or_default();
            Ok(Cell::Text(format!("{ls}{rs}")))
        }
        Like => {
            let text = match l {
                Cell::Text(s) => s.clone(),
                other => other.to_wire_text().unwrap_or_default(),
            };
            let pattern = match r {
                Cell::Text(s) => s.clone(),
                other => return Err(DbError::exec(format!("LIKE pattern must be text, got {other:?}"))),
            };
            Ok(Cell::Bool(like_match(&pattern, &text)))
        }
        Add | Sub | Mul | Div | Mod => arith(op, l, r),
        And | Or => Ok(kleene(op, l, r)),
        IsNotDistinctFrom | IsDistinctFrom => unreachable!(),
    }
}

fn arith(op: SqlBinOp, l: &Cell, r: &Cell) -> Result<Cell, DbError> {
    use SqlBinOp::*;
    // Temporal arithmetic: date ± int, temporal − temporal.
    match (l, r, op) {
        (Cell::Date(d), Cell::Int(n), Add) => return Ok(Cell::Date(d + *n as i32)),
        (Cell::Int(n), Cell::Date(d), Add) => return Ok(Cell::Date(d + *n as i32)),
        (Cell::Date(d), Cell::Int(n), Sub) => return Ok(Cell::Date(d - *n as i32)),
        (Cell::Date(a), Cell::Date(b), Sub) => return Ok(Cell::Int((a - b) as i64)),
        (Cell::Timestamp(a), Cell::Int(n), Add) => return Ok(Cell::Timestamp(a + n)),
        (Cell::Timestamp(a), Cell::Int(n), Sub) => return Ok(Cell::Timestamp(a - n)),
        (Cell::Timestamp(a), Cell::Timestamp(b), Sub) => return Ok(Cell::Int(a - b)),
        (Cell::Time(a), Cell::Int(n), Add) => return Ok(Cell::Time(a + n)),
        (Cell::Time(a), Cell::Int(n), Sub) => return Ok(Cell::Time(a - n)),
        (Cell::Time(a), Cell::Time(b), Sub) => return Ok(Cell::Int(a - b)),
        _ => {}
    }
    let both_int = matches!(l, Cell::Int(_) | Cell::Bool(_)) && matches!(r, Cell::Int(_) | Cell::Bool(_));
    let (x, y) = match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => return Err(DbError::exec(format!("arithmetic on {l:?} and {r:?}"))),
    };
    if both_int && op != Div {
        let (ix, iy) = (x as i64, y as i64);
        return Ok(match op {
            Add => Cell::Int(ix.wrapping_add(iy)),
            Sub => Cell::Int(ix.wrapping_sub(iy)),
            Mul => Cell::Int(ix.wrapping_mul(iy)),
            Mod => {
                if iy == 0 {
                    return Err(DbError::exec("division by zero"));
                }
                Cell::Int(ix % iy)
            }
            _ => unreachable!(),
        });
    }
    Ok(match op {
        Add => Cell::Float(x + y),
        Sub => Cell::Float(x - y),
        Mul => Cell::Float(x * y),
        Div => {
            if y == 0.0 && !both_int {
                Cell::Float(x / y) // IEEE semantics for float division.
            } else if y == 0.0 {
                return Err(DbError::exec("division by zero"));
            } else if both_int {
                // PG integer division truncates; Hyper-Q avoids this by
                // casting, but be correct anyway.
                Cell::Int((x as i64) / (y as i64))
            } else {
                Cell::Float(x / y)
            }
        }
        Mod => Cell::Float(x % y),
        _ => unreachable!(),
    })
}

/// SQL LIKE matching (`%`, `_`, backslash escapes).
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    fn go(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => go(&p[1..], t) || (!t.is_empty() && go(p, &t[1..])),
            Some('_') => !t.is_empty() && go(&p[1..], &t[1..]),
            Some('\\') if p.len() > 1 => {
                !t.is_empty() && p[1] == t[0] && go(&p[2..], &t[1..])
            }
            Some(c) => !t.is_empty() && *c == t[0] && go(&p[1..], &t[1..]),
        }
    }
    go(&p, &t)
}

/// Cast a runtime value to a declared type.
pub fn cast(v: &Cell, ty: PgType) -> Result<Cell, DbError> {
    if v.is_null() {
        return Ok(Cell::Null);
    }
    Ok(match (v, ty) {
        (Cell::Int(x), PgType::Int2 | PgType::Int4 | PgType::Int8) => Cell::Int(*x),
        (Cell::Float(x), PgType::Int2 | PgType::Int4 | PgType::Int8) => Cell::Int(*x as i64),
        (Cell::Bool(b), PgType::Int2 | PgType::Int4 | PgType::Int8) => Cell::Int(*b as i64),
        (Cell::Int(x), PgType::Float4 | PgType::Float8) => Cell::Float(*x as f64),
        (Cell::Float(x), PgType::Float4 | PgType::Float8) => Cell::Float(*x),
        (Cell::Text(s), PgType::Int2 | PgType::Int4 | PgType::Int8) => {
            Cell::Int(s.trim().parse().map_err(|_| DbError::exec(format!("bad int cast: {s}")))?)
        }
        (Cell::Text(s), PgType::Float4 | PgType::Float8) => Cell::Float(
            s.trim().parse().map_err(|_| DbError::exec(format!("bad float cast: {s}")))?,
        ),
        (Cell::Text(s), PgType::Varchar | PgType::Text) => Cell::Text(s.clone()),
        (Cell::Text(s), PgType::Date | PgType::Time | PgType::Timestamp) => {
            Cell::from_wire_text(s, ty)
                .ok_or_else(|| DbError::exec(format!("bad temporal cast: {s}")))?
        }
        (Cell::Text(s), PgType::Bool) => Cell::Bool(matches!(s.as_str(), "t" | "true" | "TRUE" | "1")),
        (v, PgType::Varchar | PgType::Text) => {
            Cell::Text(v.to_wire_text().unwrap_or_default())
        }
        (Cell::Bool(b), PgType::Bool) => Cell::Bool(*b),
        (Cell::Int(x), PgType::Bool) => Cell::Bool(*x != 0),
        (Cell::Date(d), PgType::Date) => Cell::Date(*d),
        (Cell::Date(d), PgType::Timestamp) => Cell::Timestamp(*d as i64 * 86_400_000_000),
        (Cell::Time(t), PgType::Time) => Cell::Time(*t),
        (Cell::Timestamp(t), PgType::Timestamp) => Cell::Timestamp(*t),
        (Cell::Timestamp(t), PgType::Date) => {
            Cell::Date(t.div_euclid(86_400_000_000) as i32)
        }
        (Cell::Timestamp(t), PgType::Time) => Cell::Time(t.rem_euclid(86_400_000_000)),
        (v, ty) => return Err(DbError::exec(format!("cannot cast {v:?} to {ty:?}"))),
    })
}

/// Built-in scalar functions, including the Hyper-Q toolbox.
pub fn scalar_function(name: &str, args: &[Cell]) -> Result<Cell, DbError> {
    let num1 = |f: &dyn Fn(f64) -> f64| -> Result<Cell, DbError> {
        match &args[0] {
            Cell::Null => Ok(Cell::Null),
            v => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| DbError::exec(format!("{name}: non-numeric argument")))?;
                Ok(Cell::Float(f(x)))
            }
        }
    };
    match (name, args.len()) {
        ("abs", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            Cell::Int(x) => Ok(Cell::Int(x.abs())),
            Cell::Float(x) => Ok(Cell::Float(x.abs())),
            other => Err(DbError::exec(format!("abs: bad argument {other:?}"))),
        },
        ("sqrt", 1) => num1(&f64::sqrt),
        ("exp", 1) => num1(&f64::exp),
        ("ln", 1) => num1(&f64::ln),
        ("floor", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            v => Ok(Cell::Int(v.as_f64().ok_or_else(|| DbError::exec("floor: non-numeric"))?.floor()
                as i64)),
        },
        ("ceil" | "ceiling", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            v => Ok(Cell::Int(v.as_f64().ok_or_else(|| DbError::exec("ceil: non-numeric"))?.ceil()
                as i64)),
        },
        ("sign", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            v => {
                let x = v.as_f64().ok_or_else(|| DbError::exec("sign: non-numeric"))?;
                Ok(Cell::Int(if x > 0.0 {
                    1
                } else if x < 0.0 {
                    -1
                } else {
                    0
                }))
            }
        },
        ("round", 1) => num1(&f64::round),
        ("round", 2) => match (&args[0], &args[1]) {
            (Cell::Null, _) => Ok(Cell::Null),
            (v, Cell::Int(places)) => {
                let x = v.as_f64().ok_or_else(|| DbError::exec("round: non-numeric"))?;
                let scale = 10f64.powi(*places as i32);
                Ok(Cell::Float((x * scale).round() / scale))
            }
            _ => Err(DbError::exec("round: bad arguments")),
        },
        ("least", _) => {
            let mut best: Option<Cell> = None;
            for a in args {
                if a.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => a.clone(),
                    Some(b) => {
                        if a.sql_cmp(&b) == Some(std::cmp::Ordering::Less) {
                            a.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Cell::Null))
        }
        ("greatest", _) => {
            let mut best: Option<Cell> = None;
            for a in args {
                if a.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => a.clone(),
                    Some(b) => {
                        if a.sql_cmp(&b) == Some(std::cmp::Ordering::Greater) {
                            a.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Cell::Null))
        }
        ("coalesce", _) => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Cell::Null)
        }
        ("nullif", 2) => {
            if args[0].sql_eq(&args[1]) == Some(true) {
                Ok(Cell::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        ("div", 2) => match (&args[0], &args[1]) {
            (Cell::Null, _) | (_, Cell::Null) => Ok(Cell::Null),
            (a, b) => {
                let (x, y) = (
                    a.as_f64().ok_or_else(|| DbError::exec("div: non-numeric"))?,
                    b.as_f64().ok_or_else(|| DbError::exec("div: non-numeric"))?,
                );
                if y == 0.0 {
                    return Err(DbError::exec("division by zero"));
                }
                Ok(Cell::Int((x / y).floor() as i64))
            }
        },
        ("length" | "char_length", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            Cell::Text(s) => Ok(Cell::Int(s.chars().count() as i64)),
            other => Err(DbError::exec(format!("length: bad argument {other:?}"))),
        },
        ("upper", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            Cell::Text(s) => Ok(Cell::Text(s.to_uppercase())),
            other => Err(DbError::exec(format!("upper: bad argument {other:?}"))),
        },
        ("lower", 1) => match &args[0] {
            Cell::Null => Ok(Cell::Null),
            Cell::Text(s) => Ok(Cell::Text(s.to_lowercase())),
            other => Err(DbError::exec(format!("lower: bad argument {other:?}"))),
        },
        _ => Err(DbError::exec(format!("unknown function {name}/{}", args.len()))),
    }
}

/// Derive a reasonable output type for an expression (used for
/// RowDescription and CTAS schemas).
pub fn derive_type(expr: &SqlExpr, cols: &[BoundCol]) -> PgType {
    match expr {
        SqlExpr::Column { qualifier, name } => {
            resolve_column(cols, qualifier.as_deref(), name)
                .map(|i| cols[i].ty)
                .unwrap_or(PgType::Text)
        }
        SqlExpr::Literal(c) => c.natural_type(),
        SqlExpr::Binary { op, lhs, rhs } => match op {
            SqlBinOp::Eq
            | SqlBinOp::Neq
            | SqlBinOp::Lt
            | SqlBinOp::Le
            | SqlBinOp::Gt
            | SqlBinOp::Ge
            | SqlBinOp::And
            | SqlBinOp::Or
            | SqlBinOp::IsNotDistinctFrom
            | SqlBinOp::IsDistinctFrom
            | SqlBinOp::Like => PgType::Bool,
            SqlBinOp::Concat => PgType::Text,
            SqlBinOp::Div => {
                let lt = derive_type(lhs, cols);
                let rt = derive_type(rhs, cols);
                if lt.is_numeric() && rt.is_numeric() {
                    if lt == PgType::Int8 && rt == PgType::Int8 {
                        PgType::Int8
                    } else {
                        PgType::Float8
                    }
                } else {
                    PgType::Float8
                }
            }
            _ => {
                let lt = derive_type(lhs, cols);
                let rt = derive_type(rhs, cols);
                if lt == PgType::Float8 || rt == PgType::Float8 || lt == PgType::Float4 || rt == PgType::Float4 {
                    PgType::Float8
                } else if lt.is_numeric() && rt.is_numeric() {
                    PgType::Int8
                } else if !lt.is_numeric() {
                    lt
                } else {
                    rt
                }
            }
        },
        SqlExpr::Not(_)
        | SqlExpr::IsNull { .. }
        | SqlExpr::InList { .. }
        | SqlExpr::InSubquery { .. } => PgType::Bool,
        SqlExpr::Neg(e) => derive_type(e, cols),
        SqlExpr::Func { name, args, .. } => match name.as_str() {
            "count" => PgType::Int8,
            "avg" | "stddev_samp" | "stddev" | "var_samp" | "variance" | "median" | "sqrt"
            | "exp" | "ln" | "round" => PgType::Float8,
            "floor" | "ceil" | "ceiling" | "sign" | "div" | "length" | "char_length" => PgType::Int8,
            "upper" | "lower" => PgType::Varchar,
            _ => args.first().map(|a| derive_type(a, cols)).unwrap_or(PgType::Text),
        },
        SqlExpr::WindowFunc { name, args, .. } => match name.as_str() {
            "row_number" | "rank" => PgType::Int8,
            _ => args.first().map(|a| derive_type(a, cols)).unwrap_or(PgType::Int8),
        },
        SqlExpr::Case { branches, else_result } => branches
            .first()
            .map(|(_, r)| derive_type(r, cols))
            .or_else(|| else_result.as_ref().map(|e| derive_type(e, cols)))
            .unwrap_or(PgType::Text),
        SqlExpr::Cast { ty, .. } => *ty,
        SqlExpr::Star => PgType::Int8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<BoundCol> {
        vec![
            BoundCol { qualifier: Some("t".into()), name: "a".into(), ty: PgType::Int8 },
            BoundCol { qualifier: Some("u".into()), name: "b".into(), ty: PgType::Varchar },
        ]
    }

    #[test]
    fn column_resolution() {
        let c = cols();
        assert_eq!(resolve_column(&c, None, "a").unwrap(), 0);
        assert_eq!(resolve_column(&c, Some("u"), "b").unwrap(), 1);
        assert!(resolve_column(&c, Some("t"), "b").is_err());
        assert!(resolve_column(&c, None, "zzz").is_err());
    }

    #[test]
    fn three_valued_where_semantics() {
        // NULL = 1 → NULL (not false).
        let r = binary(SqlBinOp::Eq, &Cell::Null, &Cell::Int(1)).unwrap();
        assert_eq!(r, Cell::Null);
        // NULL IS NOT DISTINCT FROM NULL → TRUE.
        let r = binary(SqlBinOp::IsNotDistinctFrom, &Cell::Null, &Cell::Null).unwrap();
        assert_eq!(r, Cell::Bool(true));
    }

    #[test]
    fn kleene_logic() {
        // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
        assert_eq!(kleene(SqlBinOp::And, &Cell::Bool(false), &Cell::Null), Cell::Bool(false));
        assert_eq!(kleene(SqlBinOp::And, &Cell::Bool(true), &Cell::Null), Cell::Null);
        // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
        assert_eq!(kleene(SqlBinOp::Or, &Cell::Bool(true), &Cell::Null), Cell::Bool(true));
        assert_eq!(kleene(SqlBinOp::Or, &Cell::Bool(false), &Cell::Null), Cell::Null);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(binary(SqlBinOp::Add, &Cell::Int(2), &Cell::Int(3)).unwrap(), Cell::Int(5));
        assert_eq!(
            binary(SqlBinOp::Mul, &Cell::Int(2), &Cell::Float(1.5)).unwrap(),
            Cell::Float(3.0)
        );
        assert_eq!(binary(SqlBinOp::Div, &Cell::Int(7), &Cell::Int(2)).unwrap(), Cell::Int(3));
        assert!(binary(SqlBinOp::Div, &Cell::Int(1), &Cell::Int(0)).is_err());
    }

    #[test]
    fn temporal_arithmetic() {
        assert_eq!(
            binary(SqlBinOp::Add, &Cell::Date(100), &Cell::Int(5)).unwrap(),
            Cell::Date(105)
        );
        assert_eq!(
            binary(SqlBinOp::Sub, &Cell::Date(105), &Cell::Date(100)).unwrap(),
            Cell::Int(5)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("GO%", "GOOG"));
        assert!(like_match("_BM", "IBM"));
        assert!(!like_match("GO%", "IBM"));
        assert!(like_match("50\\%", "50%"));
        assert!(!like_match("50\\%", "50x"));
    }

    #[test]
    fn casts() {
        assert_eq!(cast(&Cell::Text("42".into()), PgType::Int8).unwrap(), Cell::Int(42));
        assert_eq!(cast(&Cell::Float(3.9), PgType::Int8).unwrap(), Cell::Int(3));
        assert_eq!(cast(&Cell::Int(1), PgType::Bool).unwrap(), Cell::Bool(true));
        assert_eq!(cast(&Cell::Null, PgType::Int8).unwrap(), Cell::Null);
        assert_eq!(
            cast(&Cell::Date(6021), PgType::Timestamp).unwrap(),
            Cell::Timestamp(6021 * 86_400_000_000)
        );
        assert!(cast(&Cell::Text("junk".into()), PgType::Int8).is_err());
    }

    #[test]
    fn toolbox_scalar_functions() {
        assert_eq!(
            scalar_function("least", &[Cell::Int(3), Cell::Int(1), Cell::Null]).unwrap(),
            Cell::Int(1)
        );
        assert_eq!(
            scalar_function("greatest", &[Cell::Int(3), Cell::Int(1)]).unwrap(),
            Cell::Int(3)
        );
        assert_eq!(
            scalar_function("coalesce", &[Cell::Null, Cell::Int(9)]).unwrap(),
            Cell::Int(9)
        );
        assert_eq!(
            scalar_function("div", &[Cell::Int(7), Cell::Int(2)]).unwrap(),
            Cell::Int(3)
        );
        assert_eq!(
            scalar_function("length", &[Cell::Text("GOOG".into())]).unwrap(),
            Cell::Int(4)
        );
    }

    #[test]
    fn in_list_semantics() {
        let c = cols();
        let row = vec![Cell::Int(5), Cell::Text("x".into())];
        let e = SqlExpr::InList {
            expr: Box::new(SqlExpr::Column { qualifier: None, name: "a".into() }),
            list: vec![SqlExpr::Literal(Cell::Int(5))],
            negated: false,
        };
        assert_eq!(eval(&e, &c, &row).unwrap(), Cell::Bool(true));
        // No match but a NULL in the list → unknown.
        let e = SqlExpr::InList {
            expr: Box::new(SqlExpr::Column { qualifier: None, name: "a".into() }),
            list: vec![SqlExpr::Literal(Cell::Int(1)), SqlExpr::Literal(Cell::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &c, &row).unwrap(), Cell::Null);
    }

    #[test]
    fn case_without_else_yields_null() {
        let e = SqlExpr::Case {
            branches: vec![(SqlExpr::Literal(Cell::Bool(false)), SqlExpr::Literal(Cell::Int(1)))],
            else_result: None,
        };
        assert_eq!(eval(&e, &[], &[]).unwrap(), Cell::Null);
    }

    #[test]
    fn type_derivation() {
        let c = cols();
        assert_eq!(
            derive_type(&SqlExpr::Column { qualifier: None, name: "a".into() }, &c),
            PgType::Int8
        );
        assert_eq!(
            derive_type(
                &SqlExpr::Func { name: "count".into(), args: vec![SqlExpr::Star], distinct: false },
                &c
            ),
            PgType::Int8
        );
        assert_eq!(
            derive_type(
                &SqlExpr::Cast {
                    expr: Box::new(SqlExpr::Literal(Cell::Int(1))),
                    ty: PgType::Varchar
                },
                &c
            ),
            PgType::Varchar
        );
    }
}
