//! Columnar (batch-at-a-time) SELECT execution over [`ColumnVec`]s.
//!
//! This is the default production executor (DESIGN §10). Every operator
//! — scan, filter, project, group/aggregate, equi-join, set ops, order,
//! limit — runs column-major over a [`ColFrame`], and the result leaves
//! as a [`Batch`] so the engine, the gateway pivot, and QIPC encoding
//! never re-transpose it. Semantics are defined by the retained
//! row-major pipeline in the parent module: evaluation is *eager* per
//! expression node (so per-element application of the same scalar
//! kernels is value-identical), except for `CASE` and `IN (list)`,
//! which are lazy per row and therefore fall back to row-wise
//! evaluation of that subtree. Window-function blocks and aggregate
//! shapes outside the narrow fast path delegate wholesale to the row
//! pipeline — correctness first, vectorization where it pays.
//!
//! In debug builds every top-level statement is cross-checked against
//! [`run_select_rows`](super::run_select_rows): values must agree
//! structurally; when both sides fail they may differ in *which* error
//! they report (column-major evaluation order visits rows in a
//! different sequence), which counts as agreement.

use super::expr::{self, derive_type, eval, kleene, resolve_column, BoundCol};
use super::{
    aggregate_block, contains_subquery, default_output_name, extract_equi_pairs, parallel,
    resolve_subqueries, run_block, EquiPair, Frame, TableSource,
};
use crate::engine::DbError;
use crate::sql::ast::*;
use crate::types::{Cell, Column, PgType};
use colstore::{Batch, CellKey, ColumnVec};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::Arc;

/// Column-major intermediate result: the batch dual of [`Frame`].
pub(crate) struct ColFrame {
    /// Bound columns (with source qualifiers).
    pub(crate) cols: Vec<BoundCol>,
    /// One vector per bound column.
    pub(crate) columns: Vec<ColumnVec>,
    /// Explicit row count (meaningful with zero columns: the FROM-less
    /// unit relation is zero columns × one row).
    pub(crate) len: usize,
}

impl ColFrame {
    /// The unit relation — one row to project expressions over, no
    /// columns to read. Replaces the row executor's
    /// `Frame { cols: vec![], rows: vec![vec![]] }` hack.
    pub(crate) fn unit() -> ColFrame {
        ColFrame { cols: Vec::new(), columns: Vec::new(), len: 1 }
    }

    /// Gather rows by index (indices may repeat or reorder).
    pub(crate) fn take(&self, idx: &[usize]) -> ColFrame {
        ColFrame {
            cols: self.cols.clone(),
            columns: self.columns.iter().map(|c| c.take(idx)).collect(),
            len: idx.len(),
        }
    }

    /// Materialize row-major data (for row-wise fallbacks).
    fn materialize(&self) -> Vec<Vec<Cell>> {
        (0..self.len)
            .map(|i| self.columns.iter().map(|c| c.cell_at(i)).collect())
            .collect()
    }

    /// Convert to the row executor's frame type.
    fn to_frame(&self) -> Frame {
        Frame { cols: self.cols.clone(), rows: self.materialize() }
    }

    /// Transpose row-major data into a frame (lossless).
    fn from_parts(cols: Vec<BoundCol>, rows: Vec<Vec<Cell>>) -> ColFrame {
        let len = rows.len();
        let mut data: Vec<Vec<Cell>> = (0..cols.len()).map(|_| Vec::with_capacity(len)).collect();
        for row in rows {
            for (j, cell) in row.into_iter().enumerate() {
                data[j].push(cell);
            }
        }
        let columns = cols
            .iter()
            .zip(data)
            .map(|(c, cells)| ColumnVec::from_cells(c.ty, cells))
            .collect();
        ColFrame { cols, columns, len }
    }
}

fn exec_batches_counter() -> &'static Arc<obs::Counter> {
    static C: std::sync::OnceLock<Arc<obs::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::global_registry().counter("pgdb_exec_batches_total"))
}

fn batch_rows_histogram() -> &'static Arc<obs::Histogram> {
    static H: std::sync::OnceLock<Arc<obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        obs::global_registry()
            .histogram_with("pgdb_batch_rows", &[1.0, 16.0, 256.0, 4096.0, 65536.0, 1048576.0])
    })
}

/// Execute a SELECT statement, returning the result as a batch.
///
/// Debug builds re-run the statement on the row-major oracle and
/// assert structural agreement.
pub fn run_select_batch(src: &dyn TableSource, stmt: &SelectStmt) -> Result<Batch, DbError> {
    let result = run_select_columnar(src, stmt);
    if let Ok(b) = &result {
        exec_batches_counter().inc();
        batch_rows_histogram().observe_secs(b.rows() as f64);
    }
    #[cfg(debug_assertions)]
    cross_check(src, stmt, &result);
    result
}

/// Differential gate: the columnar engine must agree with the row-major
/// oracle on every statement. Both-failed counts as agreement (the two
/// engines visit (row, node) pairs in different orders, so they may
/// surface different errors from the same statement).
#[cfg(debug_assertions)]
fn cross_check(src: &dyn TableSource, stmt: &SelectStmt, got: &Result<Batch, DbError>) {
    match (got, super::run_select_rows(src, stmt)) {
        (Ok(b), Ok(rows)) => {
            let oracle = Batch::from_rows(rows);
            debug_assert!(
                b.structurally_equal(&oracle),
                "columnar/row divergence\nstmt: {stmt:?}\ncolumnar: {:?}\nrow oracle: {:?}",
                b.to_rows(),
                oracle.to_rows(),
            );
        }
        (Ok(_), Err(e)) => panic!("columnar succeeded where the row oracle failed: {e:?}\nstmt: {stmt:?}"),
        (Err(e), Ok(_)) => panic!("columnar failed ({e:?}) where the row oracle succeeded\nstmt: {stmt:?}"),
        (Err(_), Err(_)) => {}
    }
}

/// Chained set operations over batches, mirroring the row pipeline's
/// left fold (including the incremental `seen` key set).
fn run_select_columnar(src: &dyn TableSource, stmt: &SelectStmt) -> Result<Batch, DbError> {
    let mut out = run_block_batch(src, stmt)?;
    let mut cursor = &stmt.set_op;
    let mut seen: Option<HashSet<Vec<CellKey>>> = None;
    while let Some((op, rhs)) = cursor {
        let right = run_block_batch(src, rhs)?;
        if right.schema.len() != out.schema.len() {
            return Err(DbError::exec("set operation column count mismatch"));
        }
        match op {
            SetOp::UnionAll => {
                out.append(right);
                seen = None;
            }
            SetOp::Union => {
                if seen.is_none() {
                    let mut set = HashSet::with_capacity(out.rows());
                    let mut idx = Vec::with_capacity(out.rows());
                    for i in 0..out.rows() {
                        if set.insert(out.row_key(i)) {
                            idx.push(i);
                        }
                    }
                    out = out.take(&idx);
                    seen = Some(set);
                }
                let set = seen.as_mut().expect("just installed");
                let mut admit = Vec::new();
                for i in 0..right.rows() {
                    if set.insert(right.row_key(i)) {
                        admit.push(i);
                    }
                }
                out.append(right.take(&admit));
            }
            SetOp::Except | SetOp::Intersect => {
                let want = *op == SetOp::Intersect;
                let right_keys: HashSet<Vec<CellKey>> =
                    (0..right.rows()).map(|i| right.row_key(i)).collect();
                let mut kept = HashSet::with_capacity(out.rows());
                let mut idx = Vec::new();
                for i in 0..out.rows() {
                    let k = out.row_key(i);
                    if right_keys.contains(&k) == want && kept.insert(k) {
                        idx.push(i);
                    }
                }
                out = out.take(&idx);
                seen = Some(kept);
            }
        }
        cursor = &rhs.set_op;
    }
    Ok(out)
}

/// Execute one SELECT block (no set ops), column-major.
fn run_block_batch(src: &dyn TableSource, stmt: &SelectStmt) -> Result<Batch, DbError> {
    let has_agg = !stmt.group_by.is_empty()
        || stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        });
    let has_window = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_window(),
        SelectItem::Wildcard => false,
    });
    if has_window && !has_agg {
        // Window blocks stay on the row pipeline wholesale: window
        // materialization is inherently row-order-sensitive and cold.
        return run_block(src, stmt).map(Batch::from_rows);
    }

    // Uncorrelated subqueries are resolved up front (same as the row
    // pipeline; the subqueries themselves run columnar via run_select).
    let resolved_where = match &stmt.where_clause {
        Some(p) if contains_subquery(p) => Some(resolve_subqueries(p, src)?),
        _ => None,
    };
    let stmt_storage;
    let stmt = if resolved_where.is_some() {
        stmt_storage = SelectStmt { where_clause: resolved_where, ..stmt.clone() };
        &stmt_storage
    } else {
        stmt
    };

    let threads = src.exec_threads();

    // FROM.
    let mut frame = match &stmt.from {
        Some(item) => eval_from_batch(src, item)?,
        None => ColFrame::unit(),
    };

    // WHERE (3VL: keep definite TRUE only). Large inputs evaluate the
    // predicate morsel-at-a-time over sliced views; per-morsel keep
    // lists concatenate in morsel order, which is exactly the serial
    // keep list.
    if let Some(pred) = &stmt.where_clause {
        let mut refs = HashSet::new();
        let par = parallel::should_parallelize(frame.len, threads)
            && collect_columns(pred, &frame.cols, &mut refs).is_some();
        let keep: Vec<usize> = if par {
            parallel::run_morsels(frame.len, threads, "filter", |_, range| {
                let sub = slice_frame(&frame, &refs, &range);
                let mask = eval_vec(pred, &sub)?;
                let mut keep = Vec::new();
                collect_keep(&mask, range.start, &mut keep);
                Ok(keep)
            })?
            .concat()
        } else {
            let mask = eval_vec(pred, &frame)?;
            let mut keep = Vec::with_capacity(frame.len);
            collect_keep(&mask, 0, &mut keep);
            keep
        };
        frame = take_frame(&frame, &keep, threads)?;
    }

    if has_agg {
        return aggregate_batch(stmt, frame, threads);
    }

    // Wildcard expansion.
    let mut items: Vec<(Option<String>, SqlExpr)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for c in frame.cols.clone() {
                    items.push((
                        Some(c.name.clone()),
                        SqlExpr::Column { qualifier: c.qualifier.clone(), name: c.name },
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => items.push((alias.clone(), expr.clone())),
        }
    }

    // Projection.
    let out_cols: Vec<Column> = items
        .iter()
        .enumerate()
        .map(|(i, (alias, e))| {
            let name = alias.clone().unwrap_or_else(|| default_output_name(e, i));
            Column::new(name, derive_type(e, &frame.cols))
        })
        .collect();
    let mut out_columns = Vec::with_capacity(items.len());
    for (_, e) in &items {
        let mut refs = HashSet::new();
        let par = parallel::should_parallelize(frame.len, threads)
            && collect_columns(e, &frame.cols, &mut refs).is_some();
        if par {
            let chunks = parallel::run_morsels(frame.len, threads, "project", |_, range| {
                eval_vec(e, &slice_frame(&frame, &refs, &range))
            })?;
            out_columns.push(concat_column(derive_type(e, &frame.cols), chunks));
        } else {
            out_columns.push(eval_vec(e, &frame)?);
        }
    }
    let out = Batch::new(out_cols, out_columns, frame.len);

    // ORDER BY resolves output aliases first, then input columns.
    order_and_page(stmt, out, Some(&frame))
}

/// Collect the frame columns `e` reads into `out`. `None` means `e` is
/// not morsel-eligible: either a node that would take `eval_vec`'s
/// row-wise fallback (CASE, IN-list, subquery, star, window, aggregate
/// call — lazy or error-producing shapes whose exact behavior the
/// serial path owns), or a column reference that fails to resolve
/// (the serial path must produce that error).
pub(crate) fn collect_columns(
    e: &SqlExpr,
    cols: &[BoundCol],
    out: &mut HashSet<usize>,
) -> Option<()> {
    match e {
        SqlExpr::Column { qualifier, name } => {
            out.insert(resolve_column(cols, qualifier.as_deref(), name).ok()?);
        }
        SqlExpr::Literal(_) => {}
        SqlExpr::Binary { lhs, rhs, .. } => {
            collect_columns(lhs, cols, out)?;
            collect_columns(rhs, cols, out)?;
        }
        SqlExpr::Not(inner) | SqlExpr::Neg(inner) => collect_columns(inner, cols, out)?,
        SqlExpr::Func { name, args, .. } if !is_aggregate_name(name) => {
            for a in args {
                collect_columns(a, cols, out)?;
            }
        }
        SqlExpr::Cast { expr: inner, .. } => collect_columns(inner, cols, out)?,
        SqlExpr::IsNull { expr: inner, .. } => collect_columns(inner, cols, out)?,
        _ => return None,
    }
    Some(())
}

/// A morsel-local view of `f`: columns in `refs` are sliced to `range`,
/// the rest become zero-length placeholders. Safe because `refs` is
/// exactly the column set the expression reads (per
/// [`collect_columns`]), and eligible expressions never materialize
/// rows.
pub(crate) fn slice_frame(f: &ColFrame, refs: &HashSet<usize>, range: &Range<usize>) -> ColFrame {
    let columns = f
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if refs.contains(&i) {
                c.slice(range.start, range.len())
            } else {
                ColumnVec::Cells(Vec::new())
            }
        })
        .collect();
    ColFrame { cols: f.cols.clone(), columns, len: range.len() }
}

/// Indices (offset by `base`) of mask slots that are definitely TRUE.
pub(crate) fn collect_keep(mask: &ColumnVec, base: usize, keep: &mut Vec<usize>) {
    match mask {
        ColumnVec::Bool(d, v) if !v.any_null() => {
            for (i, &b) in d.iter().enumerate() {
                if b {
                    keep.push(base + i);
                }
            }
        }
        m => {
            for i in 0..m.len() {
                if matches!(m.cell_at(i), Cell::Bool(true)) {
                    keep.push(base + i);
                }
            }
        }
    }
}

/// Gather `idx` rows of every frame column, splitting large gathers
/// across workers. Each chunk `take`s from the shared source columns,
/// so chunk storage classes always match and in-order appends rebuild
/// exactly the serial `take` result.
fn take_frame(f: &ColFrame, idx: &[usize], threads: usize) -> Result<ColFrame, DbError> {
    if !parallel::should_parallelize(idx.len(), threads) || f.columns.is_empty() {
        return Ok(f.take(idx));
    }
    let chunks = parallel::run_morsels(idx.len(), threads, "gather", |_, range| {
        let slice = &idx[range];
        Ok(f.columns.iter().map(|c| c.take(slice)).collect::<Vec<_>>())
    })?;
    Ok(ColFrame { cols: f.cols.clone(), columns: concat_columns(chunks), len: idx.len() })
}

/// Concatenate per-chunk column sets (one `Vec<ColumnVec>` per morsel,
/// all the same width) into whole columns, in chunk order.
fn concat_columns(chunks: Vec<Vec<ColumnVec>>) -> Vec<ColumnVec> {
    let mut it = chunks.into_iter();
    let mut out = it.next().unwrap_or_default();
    for chunk in it {
        for (dst, src) in out.iter_mut().zip(chunk) {
            dst.append(src);
        }
    }
    out
}

/// Concatenate per-morsel evaluation results into one column with the
/// *same storage class the serial path would pick*. Uniform chunks
/// append directly (the common case: slices and kernels are
/// class-stable). Mixed chunks — e.g. an all-NULL morsel typed from the
/// declared type next to a value-typed morsel — re-atomize through one
/// whole-column `from_cells`, which is byte-for-byte the serial
/// construction.
fn concat_column(ty: PgType, chunks: Vec<ColumnVec>) -> ColumnVec {
    let uniform = chunks
        .windows(2)
        .all(|w| std::mem::discriminant(&w[0]) == std::mem::discriminant(&w[1]));
    let mut it = chunks.into_iter();
    let Some(mut first) = it.next() else { return ColumnVec::empty(ty) };
    if uniform {
        for c in it {
            first.append(c);
        }
        return first;
    }
    let mut cells = first.into_cells();
    for c in it {
        cells.extend(c.into_cells());
    }
    ColumnVec::from_cells(ty, cells)
}

/// ORDER BY + OFFSET/LIMIT over an output batch. `input` supplies the
/// pre-projection columns for ORDER BY resolution in non-aggregate
/// blocks (output aliases take precedence); aggregate output orders
/// over its own columns only, exactly like the row pipeline.
fn order_and_page(stmt: &SelectStmt, out: Batch, input: Option<&ColFrame>) -> Result<Batch, DbError> {
    let mut out = out;
    if !stmt.order_by.is_empty() {
        let mut cols: Vec<BoundCol> = out
            .schema
            .iter()
            .map(|c| BoundCol { qualifier: None, name: c.name.clone(), ty: c.ty })
            .collect();
        let mut columns = out.columns.clone();
        if let Some(f) = input {
            cols.extend(f.cols.iter().cloned());
            columns.extend(f.columns.iter().cloned());
        }
        let combined = ColFrame { cols, columns, len: out.rows() };
        let mut key_cells: Vec<Vec<Cell>> = Vec::with_capacity(stmt.order_by.len());
        for (e, _) in &stmt.order_by {
            key_cells.push(eval_vec(e, &combined)?.to_cells());
        }
        let mut idx: Vec<usize> = (0..out.rows()).collect();
        idx.sort_by(|&a, &b| {
            for (k, (_, desc)) in key_cells.iter().zip(&stmt.order_by) {
                let ord = k[a].sort_cmp(&k[b]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out = out.take(&idx);
    }
    let offset = stmt.offset.unwrap_or(0) as usize;
    let limit = stmt.limit.map(|l| l as usize);
    if offset > 0 || limit.is_some() {
        let n = out.rows();
        let start = offset.min(n);
        let end = limit.map_or(n, |l| start.saturating_add(l).min(n));
        let idx: Vec<usize> = (start..end).collect();
        out = out.take(&idx);
    }
    Ok(out)
}

/// Aggregation over a batch: a narrow vectorized fast path for the
/// common shapes, otherwise materialize and delegate to the row
/// pipeline's [`aggregate_block`] (the semantics of aggregate laziness
/// — HAVING gating item evaluation, empty groups skipping resolution —
/// live there and are not worth duplicating).
fn aggregate_batch(stmt: &SelectStmt, frame: ColFrame, threads: usize) -> Result<Batch, DbError> {
    if let Some(out) = aggregate_batch_fast(stmt, &frame, threads) {
        return order_and_page(stmt, out, None);
    }
    aggregate_block(stmt, frame.to_frame()).map(Batch::from_rows)
}

/// One aggregate item the fast path understands.
enum FastAgg {
    /// Bare column: the group's first-row value (group keys are
    /// constant within a group; the row pipeline allows any column).
    Col(usize),
    Lit(Cell),
    CountStar,
    /// count/sum/avg/min/max over one plain column; `distinct` dedups
    /// the group's non-NULL values by [`CellKey`] (retain-first) before
    /// folding, exactly like the row pipeline's `dedup_cells`.
    Agg { kind: AggKind, col: usize, distinct: bool },
}

#[derive(Clone, Copy, PartialEq)]
enum AggKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Vectorized aggregation for: no HAVING, bare-column group keys, and
/// items that are bare columns, literals, `count(*)`, or
/// count/sum/avg/min/max — plain or DISTINCT — over one column of
/// Int/Float storage (count: any storage). Returns `None` for anything
/// else — including any resolution failure, whose error (or non-error
/// over empty input) the row pipeline must produce.
fn aggregate_batch_fast(stmt: &SelectStmt, frame: &ColFrame, threads: usize) -> Option<Batch> {
    if stmt.having.is_some() {
        return None;
    }
    let mut key_cols = Vec::with_capacity(stmt.group_by.len());
    for e in &stmt.group_by {
        let SqlExpr::Column { qualifier, name } = e else { return None };
        key_cols.push(resolve_column(&frame.cols, qualifier.as_deref(), name).ok()?);
    }
    let mut items: Vec<(Option<String>, &SqlExpr, FastAgg)> = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        let SelectItem::Expr { expr, alias } = item else { return None };
        let fast = match expr {
            SqlExpr::Column { qualifier, name } => {
                FastAgg::Col(resolve_column(&frame.cols, qualifier.as_deref(), name).ok()?)
            }
            SqlExpr::Literal(c) => FastAgg::Lit(c.clone()),
            SqlExpr::Func { name, args, distinct } if is_aggregate_name(name) => {
                if name == "count" && matches!(args.first(), Some(SqlExpr::Star)) {
                    // count(*) short-circuits before DISTINCT handling
                    // in the row pipeline too.
                    FastAgg::CountStar
                } else {
                    if args.len() != 1 {
                        return None;
                    }
                    let SqlExpr::Column { qualifier, name: cname } = &args[0] else {
                        return None;
                    };
                    let idx = resolve_column(&frame.cols, qualifier.as_deref(), cname).ok()?;
                    let kind = match name.as_str() {
                        "count" => AggKind::Count,
                        "sum" => AggKind::Sum,
                        "avg" => AggKind::Avg,
                        "min" => AggKind::Min,
                        "max" => AggKind::Max,
                        _ => return None,
                    };
                    // sum/avg/min/max carry f64-mediated semantics that
                    // this path replicates only for numeric storage;
                    // temporal/text/bool/mixed columns take the oracle
                    // path.
                    if kind != AggKind::Count
                        && !matches!(
                            frame.columns[idx],
                            ColumnVec::Int(..) | ColumnVec::Float(..)
                        )
                    {
                        return None;
                    }
                    FastAgg::Agg { kind, col: idx, distinct: *distinct }
                }
            }
            _ => return None,
        };
        items.push((alias.clone(), expr, fast));
    }

    // Hash grouping on canonical keys (first-seen group order). Large
    // inputs build per-morsel partial tables in parallel and merge them
    // in morsel order — see [`parallel_groups`] for why that merge is
    // bit-identical to the serial scan.
    let n = frame.len;
    let par = parallel::should_parallelize(n, threads);
    let groups: Vec<Vec<usize>> = if stmt.group_by.is_empty() {
        vec![(0..n).collect()]
    } else if par {
        parallel_groups(frame, &key_cols, threads).ok()?
    } else {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut index: HashMap<Vec<CellKey>, usize> = HashMap::with_capacity(n);
        for i in 0..n {
            let key: Vec<CellKey> =
                key_cols.iter().map(|&c| frame.columns[c].key_at(i)).collect();
            match index.entry(key) {
                Entry::Occupied(e) => groups[*e.get()].push(i),
                Entry::Vacant(v) => {
                    v.insert(groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        groups
    };

    let out_cols: Vec<Column> = items
        .iter()
        .enumerate()
        .map(|(i, (alias, e, _))| {
            let name = alias.clone().unwrap_or_else(|| default_output_name(e, i));
            Column::new(name, derive_type(e, &frame.cols))
        })
        .collect();
    let mut out_columns = Vec::with_capacity(items.len());
    for (_, e, fast) in &items {
        // Folds are per-group; groups chunk across workers, and the
        // group-ordered cell list feeds one whole-column `from_cells`,
        // so both values (per-group ascending-index folds) and storage
        // class match the serial construction exactly.
        let cells: Vec<Cell> = if par && groups.len() > 1 {
            let ranges = parallel::even_ranges(groups.len(), threads * 4);
            parallel::run_ranges(ranges, threads, "aggregate", |_, range| {
                Ok(groups[range]
                    .iter()
                    .map(|g| compute_fast_agg(fast, frame, g))
                    .collect::<Vec<Cell>>())
            })
            .ok()?
            .concat()
        } else {
            groups.iter().map(|g| compute_fast_agg(fast, frame, g)).collect()
        };
        out_columns.push(ColumnVec::from_cells(derive_type(e, &frame.cols), cells));
    }
    Some(Batch::new(out_cols, out_columns, groups.len()))
}

/// Parallel hash grouping: each morsel builds a partial table mapping
/// key → row indices *in local first-seen order*; the serial merge then
/// walks partials in morsel order. Because morsels tile the input in
/// row order, "first seen across morsel-ordered partials" is the same
/// group order as "first seen in a serial scan", and extending group
/// index lists in morsel order keeps every group's indices ascending —
/// so downstream folds see rows in exactly the serial order.
fn parallel_groups(
    frame: &ColFrame,
    key_cols: &[usize],
    threads: usize,
) -> Result<Vec<Vec<usize>>, DbError> {
    let partials = parallel::run_morsels(frame.len, threads, "group", |_, range| {
        let mut order: Vec<(Vec<CellKey>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<CellKey>, usize> = HashMap::new();
        for i in range {
            let key: Vec<CellKey> =
                key_cols.iter().map(|&c| frame.columns[c].key_at(i)).collect();
            match index.entry(key) {
                Entry::Occupied(e) => order[*e.get()].1.push(i),
                Entry::Vacant(v) => {
                    order.push((v.key().clone(), vec![i]));
                    v.insert(order.len() - 1);
                }
            }
        }
        Ok(order)
    })?;
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut index: HashMap<Vec<CellKey>, usize> = HashMap::new();
    for part in partials {
        for (key, idxs) in part {
            match index.entry(key) {
                Entry::Occupied(e) => groups[*e.get()].extend(idxs),
                Entry::Vacant(v) => {
                    v.insert(groups.len());
                    groups.push(idxs);
                }
            }
        }
    }
    Ok(groups)
}

/// One fast-path aggregate over one group, value-identical to the row
/// pipeline's `compute_aggregate` for the supported shapes (including
/// f64-accumulation order and NaN-keeps-current min/max folding).
fn compute_fast_agg(fast: &FastAgg, frame: &ColFrame, group: &[usize]) -> Cell {
    match fast {
        FastAgg::Col(idx) => match group.first() {
            Some(&i) => frame.columns[*idx].cell_at(i),
            None => Cell::Null,
        },
        FastAgg::Lit(c) => c.clone(),
        FastAgg::CountStar => Cell::Int(group.len() as i64),
        FastAgg::Agg { kind, col, distinct } => {
            let col = &frame.columns[*col];
            if *distinct {
                // The row pipeline's DISTINCT order of operations:
                // drop NULLs first, then dedup by canonical CellKey
                // keeping each value's *first* occurrence, then fold in
                // that (ascending-index) order.
                let mut seen: HashSet<CellKey> = HashSet::new();
                let mut kept: Vec<usize> = Vec::new();
                for &i in group {
                    if !col.is_null(i) && seen.insert(col.key_at(i)) {
                        kept.push(i);
                    }
                }
                if *kind == AggKind::Count {
                    return Cell::Int(kept.len() as i64);
                }
                return match col {
                    ColumnVec::Int(d, _) => {
                        fold_numeric(*kind, kept.iter().map(|&i| d[i]), |x| x as f64, Cell::Int, true)
                    }
                    ColumnVec::Float(d, _) => {
                        fold_numeric(*kind, kept.iter().map(|&i| d[i]), |x| x, Cell::Float, false)
                    }
                    _ => unreachable!("gated by aggregate_batch_fast"),
                };
            }
            if *kind == AggKind::Count {
                return Cell::Int(group.iter().filter(|&&i| !col.is_null(i)).count() as i64);
            }
            match col {
                ColumnVec::Int(d, v) => {
                    fold_numeric(*kind, group.iter().filter(|&&i| !v.is_null(i)).map(|&i| d[i]),
                        |x| x as f64, Cell::Int, true)
                }
                ColumnVec::Float(d, v) => {
                    fold_numeric(*kind, group.iter().filter(|&&i| !v.is_null(i)).map(|&i| d[i]),
                        |x| x, Cell::Float, false)
                }
                _ => unreachable!("gated by aggregate_batch_fast"),
            }
        }
    }
}

/// Shared sum/avg/min/max fold over a typed numeric iterator.
///
/// `as_f64` mirrors `Cell::as_f64`; `wrap` rebuilds the storage cell;
/// `int_sum` applies the row pipeline's all-Int rule (`sum` of an
/// integer column comes back as `Int(f64_total as i64)`).
fn fold_numeric<T: Copy>(
    kind: AggKind,
    values: impl Iterator<Item = T>,
    as_f64: impl Fn(T) -> f64,
    wrap: impl Fn(T) -> Cell,
    int_sum: bool,
) -> Cell {
    match kind {
        AggKind::Sum | AggKind::Avg => {
            let mut acc = 0.0f64;
            let mut count = 0usize;
            for v in values {
                acc += as_f64(v);
                count += 1;
            }
            if count == 0 {
                Cell::Null
            } else if kind == AggKind::Avg {
                Cell::Float(acc / count as f64)
            } else if int_sum {
                Cell::Int(acc as i64)
            } else {
                Cell::Float(acc)
            }
        }
        AggKind::Min | AggKind::Max => {
            let mut best: Option<T> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    // Replace only on a strict ordering, exactly like
                    // fold_extreme: incomparable (NaN) keeps current.
                    Some(b) => match as_f64(v).partial_cmp(&as_f64(b)) {
                        Some(std::cmp::Ordering::Greater) if kind == AggKind::Max => v,
                        Some(std::cmp::Ordering::Less) if kind == AggKind::Min => v,
                        _ => b,
                    },
                });
            }
            best.map(wrap).unwrap_or(Cell::Null)
        }
        AggKind::Count => unreachable!("handled by caller"),
    }
}

/// Vectorized expression evaluation over a frame.
///
/// Eager nodes apply the row pipeline's scalar kernels per element
/// (identical values; error *ordering* may differ column-major). The
/// lazy nodes (`CASE`, `IN (list)`) and everything exotic fall back to
/// row-wise [`eval`] over one reused scratch row — no whole-frame
/// row-major materialization, no per-row `Vec` allocation.
pub(crate) fn eval_vec(e: &SqlExpr, f: &ColFrame) -> Result<ColumnVec, DbError> {
    let n = f.len;
    match e {
        SqlExpr::Column { qualifier, name } => {
            let idx = resolve_column(&f.cols, qualifier.as_deref(), name)?;
            Ok(f.columns[idx].clone())
        }
        SqlExpr::Literal(c) => Ok(ColumnVec::broadcast(c, n)),
        SqlExpr::Binary { op, lhs, rhs } => {
            let lv = eval_vec(lhs, f)?;
            let rv = eval_vec(rhs, f)?;
            if *op == SqlBinOp::And || *op == SqlBinOp::Or {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(kleene(*op, &lv.cell_at(i), &rv.cell_at(i)));
                }
                return Ok(ColumnVec::from_cells(PgType::Bool, out));
            }
            if let Some(v) = binary_fast(*op, &lv, &rv) {
                return Ok(v);
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(expr::binary(*op, &lv.cell_at(i), &rv.cell_at(i))?);
            }
            Ok(ColumnVec::from_cells(derive_type(e, &f.cols), out))
        }
        SqlExpr::Not(inner) => {
            let v = eval_vec(inner, f)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match v.cell_at(i) {
                    Cell::Null => Cell::Null,
                    Cell::Bool(b) => Cell::Bool(!b),
                    other => return Err(DbError::exec(format!("NOT applied to {other:?}"))),
                });
            }
            Ok(ColumnVec::from_cells(PgType::Bool, out))
        }
        SqlExpr::Neg(inner) => {
            let v = eval_vec(inner, f)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match v.cell_at(i) {
                    Cell::Null => Cell::Null,
                    Cell::Int(x) => Cell::Int(-x),
                    Cell::Float(x) => Cell::Float(-x),
                    other => return Err(DbError::exec(format!("cannot negate {other:?}"))),
                });
            }
            Ok(ColumnVec::from_cells(derive_type(e, &f.cols), out))
        }
        SqlExpr::Func { name, args, .. } if !is_aggregate_name(name) => {
            let mut avs = Vec::with_capacity(args.len());
            for a in args {
                avs.push(eval_vec(a, f)?);
            }
            let mut out = Vec::with_capacity(n);
            let mut buf: Vec<Cell> = Vec::with_capacity(avs.len());
            for i in 0..n {
                buf.clear();
                buf.extend(avs.iter().map(|av| av.cell_at(i)));
                out.push(expr::scalar_function(name, &buf)?);
            }
            Ok(ColumnVec::from_cells(derive_type(e, &f.cols), out))
        }
        SqlExpr::Cast { expr: inner, ty } => {
            let v = eval_vec(inner, f)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(expr::cast(&v.cell_at(i), *ty)?);
            }
            Ok(ColumnVec::from_cells(*ty, out))
        }
        SqlExpr::IsNull { expr: inner, negated } => {
            let v = eval_vec(inner, f)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(Cell::Bool(v.is_null(i) != *negated));
            }
            Ok(ColumnVec::from_cells(PgType::Bool, out))
        }
        // CASE and IN (list) are lazy per row; Star/window/subquery
        // nodes and aggregate calls produce the row pipeline's exact
        // errors. All take the row-wise fallback, assembling each row
        // into one reused scratch buffer.
        other => {
            let mut out = Vec::with_capacity(n);
            let mut row: Vec<Cell> = Vec::with_capacity(f.columns.len());
            for i in 0..n {
                row.clear();
                row.extend(f.columns.iter().map(|c| c.cell_at(i)));
                out.push(eval(other, &f.cols, &row)?);
            }
            Ok(ColumnVec::from_cells(derive_type(other, &f.cols), out))
        }
    }
}

/// Typed no-NULL kernels for the hot comparisons and Int arithmetic,
/// value-identical to `expr::arith`/`sql_cmp`'s f64-mediated semantics
/// (including `wrapping_*` on the post-f64 i64 round trip). Anything
/// with NULLs, mixed storage, division, or NaN-capable comparison goes
/// per-element through the scalar kernels instead.
fn binary_fast(op: SqlBinOp, l: &ColumnVec, r: &ColumnVec) -> Option<ColumnVec> {
    use SqlBinOp::*;
    fn zip<T: Copy, U>(a: &[T], b: &[T], f: impl Fn(T, T) -> U) -> Vec<U> {
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    }
    match (l, r) {
        (ColumnVec::Int(a, va), ColumnVec::Int(b, vb)) if !va.any_null() && !vb.any_null() => {
            let valid = colstore::Validity::all_valid(a.len());
            // arith() routes integer math through f64 (as_f64) and back
            // via `as i64` before the wrapping op; comparisons are f64
            // too — replicate both exactly, quirks included.
            let f = |x: i64| x as f64;
            let iw = |x: i64| (x as f64) as i64;
            match op {
                Add => Some(ColumnVec::Int(zip(a, b, |x, y| iw(x).wrapping_add(iw(y))), valid)),
                Sub => Some(ColumnVec::Int(zip(a, b, |x, y| iw(x).wrapping_sub(iw(y))), valid)),
                Mul => Some(ColumnVec::Int(zip(a, b, |x, y| iw(x).wrapping_mul(iw(y))), valid)),
                Eq => Some(ColumnVec::Bool(zip(a, b, |x, y| f(x) == f(y)), valid)),
                Neq => Some(ColumnVec::Bool(zip(a, b, |x, y| f(x) != f(y)), valid)),
                Lt => Some(ColumnVec::Bool(zip(a, b, |x, y| f(x) < f(y)), valid)),
                Le => Some(ColumnVec::Bool(zip(a, b, |x, y| f(x) <= f(y)), valid)),
                Gt => Some(ColumnVec::Bool(zip(a, b, |x, y| f(x) > f(y)), valid)),
                Ge => Some(ColumnVec::Bool(zip(a, b, |x, y| f(x) >= f(y)), valid)),
                _ => None,
            }
        }
        (ColumnVec::Float(a, va), ColumnVec::Float(b, vb)) if !va.any_null() && !vb.any_null() => {
            let valid = colstore::Validity::all_valid(a.len());
            match op {
                // IEEE arithmetic, no error paths (float÷0 is also IEEE
                // but Div shares the both_int dispatch — keep it scalar).
                Add => Some(ColumnVec::Float(zip(a, b, |x, y| x + y), valid)),
                Sub => Some(ColumnVec::Float(zip(a, b, |x, y| x - y), valid)),
                Mul => Some(ColumnVec::Float(zip(a, b, |x, y| x * y), valid)),
                // eq_not_null's PG float rule: NaN equals NaN.
                Eq => Some(ColumnVec::Bool(
                    zip(a, b, |x, y| x == y || (x.is_nan() && y.is_nan())),
                    valid,
                )),
                Neq => Some(ColumnVec::Bool(
                    zip(a, b, |x, y| !(x == y || (x.is_nan() && y.is_nan()))),
                    valid,
                )),
                _ => None,
            }
        }
        _ => None,
    }
}

/// One side's join key, or `None` when a NULL key column under plain
/// `=` disqualifies the row (the batch dual of `join_key`).
fn batch_join_key(
    columns: &[ColumnVec],
    pairs: &[EquiPair],
    right_side: bool,
    i: usize,
) -> Option<Vec<CellKey>> {
    let mut key = Vec::with_capacity(pairs.len());
    for p in pairs {
        let c = &columns[if right_side { p.right } else { p.left }];
        if c.is_null(i) && !p.nulls_match {
            return None;
        }
        key.push(c.key_at(i));
    }
    Some(key)
}

/// Evaluate a FROM item into a columnar frame.
fn eval_from_batch(src: &dyn TableSource, item: &FromItem) -> Result<ColFrame, DbError> {
    match item {
        FromItem::Table { name, alias } => {
            let mut batch =
                src.get_table_batch(name).ok_or_else(|| DbError::undefined_table(name))?;
            let q = alias.clone().or_else(|| Some(name.clone()));
            let len = batch.rows();
            let cols = batch
                .schema
                .iter()
                .map(|c| BoundCol { qualifier: q.clone(), name: c.name.clone(), ty: c.ty })
                .collect();
            Ok(ColFrame { cols, columns: std::mem::take(&mut batch.columns), len })
        }
        FromItem::Subquery { query, alias } => {
            let mut batch = run_select_batch(src, query)?;
            let len = batch.rows();
            let cols = batch
                .schema
                .iter()
                .map(|c| BoundCol {
                    qualifier: Some(alias.clone()),
                    name: c.name.clone(),
                    ty: c.ty,
                })
                .collect();
            Ok(ColFrame { cols, columns: std::mem::take(&mut batch.columns), len })
        }
        FromItem::Values { rows, alias, columns } => {
            let mut data = Vec::with_capacity(rows.len());
            for r in rows {
                let mut row = Vec::with_capacity(r.len());
                for e in r {
                    row.push(eval(e, &[], &[])?);
                }
                data.push(row);
            }
            let width = data.first().map(|r| r.len()).unwrap_or(columns.len());
            let mut cols = Vec::with_capacity(width);
            for i in 0..width {
                let name =
                    columns.get(i).cloned().unwrap_or_else(|| format!("column{}", i + 1));
                let ty = data
                    .iter()
                    .map(|r| &r[i])
                    .find(|c| !c.is_null())
                    .map(|c| c.natural_type())
                    .unwrap_or(PgType::Text);
                cols.push(BoundCol { qualifier: Some(alias.clone()), name, ty });
            }
            Ok(ColFrame::from_parts(cols, data))
        }
        FromItem::Join { kind, left, right, on } => {
            let l = eval_from_batch(src, left)?;
            let r = eval_from_batch(src, right)?;
            let mut cols = l.cols.clone();
            cols.extend(r.cols.clone());
            match kind {
                JoinType::Cross => {
                    let total = l.len * r.len;
                    let mut lidx = Vec::with_capacity(total);
                    let mut ridx = Vec::with_capacity(total);
                    for li in 0..l.len {
                        for ri in 0..r.len {
                            lidx.push(li);
                            ridx.push(ri);
                        }
                    }
                    let mut columns: Vec<ColumnVec> =
                        l.columns.iter().map(|c| c.take(&lidx)).collect();
                    columns.extend(r.columns.iter().map(|c| c.take(&ridx)));
                    Ok(ColFrame { cols, columns, len: total })
                }
                JoinType::Inner | JoinType::Left => {
                    let cond =
                        on.as_ref().ok_or_else(|| DbError::syntax("JOIN requires ON"))?;
                    if let Some(pairs) = extract_equi_pairs(cond, &l.cols, &r.cols) {
                        // Hash equi-join: build on the right (serial —
                        // the built table is shared read-only), probe
                        // the left in order, gather both sides by index
                        // (left-major output, right insertion order —
                        // identical to the row pipeline's hash_join).
                        // Large probe sides partition across workers;
                        // per-morsel (lidx, ridx) runs concatenate in
                        // morsel order, i.e. the serial probe output.
                        let threads = src.exec_threads();
                        let mut index: HashMap<Vec<CellKey>, Vec<usize>> =
                            HashMap::with_capacity(r.len);
                        for ri in 0..r.len {
                            if let Some(k) = batch_join_key(&r.columns, &pairs, true, ri) {
                                index.entry(k).or_default().push(ri);
                            }
                        }
                        let probe = |range: Range<usize>| {
                            let mut lidx = Vec::new();
                            let mut ridx: Vec<Option<usize>> = Vec::new();
                            for li in range {
                                if let Some(matches) =
                                    batch_join_key(&l.columns, &pairs, false, li)
                                        .and_then(|k| index.get(&k))
                                {
                                    for &ri in matches {
                                        lidx.push(li);
                                        ridx.push(Some(ri));
                                    }
                                    continue;
                                }
                                if *kind == JoinType::Left {
                                    lidx.push(li);
                                    ridx.push(None);
                                }
                            }
                            (lidx, ridx)
                        };
                        let (lidx, ridx) = if parallel::should_parallelize(l.len, threads) {
                            let chunks = parallel::run_morsels(
                                l.len,
                                threads,
                                "join_probe",
                                |_, range| Ok(probe(range)),
                            )?;
                            let mut lidx = Vec::new();
                            let mut ridx = Vec::new();
                            for (lc, rc) in chunks {
                                lidx.extend(lc);
                                ridx.extend(rc);
                            }
                            (lidx, ridx)
                        } else {
                            probe(0..l.len)
                        };
                        let gather = |range: Range<usize>| {
                            let mut columns: Vec<ColumnVec> = l
                                .columns
                                .iter()
                                .map(|c| c.take(&lidx[range.clone()]))
                                .collect();
                            columns.extend(
                                r.columns.iter().map(|c| c.take_opt(&ridx[range.clone()])),
                            );
                            columns
                        };
                        let columns = if parallel::should_parallelize(lidx.len(), threads)
                            && !cols.is_empty()
                        {
                            concat_columns(parallel::run_morsels(
                                lidx.len(),
                                threads,
                                "join_gather",
                                |_, range| Ok(gather(range)),
                            )?)
                        } else {
                            gather(0..lidx.len())
                        };
                        Ok(ColFrame { cols, columns, len: lidx.len() })
                    } else {
                        // Non-equi conditions: materialize and run the
                        // row pipeline's exact nested loop.
                        let lrows = l.materialize();
                        let rrows = r.materialize();
                        let mut rows = Vec::new();
                        for lr in &lrows {
                            let mut matched = false;
                            for rr in &rrows {
                                let mut row = lr.clone();
                                row.extend(rr.clone());
                                if matches!(eval(cond, &cols, &row)?, Cell::Bool(true)) {
                                    rows.push(row);
                                    matched = true;
                                }
                            }
                            if !matched && *kind == JoinType::Left {
                                let mut row = lr.clone();
                                row.extend(std::iter::repeat_n(Cell::Null, r.cols.len()));
                                rows.push(row);
                            }
                        }
                        Ok(ColFrame::from_parts(cols, rows))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Stmt;
    use crate::sql::parse_statement;

    /// A source with no tables at all — everything must project over
    /// the unit relation.
    struct NoTables;
    impl TableSource for NoTables {
        fn get_table(&self, _name: &str) -> Option<(Vec<Column>, Vec<Vec<Cell>>)> {
            None
        }
    }

    fn select(sql: &str) -> Batch {
        match parse_statement(sql).unwrap() {
            Stmt::Select(s) => run_select_batch(&NoTables, &s).unwrap(),
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    /// The FROM-less scalar source is the explicit zero-column, one-row
    /// unit relation (`Batch::unit`), not the row pipeline's
    /// `vec![vec![]]` hack — and it projects exactly one row.
    #[test]
    fn from_less_select_projects_over_the_unit_relation() {
        assert_eq!(ColFrame::unit().len, 1);
        assert!(ColFrame::unit().cols.is_empty());
        assert_eq!(Batch::unit().rows(), 1);
        assert!(Batch::unit().schema.is_empty());

        let b = select("SELECT 1 + 1 AS two");
        assert_eq!(b.rows(), 1);
        assert_eq!(b.schema.len(), 1);
        assert_eq!(b.columns[0].cell_at(0), Cell::Int(2));
    }

    /// A filtered-away unit row yields zero rows, still zero columns
    /// worth of input — the count survives without any column storage.
    #[test]
    fn unit_relation_row_count_survives_where() {
        let b = select("SELECT 1 AS one WHERE false");
        assert_eq!(b.rows(), 0);
        let b = select("SELECT 1 AS one WHERE true");
        assert_eq!(b.rows(), 1);
    }
}
