//! Canonical hashable keys over runtime cells — re-exported from
//! [`colstore`].
//!
//! `CellKey` moved to the shared `colstore` crate alongside `Cell`
//! (DESIGN §10): structural batch comparison in the differential
//! harness needs the same `not_distinct`-faithful projection the
//! executor's grouping, DISTINCT, set operations, and hash joins use.
//! This module keeps the historical `exec::key::*` paths compiling.

pub use colstore::key::{row_key, CellKey};
