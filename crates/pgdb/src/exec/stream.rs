//! True streaming SELECT execution (DESIGN §12).
//!
//! The narrow-but-hot shape — a single-block scan/filter/project over
//! one stored table, no aggregation, no ordering, no paging — can
//! answer without ever materializing its result: each pull evaluates
//! one ~64K-row morsel of the source (slice → filter → project) and
//! yields it as a bounded [`Batch`] chunk. Peak resident *result* state
//! is one chunk, so the 64 MiB wire-frame ceiling becomes flow control
//! rather than a failure mode.
//!
//! Everything outside the gate falls back to the materializing executor
//! and is re-chunked for transport (bounded frames, not bounded peak
//! memory) — see `Session::execute_stream`.

use super::columnar::{collect_columns, collect_keep, eval_vec, slice_frame, ColFrame};
use super::expr::{derive_type, BoundCol};
use super::parallel::MORSEL_ROWS;
use super::{default_output_name, TableSource};
use crate::engine::DbError;
use crate::sql::ast::*;
use crate::types::Column;
use colstore::{Batch, BatchStream, ColumnVec};
use std::collections::HashSet;

/// Build a true-streaming plan for `stmt`, or `None` when the statement
/// is outside the streamable gate (the caller falls back to the
/// materializing path, which also owns producing any resolution error).
///
/// The gate: single block (no set ops), no aggregates / GROUP BY /
/// HAVING / window functions, no ORDER BY / LIMIT / OFFSET (all three
/// need the full result), FROM is exactly one stored table, and every
/// projected or filtered expression is morsel-eligible per
/// [`collect_columns`] (vectorizable and fully resolvable).
pub(crate) fn try_select_stream(
    src: &dyn TableSource,
    stmt: &SelectStmt,
) -> Option<BatchStream<DbError>> {
    if stmt.set_op.is_some()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || !stmt.order_by.is_empty()
        || stmt.limit.is_some()
        || stmt.offset.is_some()
    {
        return None;
    }
    let Some(FromItem::Table { name, alias }) = &stmt.from else { return None };
    let has_agg_or_window = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate() || expr.contains_window(),
        SelectItem::Wildcard => false,
    });
    if has_agg_or_window {
        return None;
    }

    let mut batch = src.get_table_batch(name)?;
    let q = alias.clone().or_else(|| Some(name.clone()));
    let len = batch.rows();
    let cols: Vec<BoundCol> = batch
        .schema
        .iter()
        .map(|c| BoundCol { qualifier: q.clone(), name: c.name.clone(), ty: c.ty })
        .collect();

    // Wildcard expansion, identical to the materializing block.
    let mut items: Vec<(Option<String>, SqlExpr)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for c in &cols {
                    items.push((
                        Some(c.name.clone()),
                        SqlExpr::Column { qualifier: c.qualifier.clone(), name: c.name.clone() },
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => items.push((alias.clone(), expr.clone())),
        }
    }

    // Every expression must be morsel-eligible; `refs` accumulates the
    // union of referenced source columns so unused ones never slice.
    let mut refs = HashSet::new();
    if let Some(pred) = &stmt.where_clause {
        collect_columns(pred, &cols, &mut refs)?;
    }
    for (_, e) in &items {
        collect_columns(e, &cols, &mut refs)?;
    }

    let schema: Vec<Column> = items
        .iter()
        .enumerate()
        .map(|(i, (alias, e))| {
            let name = alias.clone().unwrap_or_else(|| default_output_name(e, i));
            Column::new(name, derive_type(e, &cols))
        })
        .collect();
    let exprs: Vec<SqlExpr> = items.into_iter().map(|(_, e)| e).collect();

    let stream = SelectStream {
        frame: ColFrame { cols, columns: std::mem::take(&mut batch.columns), len },
        where_clause: stmt.where_clause.clone(),
        exprs,
        refs,
        schema: schema.clone(),
        pos: 0,
        done: false,
    };
    Some(BatchStream::new(schema, stream))
}

/// The pull-based morsel pipeline behind [`try_select_stream`].
struct SelectStream {
    frame: ColFrame,
    where_clause: Option<SqlExpr>,
    exprs: Vec<SqlExpr>,
    refs: HashSet<usize>,
    schema: Vec<Column>,
    pos: usize,
    done: bool,
}

impl SelectStream {
    /// Evaluate one source morsel into an output chunk.
    fn chunk(&self, start: usize, len: usize) -> Result<Batch, DbError> {
        let mut sub = slice_frame(&self.frame, &self.refs, &(start..start + len));
        if let Some(pred) = &self.where_clause {
            let mask = eval_vec(pred, &sub)?;
            let mut keep = Vec::new();
            collect_keep(&mask, 0, &mut keep);
            if keep.len() < sub.len {
                // Gather referenced columns only; the placeholders for
                // unreferenced ones are zero-length and must stay
                // untouched (nothing downstream reads them).
                let columns = sub
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if self.refs.contains(&i) {
                            c.take(&keep)
                        } else {
                            ColumnVec::Cells(Vec::new())
                        }
                    })
                    .collect();
                sub = ColFrame { cols: sub.cols, columns, len: keep.len() };
            }
        }
        let mut columns: Vec<ColumnVec> = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            columns.push(eval_vec(e, &sub)?);
        }
        Ok(Batch::new(self.schema.clone(), columns, sub.len))
    }
}

impl Iterator for SelectStream {
    type Item = Result<Batch, DbError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done && self.pos < self.frame.len {
            let start = self.pos;
            let len = MORSEL_ROWS.min(self.frame.len - start);
            self.pos += len;
            match self.chunk(start, len) {
                Ok(b) if b.rows() == 0 => continue, // fully filtered morsel
                Ok(b) => return Some(Ok(b)),
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}
