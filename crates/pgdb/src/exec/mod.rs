//! Query execution: SELECT evaluation over in-memory tables.
//!
//! Two executors share this module (DESIGN §10): the columnar
//! batch-at-a-time engine in [`columnar`] is the default production
//! path, while the original row-major pipeline ([`run_select_rows`])
//! is retained verbatim as its differential oracle — debug builds
//! cross-check every statement against it.

pub mod columnar;
pub mod expr;
pub mod key;
pub mod parallel;
pub mod reference;
pub mod stream;

use crate::engine::DbError;
use crate::sql::ast::*;
use crate::types::{Cell, Column, PgType, Rows};
use colstore::Batch;
use expr::{derive_type, eval, BoundCol};
use key::{row_key, CellKey};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Source of named tables during execution (sessions implement this:
/// temp tables shadow globals shadow catalog virtual tables).
pub trait TableSource {
    /// Fetch a table's schema and rows by name.
    fn get_table(&self, name: &str) -> Option<(Vec<Column>, Vec<Vec<Cell>>)>;

    /// Fetch a table as a columnar batch. The default transposes the
    /// row form; sources with native columnar storage override this to
    /// hand the batch over without per-cell work.
    fn get_table_batch(&self, name: &str) -> Option<Batch> {
        let (columns, rows) = self.get_table(name)?;
        Some(Batch::from_rows(Rows { columns, data: rows }))
    }

    /// Worker count for morsel-driven operators (DESIGN §12). `1` is
    /// the serial path. The default defers to `HQ_EXEC_THREADS` / the
    /// machine's parallelism; sessions override this with their
    /// configured knob.
    fn exec_threads(&self) -> usize {
        parallel::default_exec_threads()
    }
}

/// An intermediate result during execution.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    /// Bound columns (with source qualifiers).
    pub cols: Vec<BoundCol>,
    /// Row data.
    pub rows: Vec<Vec<Cell>>,
}

/// Execute a SELECT statement (columnar engine; see [`columnar`]).
pub fn run_select(src: &dyn TableSource, stmt: &SelectStmt) -> Result<Rows, DbError> {
    columnar::run_select_batch(src, stmt).map(Batch::into_rows)
}

/// Execute a SELECT statement on the retained row-major pipeline — the
/// differential oracle for the columnar engine. Must not be "improved";
/// behavior changes here must be deliberate semantics changes.
pub fn run_select_rows(src: &dyn TableSource, stmt: &SelectStmt) -> Result<Rows, DbError> {
    let mut out = run_block(src, stmt)?;
    // Chained set operations, left-folded. A single block with no set
    // op short-circuits past all dedup work. Across a chain, `seen`
    // carries the key set of the (distinct) accumulated result so
    // UNION never re-deduplicates rows it already admitted; UNION ALL
    // may reintroduce duplicates, which drops the set.
    let mut cursor = &stmt.set_op;
    let mut seen: Option<HashSet<Vec<CellKey>>> = None;
    while let Some((op, rhs)) = cursor {
        let right = run_block(src, rhs)?;
        if right.columns.len() != out.columns.len() {
            return Err(DbError::exec("set operation column count mismatch"));
        }
        match op {
            SetOp::UnionAll => {
                out.data.extend(right.data);
                seen = None;
            }
            SetOp::Union => {
                let set = match seen.as_mut() {
                    Some(set) => set,
                    None => seen.insert(dedup_keyed(&mut out.data)),
                };
                for row in right.data {
                    if set.insert(row_key(&row)) {
                        out.data.push(row);
                    }
                }
            }
            SetOp::Except => {
                let right_keys: HashSet<Vec<CellKey>> =
                    right.data.iter().map(|r| row_key(r)).collect();
                let mut kept = HashSet::with_capacity(out.data.len());
                out.data.retain(|r| {
                    let k = row_key(r);
                    !right_keys.contains(&k) && kept.insert(k)
                });
                seen = Some(kept);
            }
            SetOp::Intersect => {
                let right_keys: HashSet<Vec<CellKey>> =
                    right.data.iter().map(|r| row_key(r)).collect();
                let mut kept = HashSet::with_capacity(out.data.len());
                out.data.retain(|r| {
                    let k = row_key(r);
                    right_keys.contains(&k) && kept.insert(k)
                });
                seen = Some(kept);
            }
        }
        cursor = &rhs.set_op;
    }
    Ok(out)
}

pub(crate) fn contains_subquery(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::InSubquery { .. } => true,
        SqlExpr::Binary { lhs, rhs, .. } => contains_subquery(lhs) || contains_subquery(rhs),
        SqlExpr::Not(i) | SqlExpr::Neg(i) => contains_subquery(i),
        SqlExpr::Func { args, .. } => args.iter().any(contains_subquery),
        SqlExpr::Case { branches, else_result } => {
            branches.iter().any(|(c, r)| contains_subquery(c) || contains_subquery(r))
                || else_result.as_ref().map(|x| contains_subquery(x)).unwrap_or(false)
        }
        SqlExpr::Cast { expr, .. } => contains_subquery(expr),
        SqlExpr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        SqlExpr::IsNull { expr, .. } => contains_subquery(expr),
        _ => false,
    }
}

/// Row equality under `IS NOT DISTINCT FROM` (NULLs equal).
pub fn rows_equal(a: &[Cell], b: &[Cell]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.not_distinct(y))
}

/// Single-pass hash dedup keeping first occurrences; returns the key
/// set of the surviving rows so callers can extend it incrementally.
fn dedup_keyed(rows: &mut Vec<Vec<Cell>>) -> HashSet<Vec<CellKey>> {
    #[cfg(debug_assertions)]
    let naive = (rows.len() <= 64).then(|| {
        let mut copy = rows.clone();
        reference::dedup_rows_naive(&mut copy);
        copy
    });
    let mut seen = HashSet::with_capacity(rows.len());
    rows.retain(|r| seen.insert(row_key(r)));
    #[cfg(debug_assertions)]
    if let Some(naive) = naive {
        debug_assert!(
            rows.len() == naive.len() && rows.iter().zip(&naive).all(|(a, b)| rows_equal(a, b)),
            "hash dedup disagrees with naive dedup: {rows:?} vs {naive:?}"
        );
    }
    seen
}

/// Remove duplicate rows (first occurrence wins), O(n) via [`CellKey`].
pub fn dedup_rows(rows: &mut Vec<Vec<Cell>>) {
    dedup_keyed(rows);
}

/// `EXCEPT`: distinct left rows with no match on the right, O(n + m).
pub fn except_rows(left: &mut Vec<Vec<Cell>>, right: &[Vec<Cell>]) {
    let right_keys: HashSet<Vec<CellKey>> = right.iter().map(|r| row_key(r)).collect();
    let mut kept = HashSet::with_capacity(left.len());
    left.retain(|r| {
        let k = row_key(r);
        !right_keys.contains(&k) && kept.insert(k)
    });
}

/// `INTERSECT`: distinct left rows with a match on the right, O(n + m).
pub fn intersect_rows(left: &mut Vec<Vec<Cell>>, right: &[Vec<Cell>]) {
    let right_keys: HashSet<Vec<CellKey>> = right.iter().map(|r| row_key(r)).collect();
    let mut kept = HashSet::with_capacity(left.len());
    left.retain(|r| {
        let k = row_key(r);
        right_keys.contains(&k) && kept.insert(k)
    });
}

/// `UNION` (distinct): dedup `left` then admit unseen right rows.
pub fn union_rows(left: &mut Vec<Vec<Cell>>, right: Vec<Vec<Cell>>) {
    let mut seen = dedup_keyed(left);
    for row in right {
        if seen.insert(row_key(&row)) {
            left.push(row);
        }
    }
}

/// Group row indices by key cells (first-seen group order), O(n).
pub fn group_indices(keys: Vec<Vec<Cell>>) -> Vec<(Vec<Cell>, Vec<usize>)> {
    let mut groups: Vec<(Vec<Cell>, Vec<usize>)> = Vec::new();
    let mut index: HashMap<Vec<CellKey>, usize> = HashMap::with_capacity(keys.len());
    for (ri, key) in keys.into_iter().enumerate() {
        match index.entry(row_key(&key)) {
            Entry::Occupied(e) => groups[*e.get()].1.push(ri),
            Entry::Vacant(v) => {
                v.insert(groups.len());
                groups.push((key, vec![ri]));
            }
        }
    }
    groups
}

/// Replace uncorrelated `IN (SELECT ...)` subqueries with literal lists
/// by executing each subquery once.
pub(crate) fn resolve_subqueries(e: &SqlExpr, src: &dyn TableSource) -> Result<SqlExpr, DbError> {
    Ok(match e {
        SqlExpr::InSubquery { expr, query, negated } => {
            let rows = run_select(src, query)?;
            if rows.columns.is_empty() {
                return Err(DbError::exec("IN subquery yields no columns"));
            }
            let list = rows
                .data
                .iter()
                .map(|r| SqlExpr::Literal(r[0].clone()))
                .collect();
            SqlExpr::InList {
                expr: Box::new(resolve_subqueries(expr, src)?),
                list,
                negated: *negated,
            }
        }
        SqlExpr::Binary { op, lhs, rhs } => SqlExpr::Binary {
            op: *op,
            lhs: Box::new(resolve_subqueries(lhs, src)?),
            rhs: Box::new(resolve_subqueries(rhs, src)?),
        },
        SqlExpr::Not(i) => SqlExpr::Not(Box::new(resolve_subqueries(i, src)?)),
        SqlExpr::Neg(i) => SqlExpr::Neg(Box::new(resolve_subqueries(i, src)?)),
        SqlExpr::Func { name, args, distinct } => SqlExpr::Func {
            name: name.clone(),
            args: args.iter().map(|a| resolve_subqueries(a, src)).collect::<Result<_, _>>()?,
            distinct: *distinct,
        },
        SqlExpr::Case { branches, else_result } => SqlExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| Ok((resolve_subqueries(c, src)?, resolve_subqueries(r, src)?)))
                .collect::<Result<_, DbError>>()?,
            else_result: match else_result {
                Some(x) => Some(Box::new(resolve_subqueries(x, src)?)),
                None => None,
            },
        },
        SqlExpr::Cast { expr, ty } => {
            SqlExpr::Cast { expr: Box::new(resolve_subqueries(expr, src)?), ty: *ty }
        }
        SqlExpr::InList { expr, list, negated } => SqlExpr::InList {
            expr: Box::new(resolve_subqueries(expr, src)?),
            list: list.iter().map(|a| resolve_subqueries(a, src)).collect::<Result<_, _>>()?,
            negated: *negated,
        },
        SqlExpr::IsNull { expr, negated } => SqlExpr::IsNull {
            expr: Box::new(resolve_subqueries(expr, src)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Execute one SELECT block (no set ops), row-major.
pub(crate) fn run_block(src: &dyn TableSource, stmt: &SelectStmt) -> Result<Rows, DbError> {
    // Uncorrelated subqueries are resolved up front.
    let resolved_where = match &stmt.where_clause {
        Some(p) if contains_subquery(p) => Some(resolve_subqueries(p, src)?),
        _ => None,
    };
    let stmt_storage;
    let stmt = if resolved_where.is_some() {
        stmt_storage = SelectStmt { where_clause: resolved_where, ..stmt.clone() };
        &stmt_storage
    } else {
        stmt
    };

    // FROM.
    let mut frame = match &stmt.from {
        Some(item) => eval_from(src, item)?,
        None => Frame { cols: vec![], rows: vec![vec![]] },
    };

    // WHERE (3VL: keep definite TRUE only).
    if let Some(pred) = &stmt.where_clause {
        let mut kept = Vec::with_capacity(frame.rows.len());
        for row in frame.rows.into_iter() {
            if matches!(eval(pred, &frame.cols, &row)?, Cell::Bool(true)) {
                kept.push(row);
            }
        }
        frame.rows = kept;
    }

    let has_agg = !stmt.group_by.is_empty()
        || stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        });

    if has_agg {
        return aggregate_block(stmt, frame);
    }

    // Window functions: materialize each distinct window expression as a
    // virtual column, then treat items as plain scalars.
    let mut items: Vec<(Option<String>, SqlExpr)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for c in frame.cols.clone() {
                    items.push((
                        Some(c.name.clone()),
                        SqlExpr::Column { qualifier: c.qualifier.clone(), name: c.name },
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => items.push((alias.clone(), expr.clone())),
        }
    }
    let has_window = items.iter().any(|(_, e)| e.contains_window());
    if has_window {
        let mut windows: Vec<SqlExpr> = Vec::new();
        for (_, e) in &items {
            collect_windows(e, &mut windows);
        }
        for (wi, w) in windows.iter().enumerate() {
            let vcol = format!("hq_win_{wi}");
            let values = compute_window(w, &frame)?;
            let ty = match w {
                SqlExpr::WindowFunc { .. } => derive_type(w, &frame.cols),
                _ => PgType::Int8,
            };
            frame.cols.push(BoundCol { qualifier: None, name: vcol.clone(), ty });
            for (row, v) in frame.rows.iter_mut().zip(values) {
                row.push(v);
            }
        }
        // Rewrite items to reference the virtual columns.
        items = items
            .into_iter()
            .map(|(alias, e)| (alias, substitute_windows(e, &windows)))
            .collect();
    }

    // Projection (keep input rows alongside for ORDER BY resolution).
    let out_cols: Vec<Column> = items
        .iter()
        .enumerate()
        .map(|(i, (alias, e))| {
            let name = alias.clone().unwrap_or_else(|| default_output_name(e, i));
            Column::new(name, derive_type(e, &frame.cols))
        })
        .collect();
    let mut projected: Vec<(Vec<Cell>, Vec<Cell>)> = Vec::with_capacity(frame.rows.len());
    for row in &frame.rows {
        let mut out_row = Vec::with_capacity(items.len());
        for (_, e) in &items {
            out_row.push(eval(e, &frame.cols, row)?);
        }
        projected.push((out_row, row.clone()));
    }

    // ORDER BY: output aliases take precedence, then input columns.
    if !stmt.order_by.is_empty() {
        let mut combined_cols: Vec<BoundCol> = out_cols
            .iter()
            .map(|c| BoundCol { qualifier: None, name: c.name.clone(), ty: c.ty })
            .collect();
        combined_cols.extend(frame.cols.iter().cloned());
        let key_of = |pair: &(Vec<Cell>, Vec<Cell>)| -> Result<Vec<Cell>, DbError> {
            let mut combined = pair.0.clone();
            combined.extend(pair.1.clone());
            stmt.order_by.iter().map(|(e, _)| eval(e, &combined_cols, &combined)).collect()
        };
        type SortEntry = (Vec<Cell>, (Vec<Cell>, Vec<Cell>));
        let mut keyed: Vec<SortEntry> = Vec::with_capacity(projected.len());
        for p in projected.into_iter() {
            keyed.push((key_of(&p)?, p));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for ((a, b), (_, desc)) in ka.iter().zip(kb).zip(&stmt.order_by) {
                let ord = a.sort_cmp(b);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        projected = keyed.into_iter().map(|(_, p)| p).collect();
    }

    let mut data: Vec<Vec<Cell>> = projected.into_iter().map(|(o, _)| o).collect();

    // OFFSET / LIMIT.
    let offset = stmt.offset.unwrap_or(0) as usize;
    if offset > 0 {
        data = data.into_iter().skip(offset).collect();
    }
    if let Some(limit) = stmt.limit {
        data.truncate(limit as usize);
    }

    Ok(Rows { columns: out_cols, data })
}

pub(crate) fn default_output_name(e: &SqlExpr, i: usize) -> String {
    match e {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::Func { name, .. } | SqlExpr::WindowFunc { name, .. } => name.clone(),
        _ => format!("column{}", i + 1),
    }
}

/// Grouped / scalar aggregation (row-major; also the columnar
/// engine's fallback for aggregate shapes outside its fast path).
pub(crate) fn aggregate_block(stmt: &SelectStmt, frame: Frame) -> Result<Rows, DbError> {
    // Group rows by key (hash aggregation; first-seen group order).
    let groups: Vec<(Vec<Cell>, Vec<usize>)> = if stmt.group_by.is_empty() {
        vec![(vec![], (0..frame.rows.len()).collect())]
    } else {
        let mut keys = Vec::with_capacity(frame.rows.len());
        for row in &frame.rows {
            keys.push(
                stmt.group_by
                    .iter()
                    .map(|e| eval(e, &frame.cols, row))
                    .collect::<Result<Vec<Cell>, _>>()?,
            );
        }
        group_indices(keys)
    };

    let items: Vec<(Option<String>, SqlExpr)> = stmt
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Expr { expr, alias } => Ok((alias.clone(), expr.clone())),
            SelectItem::Wildcard => Err(DbError::exec("SELECT * with GROUP BY is not supported")),
        })
        .collect::<Result<_, _>>()?;

    let out_cols: Vec<Column> = items
        .iter()
        .enumerate()
        .map(|(i, (alias, e))| {
            let name = alias.clone().unwrap_or_else(|| default_output_name(e, i));
            Column::new(name, derive_type(e, &frame.cols))
        })
        .collect();

    let mut data = Vec::with_capacity(groups.len());
    for (_, row_idx) in &groups {
        // HAVING.
        if let Some(h) = &stmt.having {
            let v = eval_agg(h, &frame, row_idx)?;
            if !matches!(v, Cell::Bool(true)) {
                continue;
            }
        }
        let mut out_row = Vec::with_capacity(items.len());
        for (_, e) in &items {
            out_row.push(eval_agg(e, &frame, row_idx)?);
        }
        data.push(out_row);
    }

    let mut rows = Rows { columns: out_cols, data };

    // ORDER BY over the aggregate output.
    if !stmt.order_by.is_empty() {
        let cols: Vec<BoundCol> = rows
            .columns
            .iter()
            .map(|c| BoundCol { qualifier: None, name: c.name.clone(), ty: c.ty })
            .collect();
        let mut keyed: Vec<(Vec<Cell>, Vec<Cell>)> = Vec::with_capacity(rows.data.len());
        for row in rows.data.into_iter() {
            let key: Vec<Cell> = stmt
                .order_by
                .iter()
                .map(|(e, _)| eval(e, &cols, &row))
                .collect::<Result<_, _>>()?;
            keyed.push((key, row));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for ((a, b), (_, desc)) in ka.iter().zip(kb).zip(&stmt.order_by) {
                let ord = a.sort_cmp(b);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows.data = keyed.into_iter().map(|(_, r)| r).collect();
    }

    let offset = stmt.offset.unwrap_or(0) as usize;
    if offset > 0 {
        rows.data = rows.data.into_iter().skip(offset).collect();
    }
    if let Some(limit) = stmt.limit {
        rows.data.truncate(limit as usize);
    }
    Ok(rows)
}

/// Evaluate an expression in aggregate context: aggregate calls compute
/// over the group; bare columns take their value from the group's first
/// row (group keys are constant within a group).
fn eval_agg(e: &SqlExpr, frame: &Frame, group: &[usize]) -> Result<Cell, DbError> {
    match e {
        SqlExpr::Func { name, args, distinct } if is_aggregate_name(name) => {
            compute_aggregate(name, args, *distinct, frame, group)
        }
        SqlExpr::Literal(c) => Ok(c.clone()),
        SqlExpr::Column { .. } => match group.first() {
            Some(&ri) => eval(e, &frame.cols, &frame.rows[ri]),
            None => Ok(Cell::Null),
        },
        SqlExpr::Binary { op, lhs, rhs } => {
            let l = eval_agg(lhs, frame, group)?;
            let r = eval_agg(rhs, frame, group)?;
            expr::binary(*op, &l, &r)
        }
        SqlExpr::Not(inner) => match eval_agg(inner, frame, group)? {
            Cell::Null => Ok(Cell::Null),
            Cell::Bool(b) => Ok(Cell::Bool(!b)),
            other => Err(DbError::exec(format!("NOT applied to {other:?}"))),
        },
        SqlExpr::Neg(inner) => match eval_agg(inner, frame, group)? {
            Cell::Null => Ok(Cell::Null),
            Cell::Int(i) => Ok(Cell::Int(-i)),
            Cell::Float(f) => Ok(Cell::Float(-f)),
            other => Err(DbError::exec(format!("cannot negate {other:?}"))),
        },
        SqlExpr::Func { name, args, .. } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_agg(a, frame, group)?);
            }
            expr::scalar_function(name, &vals)
        }
        SqlExpr::Case { branches, else_result } => {
            for (c, r) in branches {
                if matches!(eval_agg(c, frame, group)?, Cell::Bool(true)) {
                    return eval_agg(r, frame, group);
                }
            }
            match else_result {
                Some(e) => eval_agg(e, frame, group),
                None => Ok(Cell::Null),
            }
        }
        SqlExpr::Cast { expr: inner, ty } => {
            let v = eval_agg(inner, frame, group)?;
            expr::cast(&v, *ty)
        }
        SqlExpr::IsNull { expr: inner, negated } => {
            let v = eval_agg(inner, frame, group)?;
            Ok(Cell::Bool(v.is_null() != *negated))
        }
        SqlExpr::InList { expr: inner, list, negated } => {
            let needle = eval_agg(inner, frame, group)?;
            if needle.is_null() {
                return Ok(Cell::Null);
            }
            for item in list {
                let v = eval_agg(item, frame, group)?;
                if needle.sql_eq(&v) == Some(true) {
                    return Ok(Cell::Bool(!negated));
                }
            }
            Ok(Cell::Bool(*negated))
        }
        other => Err(DbError::exec(format!("unsupported expression in aggregate context: {other:?}"))),
    }
}

fn compute_aggregate(
    name: &str,
    args: &[SqlExpr],
    distinct: bool,
    frame: &Frame,
    group: &[usize],
) -> Result<Cell, DbError> {
    // COUNT(*).
    if name == "count" && matches!(args.first(), Some(SqlExpr::Star)) {
        return Ok(Cell::Int(group.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| DbError::exec(format!("{name}: missing argument")))?;
    // The hq_first/hq_last toolbox aggregates model q's order-sensitive
    // first/last, which do NOT skip nulls: `first 0N 1 2` is 0N. They
    // must see the raw group, before the SQL null filter below.
    if matches!(name, "hq_first" | "hq_last") {
        let pos = if name == "hq_first" { group.first() } else { group.last() };
        return match pos {
            Some(&ri) => eval(arg, &frame.cols, &frame.rows[ri]),
            None => Ok(Cell::Null),
        };
    }
    let mut values: Vec<Cell> = Vec::with_capacity(group.len());
    for &ri in group {
        let v = eval(arg, &frame.cols, &frame.rows[ri])?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        dedup_cells(&mut values);
    }
    let nums = || -> Vec<f64> { values.iter().filter_map(|c| c.as_f64()).collect() };
    Ok(match name {
        "count" => Cell::Int(values.len() as i64),
        "sum" => {
            if values.is_empty() {
                Cell::Null
            } else if values.iter().all(|v| matches!(v, Cell::Int(_) | Cell::Bool(_))) {
                Cell::Int(nums().iter().sum::<f64>() as i64)
            } else {
                Cell::Float(nums().iter().sum())
            }
        }
        "avg" => {
            let ns = nums();
            if ns.is_empty() {
                Cell::Null
            } else {
                Cell::Float(ns.iter().sum::<f64>() / ns.len() as f64)
            }
        }
        "min" => fold_extreme(&values, false),
        "max" => fold_extreme(&values, true),
        "stddev_samp" | "stddev" => {
            let ns = nums();
            if ns.len() < 2 {
                Cell::Null
            } else {
                let mean = ns.iter().sum::<f64>() / ns.len() as f64;
                let var = ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                    / (ns.len() - 1) as f64;
                Cell::Float(var.sqrt())
            }
        }
        "var_samp" | "variance" => {
            let ns = nums();
            if ns.len() < 2 {
                Cell::Null
            } else {
                let mean = ns.iter().sum::<f64>() / ns.len() as f64;
                Cell::Float(
                    ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / (ns.len() - 1) as f64,
                )
            }
        }
        "median" => {
            let mut ns = nums();
            if ns.is_empty() {
                Cell::Null
            } else {
                ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let n = ns.len();
                Cell::Float(if n % 2 == 1 {
                    ns[n / 2]
                } else {
                    (ns[n / 2 - 1] + ns[n / 2]) / 2.0
                })
            }
        }
        "bool_and" => {
            if values.is_empty() {
                Cell::Null
            } else {
                Cell::Bool(values.iter().all(|v| matches!(v, Cell::Bool(true))))
            }
        }
        "bool_or" => {
            if values.is_empty() {
                Cell::Null
            } else {
                Cell::Bool(values.iter().any(|v| matches!(v, Cell::Bool(true))))
            }
        }
        other => return Err(DbError::exec(format!("unknown aggregate {other}"))),
    })
}

fn fold_extreme(values: &[Cell], want_max: bool) -> Cell {
    let mut best: Option<&Cell> = None;
    for v in values {
        best = Some(match best {
            None => v,
            Some(b) => match v.sql_cmp(b) {
                Some(std::cmp::Ordering::Greater) if want_max => v,
                Some(std::cmp::Ordering::Less) if !want_max => v,
                _ => b,
            },
        });
    }
    best.cloned().unwrap_or(Cell::Null)
}

/// DISTINCT over aggregate inputs, O(n) via [`CellKey`].
pub fn dedup_cells(values: &mut Vec<Cell>) {
    let mut seen = HashSet::with_capacity(values.len());
    values.retain(|v| seen.insert(CellKey::from_cell(v)));
}

/// Collect structurally distinct window-function nodes.
fn collect_windows(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::WindowFunc { .. }
            if !out.contains(e) => {
                out.push(e.clone());
            }
        SqlExpr::Binary { lhs, rhs, .. } => {
            collect_windows(lhs, out);
            collect_windows(rhs, out);
        }
        SqlExpr::Not(i) | SqlExpr::Neg(i) => collect_windows(i, out),
        SqlExpr::Func { args, .. } => args.iter().for_each(|a| collect_windows(a, out)),
        SqlExpr::Case { branches, else_result } => {
            for (c, r) in branches {
                collect_windows(c, out);
                collect_windows(r, out);
            }
            if let Some(e) = else_result {
                collect_windows(e, out);
            }
        }
        SqlExpr::Cast { expr, .. } => collect_windows(expr, out),
        SqlExpr::InList { expr, list, .. } => {
            collect_windows(expr, out);
            list.iter().for_each(|e| collect_windows(e, out));
        }
        SqlExpr::IsNull { expr, .. } => collect_windows(expr, out),
        _ => {}
    }
}

/// Replace window nodes with references to their virtual columns.
fn substitute_windows(e: SqlExpr, windows: &[SqlExpr]) -> SqlExpr {
    if let Some(i) = windows.iter().position(|w| *w == e) {
        return SqlExpr::Column { qualifier: None, name: format!("hq_win_{i}") };
    }
    match e {
        SqlExpr::Binary { op, lhs, rhs } => SqlExpr::Binary {
            op,
            lhs: Box::new(substitute_windows(*lhs, windows)),
            rhs: Box::new(substitute_windows(*rhs, windows)),
        },
        SqlExpr::Not(i) => SqlExpr::Not(Box::new(substitute_windows(*i, windows))),
        SqlExpr::Neg(i) => SqlExpr::Neg(Box::new(substitute_windows(*i, windows))),
        SqlExpr::Func { name, args, distinct } => SqlExpr::Func {
            name,
            args: args.into_iter().map(|a| substitute_windows(a, windows)).collect(),
            distinct,
        },
        SqlExpr::Case { branches, else_result } => SqlExpr::Case {
            branches: branches
                .into_iter()
                .map(|(c, r)| (substitute_windows(c, windows), substitute_windows(r, windows)))
                .collect(),
            else_result: else_result.map(|e| Box::new(substitute_windows(*e, windows))),
        },
        SqlExpr::Cast { expr, ty } => {
            SqlExpr::Cast { expr: Box::new(substitute_windows(*expr, windows)), ty }
        }
        SqlExpr::InList { expr, list, negated } => SqlExpr::InList {
            expr: Box::new(substitute_windows(*expr, windows)),
            list: list.into_iter().map(|e| substitute_windows(e, windows)).collect(),
            negated,
        },
        SqlExpr::IsNull { expr, negated } => {
            SqlExpr::IsNull { expr: Box::new(substitute_windows(*expr, windows)), negated }
        }
        other => other,
    }
}

/// Compute a window function over the whole frame.
fn compute_window(w: &SqlExpr, frame: &Frame) -> Result<Vec<Cell>, DbError> {
    let SqlExpr::WindowFunc { name, args, partition_by, order_by } = w else {
        return Err(DbError::exec("not a window function"));
    };
    let n = frame.rows.len();
    // Partition rows (hash partitioning; first-seen order).
    let mut part_keys = Vec::with_capacity(n);
    for row in &frame.rows {
        part_keys.push(
            partition_by
                .iter()
                .map(|e| eval(e, &frame.cols, row))
                .collect::<Result<Vec<Cell>, _>>()?,
        );
    }
    let partitions = group_indices(part_keys);

    let mut out = vec![Cell::Null; n];
    for (_, mut rows) in partitions {
        // Order within the partition.
        if !order_by.is_empty() {
            let mut keyed: Vec<(Vec<Cell>, usize)> = Vec::with_capacity(rows.len());
            for &ri in &rows {
                let key: Vec<Cell> = order_by
                    .iter()
                    .map(|(e, _)| eval(e, &frame.cols, &frame.rows[ri]))
                    .collect::<Result<_, _>>()?;
                keyed.push((key, ri));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for ((a, b), (_, desc)) in ka.iter().zip(kb).zip(order_by) {
                    let ord = a.sort_cmp(b);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows = keyed.into_iter().map(|(_, ri)| ri).collect();
        }

        let arg_at = |pos: usize| -> Result<Cell, DbError> {
            match args.first() {
                Some(a) => eval(a, &frame.cols, &frame.rows[rows[pos]]),
                None => Ok(Cell::Null),
            }
        };
        match name.as_str() {
            "row_number" => {
                for (i, &ri) in rows.iter().enumerate() {
                    out[ri] = Cell::Int(i as i64 + 1);
                }
            }
            "rank" => {
                let mut rank = 1i64;
                for (i, &ri) in rows.iter().enumerate() {
                    if i > 0 {
                        // Compare order keys with the previous row.
                        let prev = rows[i - 1];
                        let equal = order_by.iter().try_fold(true, |acc, (e, _)| {
                            let a = eval(e, &frame.cols, &frame.rows[ri])?;
                            let b = eval(e, &frame.cols, &frame.rows[prev])?;
                            Ok::<bool, DbError>(acc && a.not_distinct(&b))
                        })?;
                        if !equal {
                            rank = i as i64 + 1;
                        }
                    }
                    out[ri] = Cell::Int(rank);
                }
            }
            "lead" => {
                for (i, &ri) in rows.iter().enumerate() {
                    out[ri] = if i + 1 < rows.len() { arg_at(i + 1)? } else { Cell::Null };
                }
            }
            "lag" => {
                for (i, &ri) in rows.iter().enumerate() {
                    out[ri] = if i > 0 { arg_at(i - 1)? } else { Cell::Null };
                }
            }
            "first_value" => {
                let v = if rows.is_empty() { Cell::Null } else { arg_at(0)? };
                for &ri in &rows {
                    out[ri] = v.clone();
                }
            }
            "last_value" => {
                // Whole-partition frame (Hyper-Q's usage; differs from
                // PG's default running frame, which it never relies on).
                let v = if rows.is_empty() { Cell::Null } else { arg_at(rows.len() - 1)? };
                for &ri in &rows {
                    out[ri] = v.clone();
                }
            }
            other => return Err(DbError::exec(format!("unknown window function {other}"))),
        }
    }
    Ok(out)
}

/// One equi-join key pair: left column index, right column index, and
/// whether NULLs match (IS NOT DISTINCT FROM) or not (=).
pub struct EquiPair {
    pub left: usize,
    pub right: usize,
    pub nulls_match: bool,
}

/// Recognize a conjunction of cross-side column equalities. Returns
/// `None` (→ nested loop) for anything more complex.
pub(crate) fn extract_equi_pairs(
    cond: &SqlExpr,
    l: &[BoundCol],
    r: &[BoundCol],
) -> Option<Vec<EquiPair>> {
    fn collect(cond: &SqlExpr, l: &[BoundCol], r: &[BoundCol], out: &mut Vec<EquiPair>) -> bool {
        match cond {
            SqlExpr::Binary { op: SqlBinOp::And, lhs, rhs } => {
                collect(lhs, l, r, out) && collect(rhs, l, r, out)
            }
            SqlExpr::Binary { op, lhs, rhs }
                if matches!(op, SqlBinOp::Eq | SqlBinOp::IsNotDistinctFrom) =>
            {
                let (SqlExpr::Column { qualifier: q1, name: n1 }, SqlExpr::Column { qualifier: q2, name: n2 }) =
                    (lhs.as_ref(), rhs.as_ref())
                else {
                    return false;
                };
                let nulls_match = *op == SqlBinOp::IsNotDistinctFrom;
                let try_side = |f: &[BoundCol], q: &Option<String>, n: &str| {
                    expr::resolve_column(f, q.as_deref(), n).ok()
                };
                if let (Some(li), Some(ri)) = (try_side(l, q1, n1), try_side(r, q2, n2)) {
                    out.push(EquiPair { left: li, right: ri, nulls_match });
                    true
                } else if let (Some(li), Some(ri)) = (try_side(l, q2, n2), try_side(r, q1, n1)) {
                    out.push(EquiPair { left: li, right: ri, nulls_match });
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
    let mut pairs = Vec::new();
    if collect(cond, l, r, &mut pairs) && !pairs.is_empty() {
        Some(pairs)
    } else {
        None
    }
}

/// Build one side's join key, or `None` when a NULL key column under
/// plain `=` disqualifies the row from matching (PG semantics).
fn join_key(row: &[Cell], pairs: &[EquiPair], right_side: bool) -> Option<Vec<CellKey>> {
    let mut key = Vec::with_capacity(pairs.len());
    for p in pairs {
        let c = &row[if right_side { p.right } else { p.left }];
        if c.is_null() && !p.nulls_match {
            return None; // plain = never matches NULL
        }
        key.push(CellKey::from_cell(c));
    }
    Some(key)
}

/// Equi-join via a hash index on the right side, keyed by the
/// allocation-free-per-column [`CellKey`] (formerly a per-row
/// formatted `String`).
pub fn hash_join(l: &Frame, r: &Frame, pairs: &[EquiPair], kind: JoinType, out: &mut Vec<Vec<Cell>>) {
    let mut index: HashMap<Vec<CellKey>, Vec<usize>> = HashMap::with_capacity(r.rows.len());
    for (ri, row) in r.rows.iter().enumerate() {
        if let Some(key) = join_key(row, pairs, true) {
            index.entry(key).or_default().push(ri);
        }
    }
    for lrow in &l.rows {
        if let Some(matches) = join_key(lrow, pairs, false).and_then(|k| index.get(&k)) {
            for &ri in matches {
                let mut row = lrow.clone();
                row.extend(r.rows[ri].iter().cloned());
                out.push(row);
            }
            continue;
        }
        if kind == JoinType::Left {
            let mut row = lrow.clone();
            row.extend(std::iter::repeat_n(Cell::Null, r.cols.len()));
            out.push(row);
        }
    }
}

/// Evaluate a FROM item into a frame.
fn eval_from(src: &dyn TableSource, item: &FromItem) -> Result<Frame, DbError> {
    match item {
        FromItem::Table { name, alias } => {
            let (columns, rows) =
                src.get_table(name).ok_or_else(|| DbError::undefined_table(name))?;
            let q = alias.clone().or_else(|| Some(name.clone()));
            Ok(Frame {
                cols: columns
                    .into_iter()
                    .map(|c| BoundCol { qualifier: q.clone(), name: c.name, ty: c.ty })
                    .collect(),
                rows,
            })
        }
        FromItem::Subquery { query, alias } => {
            let rows = run_select(src, query)?;
            Ok(Frame {
                cols: rows
                    .columns
                    .into_iter()
                    .map(|c| BoundCol {
                        qualifier: Some(alias.clone()),
                        name: c.name,
                        ty: c.ty,
                    })
                    .collect(),
                rows: rows.data,
            })
        }
        FromItem::Values { rows, alias, columns } => {
            let mut data = Vec::with_capacity(rows.len());
            for r in rows {
                let mut row = Vec::with_capacity(r.len());
                for e in r {
                    row.push(eval(e, &[], &[])?);
                }
                data.push(row);
            }
            let width = data.first().map(|r| r.len()).unwrap_or(columns.len());
            let mut cols = Vec::with_capacity(width);
            for i in 0..width {
                let name =
                    columns.get(i).cloned().unwrap_or_else(|| format!("column{}", i + 1));
                let ty = data
                    .iter()
                    .map(|r| &r[i])
                    .find(|c| !c.is_null())
                    .map(|c| c.natural_type())
                    .unwrap_or(PgType::Text);
                cols.push(BoundCol { qualifier: Some(alias.clone()), name, ty });
            }
            Ok(Frame { cols, rows: data })
        }
        FromItem::Join { kind, left, right, on } => {
            let l = eval_from(src, left)?;
            let r = eval_from(src, right)?;
            let mut cols = l.cols.clone();
            cols.extend(r.cols.clone());
            let mut rows = Vec::new();
            match kind {
                JoinType::Cross => {
                    for lr in &l.rows {
                        for rr in &r.rows {
                            let mut row = lr.clone();
                            row.extend(rr.clone());
                            rows.push(row);
                        }
                    }
                }
                JoinType::Inner | JoinType::Left => {
                    let cond = on
                        .as_ref()
                        .ok_or_else(|| DbError::syntax("JOIN requires ON"))?;
                    // Hash join fast path when the condition is a pure
                    // conjunction of column equalities across the two
                    // sides; otherwise nested loop.
                    if let Some(pairs) = extract_equi_pairs(cond, &l.cols, &r.cols) {
                        hash_join(&l, &r, &pairs, *kind, &mut rows);
                    } else {
                        for lr in &l.rows {
                            let mut matched = false;
                            for rr in &r.rows {
                                let mut row = lr.clone();
                                row.extend(rr.clone());
                                if matches!(eval(cond, &cols, &row)?, Cell::Bool(true)) {
                                    rows.push(row);
                                    matched = true;
                                }
                            }
                            if !matched && *kind == JoinType::Left {
                                let mut row = lr.clone();
                                row.extend(std::iter::repeat_n(Cell::Null, r.cols.len()));
                                rows.push(row);
                            }
                        }
                    }
                }
            }
            Ok(Frame { cols, rows })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PgType;

    fn frame(name: &str, cols: &[&str], rows: Vec<Vec<Cell>>) -> Frame {
        Frame {
            cols: cols
                .iter()
                .map(|c| BoundCol {
                    qualifier: Some(name.to_string()),
                    name: (*c).to_string(),
                    ty: PgType::Int8,
                })
                .collect(),
            rows,
        }
    }

    fn i(v: i64) -> Cell {
        Cell::Int(v)
    }

    /// Regression: a NULL join key must never match another NULL under
    /// plain `=` (PostgreSQL), only under IS NOT DISTINCT FROM.
    #[test]
    fn null_join_keys_never_match_under_eq() {
        let l = frame("l", &["k", "a"], vec![vec![Cell::Null, i(1)], vec![i(7), i(2)]]);
        let r = frame("r", &["k", "b"], vec![vec![Cell::Null, i(10)], vec![i(7), i(20)]]);
        let pairs = [EquiPair { left: 0, right: 0, nulls_match: false }];

        let mut inner = Vec::new();
        hash_join(&l, &r, &pairs, JoinType::Inner, &mut inner);
        assert_eq!(inner, vec![vec![i(7), i(2), i(7), i(20)]]);

        // LEFT JOIN: the NULL-keyed left row survives with null padding.
        let mut left = Vec::new();
        hash_join(&l, &r, &pairs, JoinType::Left, &mut left);
        assert_eq!(
            left,
            vec![
                vec![Cell::Null, i(1), Cell::Null, Cell::Null],
                vec![i(7), i(2), i(7), i(20)],
            ]
        );
    }

    /// IS NOT DISTINCT FROM joins NULL to NULL.
    #[test]
    fn nulls_match_pairs_join_nulls() {
        let l = frame("l", &["k"], vec![vec![Cell::Null], vec![i(1)]]);
        let r = frame("r", &["k"], vec![vec![Cell::Null], vec![i(2)]]);
        let pairs = [EquiPair { left: 0, right: 0, nulls_match: true }];
        let mut out = Vec::new();
        hash_join(&l, &r, &pairs, JoinType::Inner, &mut out);
        assert_eq!(out, vec![vec![Cell::Null, Cell::Null]]);
    }

    /// Hash join agrees with the retained String-keyed baseline.
    #[test]
    fn hash_join_matches_string_keyed_baseline() {
        let l = frame(
            "l",
            &["k", "a"],
            vec![
                vec![i(1), i(100)],
                vec![Cell::Float(2.0), i(200)],
                vec![Cell::Null, i(300)],
                vec![Cell::Text("x".into()), i(400)],
                vec![i(2), i(500)],
            ],
        );
        let r = frame(
            "r",
            &["k"],
            vec![vec![i(2)], vec![Cell::Text("x".into())], vec![Cell::Null], vec![i(9)]],
        );
        for nulls_match in [false, true] {
            let pairs = [EquiPair { left: 0, right: 0, nulls_match }];
            for kind in [JoinType::Inner, JoinType::Left] {
                let mut fast = Vec::new();
                hash_join(&l, &r, &pairs, kind, &mut fast);
                let mut slow = Vec::new();
                reference::hash_join_string_keyed(&l, &r, &pairs, kind, &mut slow);
                assert_eq!(fast.len(), slow.len());
                for (a, b) in fast.iter().zip(&slow) {
                    assert!(rows_equal(a, b), "{a:?} vs {b:?}");
                }
            }
        }
    }

    fn table() -> Vec<Vec<Cell>> {
        vec![
            vec![i(1), Cell::Text("a".into())],
            vec![Cell::Float(1.0), Cell::Text("a".into())],
            vec![i(1), Cell::Text("a".into())],
            vec![Cell::Null, Cell::Null],
            vec![Cell::Null, Cell::Null],
            vec![i(2), Cell::Text("b".into())],
            vec![Cell::Float(f64::NAN), Cell::Null],
            vec![Cell::Float(f64::NAN), Cell::Null],
        ]
    }

    #[test]
    fn hash_dedup_matches_naive() {
        let mut fast = table();
        let mut slow = table();
        dedup_rows(&mut fast);
        reference::dedup_rows_naive(&mut slow);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!(rows_equal(a, b));
        }
    }

    #[test]
    fn hash_set_ops_match_naive() {
        let right = vec![vec![i(1), Cell::Text("a".into())], vec![Cell::Null, Cell::Null]];

        let mut fast = table();
        let mut slow = table();
        except_rows(&mut fast, &right);
        reference::except_rows_naive(&mut slow, &right);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!(rows_equal(a, b));
        }

        let mut fast = table();
        let mut slow = table();
        intersect_rows(&mut fast, &right);
        reference::intersect_rows_naive(&mut slow, &right);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!(rows_equal(a, b));
        }

        let mut fast = table();
        let mut slow = table();
        union_rows(&mut fast, right.clone());
        reference::union_rows_naive(&mut slow, right);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!(rows_equal(a, b));
        }
    }

    #[test]
    fn hash_grouping_matches_naive() {
        let keys = table();
        let fast = group_indices(keys.clone());
        let slow = reference::group_indices_naive(keys);
        assert_eq!(fast.len(), slow.len());
        for ((ka, ia), (kb, ib)) in fast.iter().zip(&slow) {
            assert!(rows_equal(ka, kb));
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn hash_distinct_cells_matches_naive() {
        let cells = vec![
            i(1),
            Cell::Float(1.0),
            Cell::Null,
            Cell::Null,
            Cell::Float(f64::NAN),
            Cell::Float(f64::NAN),
            Cell::Text("1".into()),
            i(1),
        ];
        let mut fast = cells.clone();
        let mut slow = cells;
        dedup_cells(&mut fast);
        reference::dedup_cells_naive(&mut slow);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!(a.not_distinct(b));
        }
    }
}
