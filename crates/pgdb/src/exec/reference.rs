//! Naive reference implementations of the executor's hashed hot paths.
//!
//! These are the pre-optimization O(n²) scans, kept as the semantic
//! oracle: debug assertions check the hash paths against them on small
//! inputs, property tests check them on random tables, and the
//! `exec_hotpaths` bench reports the speedup of the hash paths over
//! them. They must NOT be "improved" — their value is being obviously
//! correct under [`Cell::not_distinct`] semantics.

use super::rows_equal;
use super::{EquiPair, Frame};
use crate::sql::ast::JoinType;
use crate::types::Cell;

/// O(n²) dedup keeping first occurrences.
pub fn dedup_rows_naive(rows: &mut Vec<Vec<Cell>>) {
    let mut seen: Vec<Vec<Cell>> = Vec::new();
    rows.retain(|r| {
        if seen.iter().any(|s| rows_equal(s, r)) {
            false
        } else {
            seen.push(r.clone());
            true
        }
    });
}

/// O(n·m) EXCEPT: distinct left rows with no right match.
pub fn except_rows_naive(left: &mut Vec<Vec<Cell>>, right: &[Vec<Cell>]) {
    left.retain(|r| !right.iter().any(|s| rows_equal(r, s)));
    dedup_rows_naive(left);
}

/// O(n·m) INTERSECT: distinct left rows with a right match.
pub fn intersect_rows_naive(left: &mut Vec<Vec<Cell>>, right: &[Vec<Cell>]) {
    left.retain(|r| right.iter().any(|s| rows_equal(r, s)));
    dedup_rows_naive(left);
}

/// O((n+m)²) UNION (distinct).
pub fn union_rows_naive(left: &mut Vec<Vec<Cell>>, right: Vec<Vec<Cell>>) {
    left.extend(right);
    dedup_rows_naive(left);
}

/// O(n·g) grouping by linear scan over the group list.
pub fn group_indices_naive(keys: Vec<Vec<Cell>>) -> Vec<(Vec<Cell>, Vec<usize>)> {
    let mut groups: Vec<(Vec<Cell>, Vec<usize>)> = Vec::new();
    for (ri, key) in keys.into_iter().enumerate() {
        match groups.iter_mut().find(|(k, _)| rows_equal(k, &key)) {
            Some((_, rows)) => rows.push(ri),
            None => groups.push((key, vec![ri])),
        }
    }
    groups
}

/// O(n²) DISTINCT over cells.
pub fn dedup_cells_naive(values: &mut Vec<Cell>) {
    let mut seen: Vec<Cell> = Vec::new();
    values.retain(|v| {
        if seen.iter().any(|s| s.not_distinct(v)) {
            false
        } else {
            seen.push(v.clone());
            true
        }
    });
}

/// Hashable projection of a cell as a formatted string — the join key
/// the executor used before [`super::key::CellKey`]. Retained so the
/// bench can measure exactly what was replaced.
pub fn cell_hash_key_string(c: &Cell) -> String {
    match c {
        Cell::Null => "\u{0}N".to_string(),
        Cell::Bool(b) => format!("b{b}"),
        Cell::Int(v) => format!("i{v}"),
        Cell::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 9e15 {
                format!("i{}", *f as i64)
            } else {
                format!("f{}", f.to_bits())
            }
        }
        Cell::Text(s) => format!("t{s}"),
        Cell::Date(d) => format!("i{d}"),
        Cell::Time(t) => format!("i{t}"),
        Cell::Timestamp(t) => format!("i{t}"),
    }
}

/// The pre-optimization hash join: per-row `format!`-built `String`
/// keys over a `HashMap<String, _>` index.
pub fn hash_join_string_keyed(
    l: &Frame,
    r: &Frame,
    pairs: &[EquiPair],
    kind: JoinType,
    out: &mut Vec<Vec<Cell>>,
) {
    use std::collections::HashMap;
    let mut index: HashMap<String, Vec<usize>> = HashMap::with_capacity(r.rows.len());
    'right: for (ri, row) in r.rows.iter().enumerate() {
        let mut key = String::new();
        for p in pairs {
            let c = &row[p.right];
            if c.is_null() && !p.nulls_match {
                continue 'right;
            }
            key.push_str(&cell_hash_key_string(c));
            key.push('\u{1}');
        }
        index.entry(key).or_default().push(ri);
    }
    'left: for lrow in &l.rows {
        let mut key = String::new();
        let mut skip = false;
        for p in pairs {
            let c = &lrow[p.left];
            if c.is_null() && !p.nulls_match {
                skip = true;
                break;
            }
            key.push_str(&cell_hash_key_string(c));
            key.push('\u{1}');
        }
        if !skip {
            if let Some(matches) = index.get(&key) {
                for &ri in matches {
                    let mut row = lrow.clone();
                    row.extend(r.rows[ri].iter().cloned());
                    out.push(row);
                }
                continue 'left;
            }
        }
        if kind == JoinType::Left {
            let mut row = lrow.clone();
            row.extend(std::iter::repeat_n(Cell::Null, r.cols.len()));
            out.push(row);
        }
    }
}
