//! Serve the in-process database over the PG v3 wire protocol so any
//! PostgreSQL client can poke it directly:
//!
//! ```sh
//! cargo run --release -p pgdb --example serve [addr]
//! ```
//!
//! Loads a tiny `t` table (with NULLs) for experimentation and blocks
//! until killed. Trust auth: any user, no password.

use pgdb::server::{PgServer, ServerConfig};
use pgdb::{Cell, Column, Db, PgType};

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:0".into());
    let db = Db::new();
    db.put_table(
        "t",
        vec![
            Column { name: "k".into(), ty: PgType::Int8 },
            Column { name: "v".into(), ty: PgType::Varchar },
        ],
        vec![
            vec![Cell::Int(1), Cell::Text("a".into())],
            vec![Cell::Int(2), Cell::Text("b".into())],
            vec![Cell::Int(2), Cell::Text("b".into())],
            vec![Cell::Null, Cell::Text("n".into())],
            vec![Cell::Null, Cell::Text("n".into())],
            vec![Cell::Int(3), Cell::Null],
        ],
    );
    let server = PgServer::start(db, &addr, ServerConfig::default()).expect("start server");
    println!("pgdb listening on {}", server.addr);
    loop {
        std::thread::park();
    }
}
