//! Property tests for the segment codec (DESIGN §13): arbitrary batches
//! — every `ColumnVec` storage class, typed nulls, empty columns, NaN
//! payloads, the mixed-class `Cells` fallback — round-trip through the
//! segment byte image, and corruption (bit flips, truncation) is a
//! typed [`DurError::Corrupt`], never a panic and never silent data.
//!
//! NaN is safe to include in the generators here because comparison is
//! `Batch::structurally_equal` (cell *keys*, which canonicalize NaN),
//! not `==`; the payload-bit check rides in the deterministic test.

use colstore::types::{Cell, Column, PgType};
use colstore::{Batch, ColumnVec, Validity};
use durability::segment::{decode_segment, segment_bytes};
use durability::DurError;
use proptest::prelude::*;

/// Any cell of any storage class (for the `Cells` fallback column).
fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        any::<bool>().prop_map(Cell::Bool),
        any::<i64>().prop_map(Cell::Int),
        any::<i64>().prop_map(|b| Cell::Float(f64::from_bits(b as u64))),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Cell::Text),
        (-40000i32..40000).prop_map(Cell::Date),
        (0i64..86_400_000_000).prop_map(Cell::Time),
        any::<i64>().prop_map(Cell::Timestamp),
    ]
}

/// A cell belonging to `ty`'s storage class, or NULL. Floats draw from
/// raw bit patterns, so NaN and -0.0 payloads are generated.
fn cell_of(ty: PgType) -> BoxedStrategy<Cell> {
    match ty {
        PgType::Bool => prop_oneof![Just(Cell::Null), any::<bool>().prop_map(Cell::Bool)].boxed(),
        PgType::Int2 | PgType::Int4 | PgType::Int8 => {
            prop_oneof![Just(Cell::Null), any::<i64>().prop_map(Cell::Int)].boxed()
        }
        PgType::Float4 | PgType::Float8 => prop_oneof![
            Just(Cell::Null),
            any::<i64>().prop_map(|b| Cell::Float(f64::from_bits(b as u64))),
        ]
        .boxed(),
        PgType::Varchar | PgType::Text => {
            prop_oneof![Just(Cell::Null), "[a-z]{0,6}".prop_map(Cell::Text)].boxed()
        }
        PgType::Date => {
            prop_oneof![Just(Cell::Null), (-40000i32..40000).prop_map(Cell::Date)].boxed()
        }
        PgType::Time => {
            prop_oneof![Just(Cell::Null), (0i64..86_400_000_000).prop_map(Cell::Time)].boxed()
        }
        PgType::Timestamp => {
            prop_oneof![Just(Cell::Null), any::<i64>().prop_map(Cell::Timestamp)].boxed()
        }
    }
}

fn arb_type() -> impl Strategy<Value = PgType> {
    prop_oneof![
        Just(PgType::Bool),
        Just(PgType::Int2),
        Just(PgType::Int4),
        Just(PgType::Int8),
        Just(PgType::Float4),
        Just(PgType::Float8),
        Just(PgType::Varchar),
        Just(PgType::Text),
        Just(PgType::Date),
        Just(PgType::Time),
        Just(PgType::Timestamp),
    ]
}

/// A whole batch: 1–4 columns sharing one row count (0–12 rows, so the
/// empty batch is generated too). Roughly one column in four is forced
/// onto the mixed-class `Cells` fallback.
fn arb_batch() -> impl Strategy<Value = Batch> {
    (0usize..12, 1usize..4).prop_flat_map(|(nrows, ncols)| {
        let col = (arb_type(), any::<bool>(), any::<bool>()).prop_flat_map(
            move |(ty, mixed, force_cells)| {
                let elem = if mixed && force_cells { arb_cell().boxed() } else { cell_of(ty) };
                proptest::collection::vec(elem, nrows).prop_map(move |cells| {
                    if mixed && force_cells {
                        (ty, ColumnVec::Cells(cells))
                    } else {
                        (ty, ColumnVec::from_cells(ty, cells))
                    }
                })
            },
        );
        proptest::collection::vec(col, ncols).prop_map(move |cols| {
            let schema: Vec<Column> = cols
                .iter()
                .enumerate()
                .map(|(i, (ty, _))| Column::new(format!("c{i}"), *ty))
                .collect();
            let columns: Vec<ColumnVec> = cols.into_iter().map(|(_, c)| c).collect();
            Batch::new(schema, columns, nrows)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary batches survive the segment byte image losslessly —
    /// table name, schema, every cell, NaN payloads included.
    #[test]
    fn segments_round_trip_arbitrary_batches(
        batch in arb_batch(),
        name in "[a-z_]{1,12}",
    ) {
        let bytes = segment_bytes(&name, &batch);
        let (got_name, got) = decode_segment(&bytes).expect("clean segment must decode");
        prop_assert_eq!(got_name, name);
        prop_assert_eq!(got.rows(), batch.rows());
        prop_assert!(batch.structurally_equal(&got));
    }

    /// A single flipped bit anywhere in the image is caught by the
    /// trailing CRC: decoding returns `Corrupt` — never a panic, never
    /// a silently different batch.
    #[test]
    fn any_bit_flip_is_a_typed_corruption_error(
        batch in arb_batch(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = segment_bytes("t", &batch);
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << bit;
        match decode_segment(&bytes) {
            Err(DurError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "byte {} bit {}: unexpected error {}", idx, bit, other),
            Ok(_) => prop_assert!(false, "byte {} bit {}: decoded silently", idx, bit),
        }
    }

    /// Every truncation point yields a typed error.
    #[test]
    fn any_truncation_is_a_typed_corruption_error(
        batch in arb_batch(),
        pos in any::<u64>(),
    ) {
        let bytes = segment_bytes("t", &batch);
        let cut = (pos % bytes.len() as u64) as usize;
        prop_assert!(matches!(decode_segment(&bytes[..cut]), Err(DurError::Corrupt(_))));
    }
}

/// Pin the edge shapes deterministically: all-NULL columns, empty
/// columns, and NaN-bearing floats round-trip for every storage class,
/// and NaN payload bits survive verbatim.
#[test]
fn edge_columns_round_trip_for_every_kind() {
    let types = [
        PgType::Bool,
        PgType::Int2,
        PgType::Int4,
        PgType::Int8,
        PgType::Float4,
        PgType::Float8,
        PgType::Varchar,
        PgType::Text,
        PgType::Date,
        PgType::Time,
        PgType::Timestamp,
    ];
    for ty in types {
        // All-NULL.
        let batch = Batch::new(vec![Column::new("n", ty)], vec![ColumnVec::nulls(ty, 4)], 4);
        let (_, got) = decode_segment(&segment_bytes("t", &batch)).unwrap();
        assert!(batch.structurally_equal(&got), "{ty:?} nulls");
        for i in 0..4 {
            assert!(got.columns[0].is_null(i), "{ty:?} slot {i}");
        }
        // Empty.
        let batch = Batch::new(vec![Column::new("e", ty)], vec![ColumnVec::empty(ty)], 0);
        let (_, got) = decode_segment(&segment_bytes("t", &batch)).unwrap();
        assert!(batch.structurally_equal(&got), "{ty:?} empty");
        assert_eq!(got.rows(), 0, "{ty:?} empty");
    }

    // NaN is a value, not a NULL, and its payload bits are preserved.
    let weird = f64::from_bits(0x7ff8_0000_0000_1234);
    let mut v = Validity::all_valid(3);
    v.set_null(2);
    let batch = Batch::new(
        vec![Column::new("f", PgType::Float8)],
        vec![ColumnVec::Float(vec![weird, -0.0, 0.0], v)],
        3,
    );
    let (_, got) = decode_segment(&segment_bytes("t", &batch)).unwrap();
    match &got.columns[0] {
        ColumnVec::Float(data, validity) => {
            assert_eq!(data[0].to_bits(), weird.to_bits());
            assert_eq!(data[1].to_bits(), (-0.0f64).to_bits());
            assert!(!validity.is_null(0));
            assert!(validity.is_null(2));
        }
        other => panic!("float column changed variant: {other:?}"),
    }
}
