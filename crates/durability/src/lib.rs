//! Durability for the pgdb catalog: WAL + checkpoints + recovery.
//!
//! The layer is strictly opt-in — with no data directory configured the
//! engine never touches this crate and keeps its pure in-memory hot
//! path. When enabled ([`Options`], usually from `HQ_DATA_DIR` /
//! `HQ_FSYNC` / `HQ_CHECKPOINT_EVERY`):
//!
//! * every committed mutation appends one typed [`wal::WalRecord`] to an
//!   append-only, CRC-framed log ([`wal`]) and is acknowledged per the
//!   configured [`FsyncPolicy`] (inline fsync, group commit, or none);
//! * every `checkpoint_every` mutations the engine spills all tables as
//!   on-disk columnar [`segment`]s under a manifest ([`checkpoint`]),
//!   rotates the WAL, and prunes history down to the last two
//!   checkpoints plus the WAL tail;
//! * on open, [`Durability::open`] loads the newest *valid* checkpoint
//!   (falling back to the previous one if the newest is damaged),
//!   replays the WAL tail above it, and truncates at most one torn
//!   final record — anything else that fails to parse is a typed
//!   [`DurError::Corrupt`], never a panic and never silent data loss.
//!
//! ## Data directory layout
//!
//! ```text
//! <data_dir>/
//!   wal/wal-<start lsn %016x>.log      append-only frames
//!   checkpoints/cp-<lsn %016x>/        columnar segments + MANIFEST
//! ```
//!
//! ## What "committed" means here
//!
//! The engine appends under its table write lock, applies in memory,
//! releases the lock, and only then waits for durability before the
//! client sees success. Recovery therefore restores exactly a prefix of
//! the commit order: every acknowledged statement, plus at most the
//! in-flight statements that reached the disk but not the client.

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod fault;
pub mod metrics;
pub mod segment;
pub mod wal;

pub use wal::{FsyncPolicy, WalRecord};

use colstore::{Batch, TableStats};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Failures from the durability layer. `Io` is the environment
/// misbehaving (disk full, permissions); `Corrupt` is the data on disk
/// failing validation — recovery surfaces it instead of guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurError {
    Io(String),
    Corrupt(String),
}

impl fmt::Display for DurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurError::Io(msg) => write!(f, "durability i/o error: {msg}"),
            DurError::Corrupt(msg) => write!(f, "durability corruption: {msg}"),
        }
    }
}

impl std::error::Error for DurError {}

impl From<std::io::Error> for DurError {
    fn from(e: std::io::Error) -> DurError {
        DurError::Io(e.to_string())
    }
}

impl From<codec::CodecError> for DurError {
    fn from(e: codec::CodecError) -> DurError {
        DurError::Corrupt(e.to_string())
    }
}

/// How a durable engine is configured.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Root of the data directory (created if missing).
    pub data_dir: PathBuf,
    /// When commits are acknowledged relative to fsync.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL appends (0 disables periodic
    /// checkpoints; the WAL still grows and still recovers).
    pub checkpoint_every: u64,
}

impl Options {
    pub fn new(data_dir: impl Into<PathBuf>) -> Options {
        Options {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Group(std::time::Duration::from_millis(5)),
            checkpoint_every: 1024,
        }
    }

    /// Read `HQ_DATA_DIR` (presence turns durability on), `HQ_FSYNC`
    /// and `HQ_CHECKPOINT_EVERY`. Unparseable knobs fall back to the
    /// defaults rather than failing startup.
    pub fn from_env() -> Option<Options> {
        let dir = std::env::var("HQ_DATA_DIR").ok()?;
        if dir.trim().is_empty() {
            return None;
        }
        let mut opts = Options::new(dir);
        if let Some(policy) = std::env::var("HQ_FSYNC").ok().and_then(|s| FsyncPolicy::parse(&s)) {
            opts.fsync = policy;
        }
        if let Some(n) = std::env::var("HQ_CHECKPOINT_EVERY").ok().and_then(|s| s.trim().parse().ok()) {
            opts.checkpoint_every = n;
        }
        Some(opts)
    }

    fn wal_dir(&self) -> PathBuf {
        self.data_dir.join("wal")
    }

    fn checkpoints_dir(&self) -> PathBuf {
        self.data_dir.join("checkpoints")
    }
}

/// What recovery reconstructed from disk.
pub struct Recovered {
    /// Full table contents at the recovered LSN.
    pub tables: HashMap<String, Batch>,
    /// Per-table statistics at the recovered LSN: the checkpoint's
    /// persisted sidecar (when present) carried forward through WAL
    /// replay, recomputed from the batches otherwise. Always has one
    /// entry per recovered table.
    pub stats: HashMap<String, TableStats>,
    /// LSN the next append must use.
    pub next_lsn: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Whether a torn final record was truncated.
    pub truncated_tail: bool,
}

/// Apply one replayed record to the recovered table map, maintaining
/// the statistics alongside. Mirrors the engine's in-memory application
/// exactly — this *is* the redo path, and because the distinct sketch
/// is order-independent the replayed stats equal the stats the engine
/// held at commit time.
fn apply_record(
    tables: &mut HashMap<String, Batch>,
    stats: &mut HashMap<String, TableStats>,
    lsn: u64,
    rec: wal::WalRecord,
) -> Result<(), DurError> {
    match rec {
        wal::WalRecord::CreateTable { name, schema } => {
            stats.insert(name.clone(), TableStats::empty(&schema));
            tables.insert(name, Batch::empty(schema));
        }
        wal::WalRecord::InsertBatch { table, batch } => {
            let Some(t) = tables.get_mut(&table) else {
                return Err(DurError::Corrupt(format!(
                    "wal lsn {lsn}: insert into unknown table \"{table}\""
                )));
            };
            stats
                .entry(table)
                .or_insert_with(|| TableStats::empty(&t.schema))
                .observe_batch(&batch);
            t.append(batch);
        }
        wal::WalRecord::DropTable { name } => {
            stats.remove(&name);
            tables.remove(&name);
        }
        wal::WalRecord::PutTable { name, batch } => {
            stats.insert(name.clone(), TableStats::from_batch(&batch));
            tables.insert(name, batch);
        }
    }
    Ok(())
}

/// Reconstruct the catalog from `data_dir`: newest valid checkpoint
/// plus the WAL tail above it.
pub fn recover(options: &Options) -> Result<Recovered, DurError> {
    let wal_dir = options.wal_dir();
    let cps_dir = options.checkpoints_dir();

    // Newest checkpoint that loads cleanly wins; a damaged newer one is
    // skipped (its WAL is still retained, so nothing is lost).
    let mut base_lsn = 0u64;
    let mut tables: HashMap<String, Batch> = HashMap::new();
    let mut stats: HashMap<String, TableStats> = HashMap::new();
    let mut skipped: Vec<String> = Vec::new();
    for (lsn, path) in checkpoint::list_checkpoints(&cps_dir) {
        match checkpoint::load_checkpoint(&path) {
            Ok((cp_lsn, loaded)) => {
                base_lsn = cp_lsn;
                tables = loaded.into_iter().collect();
                // The stats sidecar is advisory: prefer the persisted
                // copy, recompute any table it is missing (older
                // checkpoints, or a damaged sidecar).
                stats = checkpoint::load_stats(&path).unwrap_or_default();
                break;
            }
            Err(e) => skipped.push(format!("{}: {e}", checkpoint::checkpoint_dir_name(lsn))),
        }
    }
    for (name, batch) in &tables {
        if !stats.contains_key(name) {
            stats.insert(name.clone(), TableStats::from_batch(batch));
        }
    }
    stats.retain(|name, _| tables.contains_key(name));

    let mut wal_files: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&wal_dir) {
        for entry in entries.flatten() {
            if let Some(start) = entry.file_name().to_str().and_then(wal::parse_wal_file_name) {
                wal_files.push((start, entry.path()));
            }
        }
    }
    wal_files.sort();

    // If every checkpoint was rejected, replay-from-scratch only works
    // when the WAL still reaches back to LSN 1.
    if base_lsn == 0 && !skipped.is_empty() {
        let covered = wal_files.first().map(|(s, _)| *s <= 1).unwrap_or(false);
        if !covered {
            return Err(DurError::Corrupt(format!(
                "no loadable checkpoint and the WAL does not reach back to LSN 1 ({})",
                skipped.join("; ")
            )));
        }
    }

    let mut replayed = 0u64;
    let mut truncated_tail = false;
    let mut prev_lsn = 0u64;
    let last_idx = wal_files.len().wrapping_sub(1);
    for (i, (_, path)) in wal_files.iter().enumerate() {
        let bytes = std::fs::read(path)?;
        let scan = wal::scan_wal_bytes(&bytes);
        for (lsn, rec) in scan.records {
            if prev_lsn != 0 && lsn != prev_lsn + 1 {
                return Err(DurError::Corrupt(format!(
                    "wal {}: lsn {lsn} follows {prev_lsn}, sequence has a gap",
                    path.display()
                )));
            }
            prev_lsn = lsn;
            if lsn > base_lsn {
                apply_record(&mut tables, &mut stats, lsn, rec)?;
                replayed += 1;
            }
        }
        if let Some(msg) = scan.failure {
            let is_last = i == last_idx;
            let end = scan.valid_end as usize;
            if is_last && !wal::resync_finds_valid_frame(&bytes, end) {
                // Torn tail: the one legitimate kind of damage — the
                // final record of the final file, with nothing valid
                // after it. Truncate and move on.
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.valid_end)?;
                f.sync_data()?;
                metrics::metrics().recovery_truncated_tail.inc();
                truncated_tail = true;
            } else {
                return Err(DurError::Corrupt(format!(
                    "wal {}: {msg} at offset {end}, with committed records after it",
                    path.display()
                )));
            }
        }
    }

    metrics::metrics().wal_replayed_records.add(replayed);
    Ok(Recovered {
        tables,
        stats,
        next_lsn: prev_lsn.max(base_lsn) + 1,
        replayed,
        truncated_tail,
    })
}

/// The live durability manager an engine holds while open.
pub struct Durability {
    options: Options,
    wal: wal::Wal,
    since_checkpoint: AtomicU64,
    checkpointing: AtomicBool,
}

impl fmt::Debug for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Durability")
            .field("data_dir", &self.options.data_dir)
            .field("fsync", &self.options.fsync)
            .finish_non_exhaustive()
    }
}

impl Durability {
    /// Recover the catalog from disk and start accepting appends.
    pub fn open(options: &Options) -> Result<(Durability, HashMap<String, Batch>), DurError> {
        let (dur, recovered) = Durability::open_full(options)?;
        Ok((dur, recovered.tables))
    }

    /// Like [`Durability::open`] but hands back the whole [`Recovered`]
    /// state, including the per-table statistics.
    pub fn open_full(options: &Options) -> Result<(Durability, Recovered), DurError> {
        std::fs::create_dir_all(&options.data_dir)?;
        let recovered = recover(options)?;
        let wal = wal::Wal::create(&options.wal_dir(), options.fsync, recovered.next_lsn)?;
        let dur = Durability {
            options: options.clone(),
            wal,
            since_checkpoint: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
        };
        Ok((dur, recovered))
    }

    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Append one record (call with the engine's table write lock held
    /// so LSN order equals apply order). Returns the record's LSN.
    pub fn append(&self, rec: &WalRecord) -> Result<u64, DurError> {
        let lsn = self.wal.append(rec)?;
        self.since_checkpoint.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Block until `lsn` is durable per the configured policy. Called
    /// *after* releasing the table lock, right before acking.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), DurError> {
        self.wal.wait_durable(lsn)
    }

    /// Whether enough mutations have accumulated to warrant a
    /// checkpoint. Cheap; callable on every commit.
    pub fn should_checkpoint(&self) -> bool {
        let every = self.options.checkpoint_every;
        every > 0 && self.since_checkpoint.load(Ordering::Relaxed) >= every
    }

    /// Claim the single checkpointing slot. Pair with
    /// [`Durability::write_checkpoint`] (which releases it) or
    /// [`Durability::abandon_checkpoint`].
    pub fn try_begin_checkpoint(&self) -> bool {
        !self.checkpointing.swap(true, Ordering::SeqCst)
    }

    /// Release the checkpointing slot without writing (snapshot failed).
    pub fn abandon_checkpoint(&self) {
        self.checkpointing.store(false, Ordering::SeqCst);
    }

    /// Sync + rotate the WAL; returns the LSN the checkpoint captures.
    /// Call with the table write lock held, together with snapshotting.
    pub fn rotate_for_checkpoint(&self) -> Result<u64, DurError> {
        self.wal.rotate()
    }

    /// Spill `tables` (the snapshot taken at [`rotate_for_checkpoint`]
    /// time) as a checkpoint at `lsn`, then prune old history. Runs
    /// outside the table lock. Releases the checkpointing slot.
    ///
    /// [`rotate_for_checkpoint`]: Durability::rotate_for_checkpoint
    pub fn write_checkpoint(
        &self,
        lsn: u64,
        tables: &[(String, Arc<Batch>)],
        stats: &HashMap<String, TableStats>,
    ) -> Result<u64, DurError> {
        let result = checkpoint::write_checkpoint(&self.options.checkpoints_dir(), lsn, tables, stats);
        if result.is_ok() {
            self.since_checkpoint.store(0, Ordering::Relaxed);
            let _ = checkpoint::prune(&self.options.checkpoints_dir(), &self.options.wal_dir());
        }
        self.checkpointing.store(false, Ordering::SeqCst);
        result
    }
}

/// Convenience: open, run `f` over (durability, recovered tables), used
/// by tests; the engine wires the pieces itself.
pub fn open_dir(dir: &Path) -> Result<(Durability, HashMap<String, Batch>), DurError> {
    Durability::open(&Options::new(dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::types::{Column, PgType};
    use colstore::{ColumnVec, Validity};

    fn batch(vals: &[i64]) -> Batch {
        Batch::new(
            vec![Column::new("x", PgType::Int8)],
            vec![ColumnVec::Int(vals.to_vec(), Validity::all_valid(vals.len()))],
            vals.len(),
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hq-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = tmp_dir("empty");
        let (dur, tables) = open_dir(&dir).unwrap();
        assert!(tables.is_empty());
        drop(dur);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replays_across_reopen() {
        let dir = tmp_dir("replay");
        {
            let (dur, _) = open_dir(&dir).unwrap();
            let l1 = dur
                .append(&WalRecord::CreateTable {
                    name: "t".into(),
                    schema: vec![Column::new("x", PgType::Int8)],
                })
                .unwrap();
            let l2 = dur
                .append(&WalRecord::InsertBatch { table: "t".into(), batch: batch(&[1, 2, 3]) })
                .unwrap();
            dur.wait_durable(l2).unwrap();
            assert_eq!((l1, l2), (1, 2));
        }
        let (dur, tables) = open_dir(&dir).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables["t"].rows(), 3);
        // LSNs continue after the replayed tail.
        let l3 = dur.append(&WalRecord::DropTable { name: "t".into() }).unwrap();
        assert_eq!(l3, 3);
        drop(dur);
        let (_, tables) = open_dir(&dir).unwrap();
        assert!(tables.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_tail_recovers_and_prunes() {
        let dir = tmp_dir("cp");
        {
            let (dur, _) = open_dir(&dir).unwrap();
            dur.append(&WalRecord::PutTable { name: "t".into(), batch: batch(&[1]) }).unwrap();
            dur.append(&WalRecord::PutTable { name: "u".into(), batch: batch(&[2, 3]) }).unwrap();
            assert!(dur.try_begin_checkpoint());
            let lsn = dur.rotate_for_checkpoint().unwrap();
            assert_eq!(lsn, 2);
            dur.write_checkpoint(
                lsn,
                &[
                    ("t".to_string(), Arc::new(batch(&[1]))),
                    ("u".to_string(), Arc::new(batch(&[2, 3]))),
                ],
                &HashMap::new(),
            )
            .unwrap();
            // Tail after the checkpoint.
            dur.append(&WalRecord::InsertBatch { table: "t".into(), batch: batch(&[9]) }).unwrap();
        }
        let (_, rec) = Durability::open_full(&Options::new(&dir)).unwrap();
        assert_eq!(rec.tables["t"].rows(), 2);
        assert_eq!(rec.tables["u"].rows(), 2);
        // Stats were recomputed from the checkpoint (no sidecar here)
        // and carried through the WAL tail replay.
        assert_eq!(rec.stats["t"], TableStats::from_batch(&rec.tables["t"]));
        assert_eq!(rec.stats["u"], TableStats::from_batch(&rec.tables["u"]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_stats_identical_to_recompute() {
        let dir = tmp_dir("stats");
        {
            let (dur, _) = open_dir(&dir).unwrap();
            dur.append(&WalRecord::CreateTable {
                name: "t".into(),
                schema: vec![Column::new("x", PgType::Int8)],
            })
            .unwrap();
            dur.append(&WalRecord::InsertBatch { table: "t".into(), batch: batch(&[1, 2]) })
                .unwrap();
            dur.append(&WalRecord::InsertBatch { table: "t".into(), batch: batch(&[2, 3]) })
                .unwrap();
        }
        let (_, rec) = Durability::open_full(&Options::new(&dir)).unwrap();
        assert_eq!(rec.stats["t"], TableStats::from_batch(&rec.tables["t"]));
        assert_eq!(rec.stats["t"].rows, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        {
            let (dur, _) = open_dir(&dir).unwrap();
            dur.append(&WalRecord::PutTable { name: "t".into(), batch: batch(&[1]) }).unwrap();
            assert!(dur.try_begin_checkpoint());
            let lsn = dur.rotate_for_checkpoint().unwrap();
            dur.write_checkpoint(lsn, &[("t".to_string(), Arc::new(batch(&[1])))], &HashMap::new())
                .unwrap();
            dur.append(&WalRecord::InsertBatch { table: "t".into(), batch: batch(&[2]) }).unwrap();
            assert!(dur.try_begin_checkpoint());
            let lsn = dur.rotate_for_checkpoint().unwrap();
            dur.write_checkpoint(
                lsn,
                &[("t".to_string(), Arc::new(batch(&[1, 2])))],
                &HashMap::new(),
            )
            .unwrap();
        }
        // Damage the newest checkpoint's segment.
        let cps = checkpoint::list_checkpoints(&Options::new(&dir).checkpoints_dir());
        assert_eq!(cps.len(), 2);
        std::fs::remove_file(cps[0].1.join("000000.seg")).unwrap();
        let (_, tables) = open_dir(&dir).unwrap();
        // Previous checkpoint (rows [1]) + WAL tail replay (insert 2).
        assert_eq!(tables["t"].rows(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_mid_file_corruption_is_an_error() {
        let dir = tmp_dir("tear");
        {
            let (dur, _) = open_dir(&dir).unwrap();
            for i in 0..3 {
                dur.append(&WalRecord::PutTable { name: format!("t{i}"), batch: batch(&[i]) })
                    .unwrap();
            }
        }
        let wal_path = Options::new(&dir).wal_dir().join(wal::wal_file_name(1));
        let bytes = std::fs::read(&wal_path).unwrap();

        // Torn tail: drop the final 3 bytes.
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let (_, tables) = open_dir(&dir).unwrap();
        assert_eq!(tables.len(), 2, "torn third record dropped, first two recovered");
        // The truncate persisted: reopen sees a clean file.
        let rec = recover(&Options::new(&dir)).unwrap();
        assert!(!rec.truncated_tail);

        // Mid-file corruption: flip a byte inside the first record.
        std::fs::write(&wal_path, &bytes).unwrap();
        let mut dam = bytes.clone();
        dam[10] ^= 0x10;
        std::fs::write(&wal_path, &dam).unwrap();
        match recover(&Options::new(&dir)) {
            Err(DurError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|r| r.tables.len())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn options_env_parsing() {
        // Uses explicit constructors; from_env is covered by the chaos
        // suite end-to-end (env vars are process-global, not test-safe).
        let o = Options::new("/tmp/x");
        assert_eq!(o.checkpoint_every, 1024);
        assert!(matches!(o.fsync, FsyncPolicy::Group(_)));
    }
}
