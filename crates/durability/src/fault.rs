//! Deterministic crash injection for the chaos suite.
//!
//! The durability layer calls [`crash_point`] at the handful of moments
//! where dying is interesting (mid-append, between segment writes,
//! before the checkpoint rename). In production the calls are two
//! relaxed atomic loads and nothing else. Under test, setting
//!
//! ```text
//! HQ_DUR_CRASH=<point>[:<n>]
//! ```
//!
//! makes the process kill itself with SIGKILL the `n`-th time (default
//! first) execution reaches `<point>` — the same "no destructors, no
//! flushes, no goodbyes" death the acceptance criteria demand, but
//! placed deterministically instead of raced from outside.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

struct Armed {
    point: String,
    /// Remaining hits before the crash fires.
    countdown: AtomicU32,
}

fn armed() -> &'static Option<Armed> {
    static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
    ARMED.get_or_init(|| {
        let spec = std::env::var("HQ_DUR_CRASH").ok()?;
        let (point, n) = match spec.rsplit_once(':') {
            Some((p, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                (p.to_string(), n.parse().unwrap_or(1))
            }
            _ => (spec, 1),
        };
        Some(Armed { point, countdown: AtomicU32::new(n.max(1)) })
    })
}

/// Die here if `HQ_DUR_CRASH` targets this point (and its countdown has
/// run out). No-op otherwise.
pub fn crash_point(point: &str) {
    let Some(a) = armed() else { return };
    if a.point != point {
        return;
    }
    if a.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
        die();
    }
}

/// Consume one hit of a *cooperative* fault point: returns true when
/// this hit is the one armed to crash. The WAL appender uses it for
/// `wal.partial-append` — it must write half a frame before dying,
/// which only the writer can arrange, so it asks first, damages the
/// file, then calls [`crash_now`].
pub fn about_to_crash(point: &str) -> bool {
    match armed() {
        Some(a) if a.point == point => a.countdown.fetch_sub(1, Ordering::SeqCst) == 1,
        _ => false,
    }
}

/// Unconditional SIGKILL — the second half of a cooperative fault site
/// that [`about_to_crash`] said yes to.
pub fn crash_now() -> ! {
    die()
}

/// SIGKILL self: the OS reaps the process with no user-space cleanup —
/// exactly what a power cut or OOM kill looks like to the data
/// directory. `abort()` as fallback if `kill` cannot be spawned.
fn die() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
    // Unreachable when the SIGKILL lands; abort covers exotic setups
    // with no `kill` binary.
    std::process::abort();
}
