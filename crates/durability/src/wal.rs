//! Append-only, CRC-framed write-ahead log with group-commit fsync.
//!
//! Every committed mutation becomes one *typed* record — not SQL text.
//! Replay is deterministic batch application with no dependence on
//! parser behaviour or session temp tables (a `CREATE TABLE AS` logs
//! the *computed* result, so recovery never re-runs the query).
//!
//! ## Frame format
//!
//! ```text
//! ┌─────────┬─────────┬─────────────┬──────────────────┐
//! │ len u32 │ crc u32 │   lsn u64   │ payload (len-8 B)│
//! └─────────┴─────────┴─────────────┴──────────────────┘
//!            crc32 over [lsn..payload]; len = 8 + payload
//! ```
//!
//! Files are named `wal-%016x.log` by the LSN of their first record and
//! rotate at every checkpoint, so retention is file-granular.
//!
//! ## Commit protocol
//!
//! The engine appends under its table write lock (so LSN order equals
//! apply order), releases the lock, then calls [`Wal::wait_durable`]
//! before acknowledging the client:
//!
//! * `always` — fsync inline before the ack returns;
//! * `group(ms)` — block on a condvar until the background flusher's
//!   next cadence covers this LSN (one fsync amortized across every
//!   commit that arrived in the window — classic group commit);
//! * `off` — return immediately (fsync only at rotation/shutdown).

use crate::codec::{self, CodecError, Cursor};
use crate::metrics::metrics;
use crate::{crc, fault, DurError};
use colstore::types::Column;
use colstore::Batch;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// When the ack is allowed to outrun the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every acknowledgement.
    Always,
    /// Group commit: one fsync per interval covers every commit that
    /// arrived during it; commits block until their LSN is covered.
    Group(Duration),
    /// Never fsync on commit (data still reaches the OS; a process
    /// crash loses nothing, a power cut may lose the tail).
    Off,
}

impl FsyncPolicy {
    /// Parse the `HQ_FSYNC` knob: `always`, `off`, `group` (default
    /// 5 ms) or `group(<n>ms)`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Off),
            "group" => Some(FsyncPolicy::Group(Duration::from_millis(5))),
            _ => {
                let inner = s.strip_prefix("group(")?.strip_suffix(')')?;
                let ms: u64 = inner.trim().strip_suffix("ms").unwrap_or(inner).trim().parse().ok()?;
                Some(FsyncPolicy::Group(Duration::from_millis(ms.max(1))))
            }
        }
    }

    /// Stable label for diagnostics and bench output.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Group(d) => format!("group({}ms)", d.as_millis()),
            FsyncPolicy::Off => "off".into(),
        }
    }
}

/// One logical mutation, replayable without a SQL parser.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE` — empty table with this schema.
    CreateTable { name: String, schema: Vec<Column> },
    /// `INSERT` — append these rows (already cast to the table schema).
    InsertBatch { table: String, batch: Batch },
    /// `DROP TABLE`.
    DropTable { name: String },
    /// Create-or-replace with materialized contents (`CREATE TABLE AS`
    /// results, host-API loads).
    PutTable { name: String, batch: Batch },
}

impl WalRecord {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::CreateTable { name, schema } => {
                out.push(0);
                codec::put_string(out, name);
                codec::encode_schema(out, schema);
            }
            WalRecord::InsertBatch { table, batch } => {
                out.push(1);
                codec::put_string(out, table);
                codec::encode_batch(out, batch);
            }
            WalRecord::DropTable { name } => {
                out.push(2);
                codec::put_string(out, name);
            }
            WalRecord::PutTable { name, batch } => {
                out.push(3);
                codec::put_string(out, name);
                codec::encode_batch(out, batch);
            }
        }
    }

    pub fn decode(c: &mut Cursor) -> Result<WalRecord, CodecError> {
        Ok(match c.u8()? {
            0 => WalRecord::CreateTable { name: c.string()?, schema: codec::decode_schema(c)? },
            1 => WalRecord::InsertBatch { table: c.string()?, batch: codec::decode_batch(c)? },
            2 => WalRecord::DropTable { name: c.string()? },
            3 => WalRecord::PutTable { name: c.string()?, batch: codec::decode_batch(c)? },
            other => return Err(CodecError(format!("unknown WAL record tag {other}"))),
        })
    }
}

/// Name of the WAL file whose first record carries `start_lsn`.
pub fn wal_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.log")
}

/// Parse a WAL file name back to its starting LSN.
pub fn parse_wal_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

struct WalState {
    file: File,
    /// LSN the next append will receive.
    next_lsn: u64,
    /// Highest LSN handed to the OS.
    appended_lsn: u64,
    /// Highest LSN known fsynced.
    durable_lsn: u64,
}

struct WalShared {
    state: Mutex<WalState>,
    durable: Condvar,
}

/// The live appender over a WAL directory.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    shared: Arc<WalShared>,
    shutdown: Arc<AtomicBool>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl Wal {
    /// Start a fresh WAL file at `next_lsn` inside `dir` (created if
    /// missing). Recovery always hands us the LSN after the last one it
    /// saw, so the new file's name never collides with replayed ones.
    pub fn create(dir: &Path, policy: FsyncPolicy, next_lsn: u64) -> Result<Wal, DurError> {
        std::fs::create_dir_all(dir)?;
        let file = open_segment(dir, next_lsn)?;
        let shared = Arc::new(WalShared {
            state: Mutex::new(WalState {
                file,
                next_lsn,
                appended_lsn: next_lsn - 1,
                durable_lsn: next_lsn - 1,
            }),
            durable: Condvar::new(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let flusher = match policy {
            FsyncPolicy::Group(interval) => {
                let shared = Arc::clone(&shared);
                let shutdown = Arc::clone(&shutdown);
                Some(std::thread::spawn(move || group_flusher(shared, shutdown, interval)))
            }
            _ => None,
        };
        Ok(Wal { dir: dir.to_path_buf(), policy, shared, shutdown, flusher })
    }

    /// Append one record; returns its LSN. The caller decides when to
    /// wait for durability (see [`Wal::wait_durable`]).
    pub fn append(&self, rec: &WalRecord) -> Result<u64, DurError> {
        let mut payload = Vec::new();
        rec.encode(&mut payload);
        let mut state = self.shared.state.lock().unwrap();
        let lsn = state.next_lsn;

        let mut frame = Vec::with_capacity(payload.len() + 20);
        codec::put_u32(&mut frame, (payload.len() + 8) as u32);
        let mut body = Vec::with_capacity(payload.len() + 8);
        codec::put_u64(&mut body, lsn);
        body.extend_from_slice(&payload);
        codec::put_u32(&mut frame, crc::crc32(&body));
        frame.extend_from_slice(&body);

        fault::crash_point("wal.before-append");
        if fault::about_to_crash("wal.partial-append") {
            // Write a deliberately torn frame, force it to the device,
            // then die — the canonical mid-commit power cut.
            let half = &frame[..frame.len() / 2];
            let _ = state.file.write_all(half);
            let _ = state.file.sync_data();
            fault::crash_now();
        }
        state.file.write_all(&frame)?;
        state.next_lsn = lsn + 1;
        state.appended_lsn = lsn;
        metrics().wal_appends.inc();
        fault::crash_point("wal.after-append");
        Ok(lsn)
    }

    /// Block until `lsn` is durable per the configured policy.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), DurError> {
        match self.policy {
            FsyncPolicy::Off => Ok(()),
            FsyncPolicy::Always => {
                // The fsync runs here, not in `append`: the engine
                // appends under its table write lock and waits after
                // releasing it, so the disk never stalls readers. One
                // sync covers every record appended so far.
                let mut state = self.shared.state.lock().unwrap();
                if state.durable_lsn < lsn {
                    sync_timed(&state.file)?;
                    state.durable_lsn = state.appended_lsn;
                    fault::crash_point("wal.after-fsync");
                }
                Ok(())
            }
            FsyncPolicy::Group(interval) => {
                let mut state = self.shared.state.lock().unwrap();
                while state.durable_lsn < lsn {
                    let (next, timeout) = self
                        .shared
                        .durable
                        .wait_timeout(state, interval.max(Duration::from_millis(1)) * 8)
                        .unwrap();
                    state = next;
                    // Self-heal from a missed wakeup: fsync inline.
                    if timeout.timed_out() && state.durable_lsn < lsn {
                        sync_timed(&state.file)?;
                        state.durable_lsn = state.appended_lsn;
                    }
                }
                Ok(())
            }
        }
    }

    /// Highest LSN ever appended (the checkpoint's high-water mark).
    pub fn appended_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().appended_lsn
    }

    /// Sync the current file and switch appends to a fresh one. Returns
    /// the last LSN of the closed file. Called with the engine's table
    /// lock held, so no append can interleave.
    pub fn rotate(&self) -> Result<u64, DurError> {
        let mut state = self.shared.state.lock().unwrap();
        state.file.sync_data()?;
        let last = state.appended_lsn;
        state.file = open_segment(&self.dir, state.next_lsn)?;
        state.durable_lsn = last;
        self.shared.durable.notify_all();
        Ok(last)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        // Clean-shutdown durability regardless of policy.
        if let Ok(state) = self.shared.state.lock() {
            let _ = state.file.sync_data();
        }
    }
}

fn open_segment(dir: &Path, start_lsn: u64) -> std::io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(wal_file_name(start_lsn)))
}

fn sync_timed(file: &File) -> std::io::Result<()> {
    let t0 = Instant::now();
    file.sync_data()?;
    metrics().wal_fsync_seconds.observe_secs(t0.elapsed().as_secs_f64());
    Ok(())
}

fn group_flusher(shared: Arc<WalShared>, shutdown: Arc<AtomicBool>, interval: Duration) {
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        let (file, target) = {
            let state = shared.state.lock().unwrap();
            if state.appended_lsn <= state.durable_lsn {
                continue;
            }
            match state.file.try_clone() {
                Ok(f) => (f, state.appended_lsn),
                Err(_) => continue,
            }
        };
        // fsync outside the lock: appenders keep making progress while
        // the disk works.
        if sync_timed(&file).is_ok() {
            let mut state = shared.state.lock().unwrap();
            state.durable_lsn = state.durable_lsn.max(target);
            drop(state);
            shared.durable.notify_all();
        }
    }
}

// ------------------------------------------------------------- reading

/// Result of scanning one WAL file.
pub struct WalScan {
    /// Records in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset just past the last valid frame.
    pub valid_end: u64,
    /// Set when bytes after `valid_end` failed to parse: the torn-tail
    /// candidate (only legitimate in the *final* WAL file).
    pub failure: Option<String>,
}

/// Scan a WAL file's bytes. Never panics: damage is reported through
/// `failure`, and `resync_finds_valid_frame` distinguishes a torn tail
/// from mid-file corruption.
pub fn scan_wal_bytes(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return WalScan { records, valid_end: pos as u64, failure: None };
        }
        match parse_frame_at(bytes, pos) {
            Ok((lsn, rec, next)) => {
                records.push((lsn, rec));
                pos = next;
            }
            Err(msg) => {
                return WalScan { records, valid_end: pos as u64, failure: Some(msg) };
            }
        }
    }
}

fn parse_frame_at(bytes: &[u8], pos: usize) -> Result<(u64, WalRecord, usize), String> {
    let remaining = bytes.len() - pos;
    if remaining < 8 {
        return Err(format!("{remaining} trailing bytes, frame header needs 8"));
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let crc_want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
    if len < 9 {
        return Err(format!("frame length {len} below minimum"));
    }
    if remaining - 8 < len {
        return Err(format!("frame declares {len} bytes, {} remain", remaining - 8));
    }
    let body = &bytes[pos + 8..pos + 8 + len];
    if crc::crc32(body) != crc_want {
        return Err("frame checksum mismatch".into());
    }
    let mut c = Cursor::new(body);
    let lsn = c.u64().map_err(|e| e.to_string())?;
    let rec = WalRecord::decode(&mut c).map_err(|e| e.to_string())?;
    if !c.is_done() {
        return Err("frame has trailing bytes after its record".into());
    }
    Ok((lsn, rec, pos + 8 + len))
}

/// After a parse failure at `from`, look for any complete, checksummed,
/// decodable frame later in the file. Finding one means the damage is
/// *followed by* committed data — that is corruption, not a torn tail,
/// and recovery must refuse to silently drop the survivors.
pub fn resync_finds_valid_frame(bytes: &[u8], from: usize) -> bool {
    let start = from + 1;
    if start >= bytes.len() {
        return false;
    }
    (start..bytes.len()).any(|off| parse_frame_at(bytes, off).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::types::PgType;

    fn rec(n: i64) -> WalRecord {
        WalRecord::CreateTable {
            name: format!("t{n}"),
            schema: vec![Column::new("x", PgType::Int8)],
        }
    }

    fn frames(records: &[(u64, WalRecord)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (lsn, r) in records {
            let mut payload = Vec::new();
            r.encode(&mut payload);
            let mut body = Vec::new();
            codec::put_u64(&mut body, *lsn);
            body.extend_from_slice(&payload);
            codec::put_u32(&mut out, body.len() as u32);
            codec::put_u32(&mut out, crc::crc32(&body));
            out.extend_from_slice(&body);
        }
        out
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("OFF"), Some(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("group"),
            Some(FsyncPolicy::Group(Duration::from_millis(5)))
        );
        assert_eq!(
            FsyncPolicy::parse("group(25ms)"),
            Some(FsyncPolicy::Group(Duration::from_millis(25)))
        );
        assert_eq!(
            FsyncPolicy::parse("group(3)"),
            Some(FsyncPolicy::Group(Duration::from_millis(3)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn wal_file_names_round_trip() {
        assert_eq!(parse_wal_file_name(&wal_file_name(1)), Some(1));
        assert_eq!(parse_wal_file_name(&wal_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_wal_file_name("wal-zz.log"), None);
        assert_eq!(parse_wal_file_name("MANIFEST"), None);
    }

    #[test]
    fn scan_round_trips_and_stops_clean() {
        let bytes = frames(&[(1, rec(1)), (2, rec(2)), (3, rec(3))]);
        let scan = scan_wal_bytes(&bytes);
        assert!(scan.failure.is_none());
        assert_eq!(scan.valid_end, bytes.len() as u64);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].0, 3);
    }

    #[test]
    fn torn_tail_is_detected_at_every_truncation_point() {
        let bytes = frames(&[(1, rec(1)), (2, rec(2))]);
        let first_len = frames(&[(1, rec(1))]).len();
        for cut in first_len + 1..bytes.len() {
            let scan = scan_wal_bytes(&bytes[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_end as usize, first_len);
            assert!(scan.failure.is_some());
            assert!(!resync_finds_valid_frame(&bytes[..cut], scan.valid_end as usize));
        }
    }

    #[test]
    fn corruption_before_valid_records_is_not_a_torn_tail() {
        let mut bytes = frames(&[(1, rec(1)), (2, rec(2)), (3, rec(3))]);
        let first_len = frames(&[(1, rec(1))]).len();
        // Flip a bit inside record 2's body.
        bytes[first_len + 10] ^= 0x40;
        let scan = scan_wal_bytes(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.failure.is_some());
        assert!(
            resync_finds_valid_frame(&bytes, scan.valid_end as usize),
            "record 3 is intact after the damage — must be found"
        );
    }
}
