//! Binary codec for the on-disk column representation.
//!
//! One encoding is shared by WAL record payloads and checkpoint segment
//! bodies, so recovery speaks a single dialect: little-endian
//! fixed-width scalars, length-prefixed strings, a tagged byte per
//! enum variant. Decoding is *total* — every read is bounds-checked and
//! every tag validated, returning [`CodecError`] instead of panicking,
//! because recovery feeds this module bytes that may have been torn or
//! bit-flipped by the storage layer (the chaos suite does exactly
//! that on purpose).

use colstore::types::{Cell, Column, PgType};
use colstore::{Batch, ColumnVec, Validity};
use std::fmt;

/// A structural decode failure: truncated buffer, unknown tag,
/// inconsistent lengths. Always a typed error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Bounds-checked reader over a byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return err(format!("need {n} bytes, have {}", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length check before any bulk `Vec::with_capacity`: a corrupt
    /// length prefix must produce an error, not an allocation the size
    /// of the damage.
    fn checked_len(&self, n: u64, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = usize::try_from(n).map_err(|_| CodecError("length overflows usize".into()))?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return err(format!(
                "declared {n} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(n)
    }

    pub fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return err(format!("string of {n} bytes exceeds remaining {}", self.remaining()));
        }
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| CodecError("string is not valid UTF-8".into()))
    }
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------- types

fn type_tag(ty: PgType) -> u8 {
    match ty {
        PgType::Bool => 0,
        PgType::Int2 => 1,
        PgType::Int4 => 2,
        PgType::Int8 => 3,
        PgType::Float4 => 4,
        PgType::Float8 => 5,
        PgType::Varchar => 6,
        PgType::Text => 7,
        PgType::Date => 8,
        PgType::Time => 9,
        PgType::Timestamp => 10,
    }
}

fn tag_type(tag: u8) -> Result<PgType, CodecError> {
    Ok(match tag {
        0 => PgType::Bool,
        1 => PgType::Int2,
        2 => PgType::Int4,
        3 => PgType::Int8,
        4 => PgType::Float4,
        5 => PgType::Float8,
        6 => PgType::Varchar,
        7 => PgType::Text,
        8 => PgType::Date,
        9 => PgType::Time,
        10 => PgType::Timestamp,
        other => return err(format!("unknown PgType tag {other}")),
    })
}

pub fn encode_column_def(out: &mut Vec<u8>, col: &Column) {
    put_string(out, &col.name);
    out.push(type_tag(col.ty));
}

pub fn decode_column_def(c: &mut Cursor) -> Result<Column, CodecError> {
    let name = c.string()?;
    let ty = tag_type(c.u8()?)?;
    Ok(Column::new(name, ty))
}

pub fn encode_schema(out: &mut Vec<u8>, schema: &[Column]) {
    put_u32(out, schema.len() as u32);
    for col in schema {
        encode_column_def(out, col);
    }
}

pub fn decode_schema(c: &mut Cursor) -> Result<Vec<Column>, CodecError> {
    let n = c.u32()? as usize;
    // A column definition is at least 5 bytes (empty name + type tag).
    if n.saturating_mul(5) > c.remaining() {
        return err(format!("declared {n} columns but only {} bytes remain", c.remaining()));
    }
    (0..n).map(|_| decode_column_def(c)).collect()
}

// ---------------------------------------------------------------- cells

fn encode_cell(out: &mut Vec<u8>, cell: &Cell) {
    match cell {
        Cell::Null => out.push(0),
        Cell::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Cell::Int(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Cell::Float(v) => {
            out.push(3);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Cell::Text(s) => {
            out.push(4);
            put_string(out, s);
        }
        Cell::Date(d) => {
            out.push(5);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Cell::Time(t) => {
            out.push(6);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Cell::Timestamp(t) => {
            out.push(7);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn decode_cell(c: &mut Cursor) -> Result<Cell, CodecError> {
    Ok(match c.u8()? {
        0 => Cell::Null,
        1 => Cell::Bool(c.u8()? != 0),
        2 => Cell::Int(c.i64()?),
        3 => Cell::Float(c.f64()?),
        4 => Cell::Text(c.string()?),
        5 => Cell::Date(c.i32()?),
        6 => Cell::Time(c.i64()?),
        7 => Cell::Timestamp(c.i64()?),
        other => return err(format!("unknown Cell tag {other}")),
    })
}

// ------------------------------------------------------------- validity

/// Validity encodes as a presence flag plus a packed null bitmap (one
/// bit per row, LSB-first), only when any null exists.
fn encode_validity(out: &mut Vec<u8>, v: &Validity) {
    if !v.any_null() {
        out.push(0);
        return;
    }
    out.push(1);
    let mut bytes = vec![0u8; v.len().div_ceil(8)];
    for i in 0..v.len() {
        if v.is_null(i) {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bytes);
}

fn decode_validity(c: &mut Cursor, len: usize) -> Result<Validity, CodecError> {
    let mut v = Validity::all_valid(len);
    match c.u8()? {
        0 => Ok(v),
        1 => {
            let bytes = c.take(len.div_ceil(8))?;
            for (i, byte) in bytes.iter().enumerate() {
                let mut b = *byte;
                while b != 0 {
                    let bit = b.trailing_zeros() as usize;
                    let row = i * 8 + bit;
                    if row >= len {
                        return err("null bitmap sets a bit past the column length");
                    }
                    v.set_null(row);
                    b &= b - 1;
                }
            }
            Ok(v)
        }
        other => err(format!("unknown validity tag {other}")),
    }
}

// -------------------------------------------------------------- columns

fn encode_column(out: &mut Vec<u8>, col: &ColumnVec) {
    match col {
        ColumnVec::Bool(data, v) => {
            out.push(0);
            put_u64(out, data.len() as u64);
            out.extend(data.iter().map(|b| *b as u8));
            encode_validity(out, v);
        }
        ColumnVec::Int(data, v) => {
            out.push(1);
            put_u64(out, data.len() as u64);
            for x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
            encode_validity(out, v);
        }
        ColumnVec::Float(data, v) => {
            out.push(2);
            put_u64(out, data.len() as u64);
            for x in data {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            encode_validity(out, v);
        }
        ColumnVec::Text(data, v) => {
            out.push(3);
            put_u64(out, data.len() as u64);
            for s in data {
                put_string(out, s);
            }
            encode_validity(out, v);
        }
        ColumnVec::Date(data, v) => {
            out.push(4);
            put_u64(out, data.len() as u64);
            for x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
            encode_validity(out, v);
        }
        ColumnVec::Time(data, v) => {
            out.push(5);
            put_u64(out, data.len() as u64);
            for x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
            encode_validity(out, v);
        }
        ColumnVec::Timestamp(data, v) => {
            out.push(6);
            put_u64(out, data.len() as u64);
            for x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
            encode_validity(out, v);
        }
        ColumnVec::Cells(cells) => {
            out.push(7);
            put_u64(out, cells.len() as u64);
            for cell in cells {
                encode_cell(out, cell);
            }
        }
    }
}

fn decode_column(c: &mut Cursor) -> Result<ColumnVec, CodecError> {
    let tag = c.u8()?;
    let declared = c.u64()?;
    Ok(match tag {
        0 => {
            let n = c.checked_len(declared, 1)?;
            let data = c.take(n)?.iter().map(|b| *b != 0).collect();
            ColumnVec::Bool(data, decode_validity(c, n)?)
        }
        1 => {
            let n = c.checked_len(declared, 8)?;
            let data = (0..n).map(|_| c.i64()).collect::<Result<_, _>>()?;
            ColumnVec::Int(data, decode_validity(c, n)?)
        }
        2 => {
            let n = c.checked_len(declared, 8)?;
            let data = (0..n).map(|_| c.f64()).collect::<Result<_, _>>()?;
            ColumnVec::Float(data, decode_validity(c, n)?)
        }
        3 => {
            let n = c.checked_len(declared, 4)?;
            let data = (0..n).map(|_| c.string()).collect::<Result<_, _>>()?;
            ColumnVec::Text(data, decode_validity(c, n)?)
        }
        4 => {
            let n = c.checked_len(declared, 4)?;
            let data = (0..n).map(|_| c.i32()).collect::<Result<_, _>>()?;
            ColumnVec::Date(data, decode_validity(c, n)?)
        }
        5 => {
            let n = c.checked_len(declared, 8)?;
            let data = (0..n).map(|_| c.i64()).collect::<Result<_, _>>()?;
            ColumnVec::Time(data, decode_validity(c, n)?)
        }
        6 => {
            let n = c.checked_len(declared, 8)?;
            let data = (0..n).map(|_| c.i64()).collect::<Result<_, _>>()?;
            ColumnVec::Timestamp(data, decode_validity(c, n)?)
        }
        7 => {
            let n = c.checked_len(declared, 1)?;
            let cells = (0..n).map(|_| decode_cell(c)).collect::<Result<_, _>>()?;
            ColumnVec::Cells(cells)
        }
        other => return err(format!("unknown ColumnVec tag {other}")),
    })
}

// -------------------------------------------------------------- batches

/// Encode a full batch: schema, row count, then each column block.
pub fn encode_batch(out: &mut Vec<u8>, batch: &Batch) {
    encode_schema(out, &batch.schema);
    put_u64(out, batch.rows() as u64);
    for col in &batch.columns {
        encode_column(out, col);
    }
}

pub fn decode_batch(c: &mut Cursor) -> Result<Batch, CodecError> {
    let schema = decode_schema(c)?;
    let rows = usize::try_from(c.u64()?)
        .map_err(|_| CodecError("row count overflows usize".into()))?;
    let mut columns = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let col = decode_column(c)?;
        if col.len() != rows {
            return err(format!("column of {} rows in a {rows}-row batch", col.len()));
        }
        columns.push(col);
    }
    Ok(Batch::new(schema, columns, rows))
}

/// Encode one column on its own (segment bodies address columns
/// individually via footer offsets).
pub fn encode_column_block(out: &mut Vec<u8>, col: &ColumnVec) {
    encode_column(out, col);
}

pub fn decode_column_block(c: &mut Cursor) -> Result<ColumnVec, CodecError> {
    decode_column(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(batch: &Batch) -> Batch {
        let mut buf = Vec::new();
        encode_batch(&mut buf, batch);
        let mut c = Cursor::new(&buf);
        let got = decode_batch(&mut c).expect("decode");
        assert!(c.is_done(), "trailing bytes after batch");
        got
    }

    #[test]
    fn batch_round_trips_all_variants() {
        let mut v2 = Validity::all_valid(2);
        v2.set_null(1);
        let batch = Batch::new(
            vec![
                Column::new("b", PgType::Bool),
                Column::new("i", PgType::Int8),
                Column::new("f", PgType::Float8),
                Column::new("t", PgType::Text),
                Column::new("d", PgType::Date),
                Column::new("tm", PgType::Time),
                Column::new("ts", PgType::Timestamp),
                Column::new("mixed", PgType::Text),
            ],
            vec![
                ColumnVec::Bool(vec![true, false], v2.clone()),
                ColumnVec::Int(vec![i64::MIN, i64::MAX], v2.clone()),
                ColumnVec::Float(vec![f64::NAN, -0.0], v2.clone()),
                ColumnVec::Text(vec!["héllo".into(), String::new()], v2.clone()),
                ColumnVec::Date(vec![-1, 6021], v2.clone()),
                ColumnVec::Time(vec![0, 86_399_999_999], v2.clone()),
                ColumnVec::Timestamp(vec![i64::MIN / 2, 1], v2),
                ColumnVec::Cells(vec![Cell::Int(1), Cell::Text("x".into())]),
            ],
            2,
        );
        let got = round_trip(&batch);
        assert!(batch.structurally_equal(&got));
        // NaN payload bits survive (structurally_equal treats NaN==NaN,
        // so check the bits directly too).
        match (&batch.columns[2], &got.columns[2]) {
            (ColumnVec::Float(a, _), ColumnVec::Float(b, _)) => {
                assert_eq!(a[0].to_bits(), b[0].to_bits());
            }
            _ => panic!("float column changed variant"),
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = Batch::empty(vec![Column::new("x", PgType::Int8)]);
        assert!(batch.structurally_equal(&round_trip(&batch)));
        let unit = Batch::unit();
        assert!(unit.structurally_equal(&round_trip(&unit)));
    }

    #[test]
    fn truncated_buffer_is_an_error_not_a_panic() {
        let batch = Batch::new(
            vec![Column::new("x", PgType::Int8)],
            vec![ColumnVec::Int(vec![1, 2, 3], Validity::all_valid(3))],
            3,
        );
        let mut buf = Vec::new();
        encode_batch(&mut buf, &batch);
        for cut in 0..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            assert!(decode_batch(&mut c).is_err(), "truncation at {cut} decoded");
        }
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate() {
        // A Text column claiming 2^60 strings must fail fast.
        let mut buf = Vec::new();
        buf.push(3u8); // Text tag
        put_u64(&mut buf, 1u64 << 60);
        let mut c = Cursor::new(&buf);
        assert!(decode_column(&mut c).is_err());
    }
}
