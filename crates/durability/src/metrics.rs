//! Durability metrics, resolved once into the process-wide registry —
//! visible over both admin surfaces (`SHOW metrics` on the PG wire,
//! `\metrics` on QIPC) like every other subsystem's counters.

use std::sync::{Arc, OnceLock};

pub struct DurMetrics {
    /// WAL records appended (one per committed mutation).
    pub wal_appends: Arc<obs::Counter>,
    /// fsync latency on the WAL file (inline or group-flusher).
    pub wal_fsync_seconds: Arc<obs::Histogram>,
    /// Records replayed from the WAL tail during recovery.
    pub wal_replayed_records: Arc<obs::Counter>,
    /// Bytes written into checkpoint segments.
    pub checkpoint_bytes: Arc<obs::Counter>,
    /// Checkpoints completed.
    pub checkpoints: Arc<obs::Counter>,
    /// Torn final WAL records truncated during recovery.
    pub recovery_truncated_tail: Arc<obs::Counter>,
}

pub fn metrics() -> &'static DurMetrics {
    static METRICS: OnceLock<DurMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global_registry();
        DurMetrics {
            wal_appends: reg.counter("wal_appends_total"),
            wal_fsync_seconds: reg.histogram("wal_fsync_seconds"),
            wal_replayed_records: reg.counter("wal_replayed_records_total"),
            checkpoint_bytes: reg.counter("checkpoint_bytes_total"),
            checkpoints: reg.counter("checkpoints_total"),
            recovery_truncated_tail: reg.counter("recovery_truncated_tail_total"),
        }
    })
}
