//! On-disk columnar segments: one table's batch per file.
//!
//! ## Layout
//!
//! ```text
//! ┌──────────────┬──────────────┬───┬────────┬──────────────┬─────────┬───────────┐
//! │ column 0 blk │ column 1 blk │ … │ footer │ footer_len   │ crc u32 │ magic 8 B │
//! │              │              │   │        │ u32          │         │ "HQSEGV01"│
//! └──────────────┴──────────────┴───┴────────┴──────────────┴─────────┴───────────┘
//! ```
//!
//! The footer carries the format version, table name, row count and a
//! per-column directory of `(column def, offset, length)` — readers
//! seek straight to a column without parsing its neighbours. The CRC-32
//! covers every byte before it (all column blocks + footer +
//! footer_len), so a bit flip anywhere in the file is a typed
//! [`DurError::Corrupt`], never a panic and never silently wrong data.
//!
//! Segments are written to a temp file in the same directory, synced,
//! then atomically renamed into place: a crash mid-write leaves a
//! `.tmp-*` orphan, never a half-valid segment under the real name.

use crate::codec::{self, Cursor};
use crate::{crc, fault, DurError};
use colstore::Batch;
use std::io::Write;
use std::path::Path;

/// Trailing magic: identifies the format and its version.
pub const SEGMENT_MAGIC: &[u8; 8] = b"HQSEGV01";
/// Format version inside the footer (bumped independently of the magic
/// for compatible extensions).
pub const SEGMENT_VERSION: u16 = 1;

/// Serialize `batch` into the full segment byte image.
pub fn segment_bytes(table: &str, batch: &Batch) -> Vec<u8> {
    let mut out = Vec::new();
    let mut directory = Vec::with_capacity(batch.columns.len());
    for col in &batch.columns {
        let offset = out.len() as u64;
        codec::encode_column_block(&mut out, col);
        directory.push((offset, out.len() as u64 - offset));
    }

    let mut footer = Vec::new();
    footer.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    codec::put_string(&mut footer, table);
    codec::put_u64(&mut footer, batch.rows() as u64);
    codec::put_u32(&mut footer, batch.schema.len() as u32);
    for (col, (offset, len)) in batch.schema.iter().zip(&directory) {
        codec::encode_column_def(&mut footer, col);
        codec::put_u64(&mut footer, *offset);
        codec::put_u64(&mut footer, *len);
    }

    out.extend_from_slice(&footer);
    codec::put_u32(&mut out, footer.len() as u32);
    let sum = crc::crc32(&out);
    codec::put_u32(&mut out, sum);
    out.extend_from_slice(SEGMENT_MAGIC);
    out
}

/// Write a segment via temp file + fsync + atomic rename. Returns the
/// byte size written.
pub fn write_segment(path: &Path, table: &str, batch: &Batch) -> Result<u64, DurError> {
    let bytes = segment_bytes(table, batch);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| DurError::Io("segment path has no file name".into()))?;
    let tmp = path.with_file_name(format!(".tmp-{file_name}"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fault::crash_point("segment.before-rename");
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Decode a segment byte image back into `(table name, batch)`.
pub fn decode_segment(bytes: &[u8]) -> Result<(String, Batch), DurError> {
    let corrupt = |msg: &str| DurError::Corrupt(format!("segment: {msg}"));
    if bytes.len() < 16 {
        return Err(corrupt("shorter than its trailer"));
    }
    let (rest, magic) = bytes.split_at(bytes.len() - 8);
    if magic != SEGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let (covered, crc_bytes) = rest.split_at(rest.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc::crc32(covered) != want {
        return Err(corrupt("checksum mismatch"));
    }
    if covered.len() < 4 {
        return Err(corrupt("missing footer length"));
    }
    let (body_and_footer, len_bytes) = covered.split_at(covered.len() - 4);
    let footer_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if footer_len > body_and_footer.len() {
        return Err(corrupt("footer length exceeds file"));
    }
    let (body, footer) = body_and_footer.split_at(body_and_footer.len() - footer_len);

    let mut f = Cursor::new(footer);
    let version = u16::from_le_bytes([f.u8()?, f.u8()?]);
    if version != SEGMENT_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let table = f.string()?;
    let rows = usize::try_from(f.u64()?).map_err(|_| corrupt("row count overflows"))?;
    let ncols = f.u32()? as usize;
    if ncols.saturating_mul(21) > footer.len() {
        return Err(corrupt("column directory larger than footer"));
    }
    let mut schema = Vec::with_capacity(ncols);
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col = codec::decode_column_def(&mut f)?;
        let offset = usize::try_from(f.u64()?).map_err(|_| corrupt("offset overflows"))?;
        let len = usize::try_from(f.u64()?).map_err(|_| corrupt("length overflows"))?;
        let end = offset.checked_add(len).ok_or_else(|| corrupt("offset+length overflows"))?;
        if end > body.len() {
            return Err(corrupt("column block outside body"));
        }
        let mut c = Cursor::new(&body[offset..end]);
        let vec = codec::decode_column_block(&mut c)?;
        if !c.is_done() {
            return Err(corrupt("column block has trailing bytes"));
        }
        if vec.len() != rows {
            return Err(corrupt(&format!(
                "column \"{}\" has {} rows, segment declares {rows}",
                col.name,
                vec.len()
            )));
        }
        schema.push(col);
        columns.push(vec);
    }
    Ok((table, Batch::new(schema, columns, rows)))
}

/// Read + decode a segment file.
pub fn read_segment(path: &Path) -> Result<(String, Batch), DurError> {
    decode_segment(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::types::{Column, PgType};
    use colstore::{ColumnVec, Validity};

    fn sample() -> Batch {
        let mut v = Validity::all_valid(3);
        v.set_null(2);
        Batch::new(
            vec![Column::new("x", PgType::Int8), Column::new("s", PgType::Text)],
            vec![
                ColumnVec::Int(vec![1, 2, 0], v.clone()),
                ColumnVec::Text(vec!["a".into(), "b".into(), String::new()], v),
            ],
            3,
        )
    }

    #[test]
    fn segment_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("hq-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("0.seg");
        let batch = sample();
        write_segment(&path, "trades", &batch).unwrap();
        let (name, got) = read_segment(&path).unwrap();
        assert_eq!(name, "trades");
        assert!(batch.structurally_equal(&got));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error_or_detected() {
        let bytes = segment_bytes("t", &sample());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut dam = bytes.clone();
                dam[byte] ^= 1 << bit;
                match decode_segment(&dam) {
                    Err(DurError::Corrupt(_)) => {}
                    Err(other) => panic!("byte {byte} bit {bit}: unexpected error {other}"),
                    Ok((name, got)) => panic!(
                        "byte {byte} bit {bit}: decoded silently (name={name}, rows={})",
                        got.rows()
                    ),
                }
            }
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let bytes = segment_bytes("t", &sample());
        for cut in 0..bytes.len() {
            assert!(matches!(decode_segment(&bytes[..cut]), Err(DurError::Corrupt(_))), "cut {cut}");
        }
    }
}
