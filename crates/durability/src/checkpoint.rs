//! Checkpoints: the WAL's periodic compaction into columnar segments.
//!
//! A checkpoint is a directory `checkpoints/cp-<lsn %016x>/` holding one
//! [`crate::segment`] file per table plus a checksummed `MANIFEST`
//! naming them. It captures the exact state through `lsn`; recovery
//! loads the newest *valid* one and replays only WAL records above it.
//!
//! Crash safety is rename-based at two levels: each segment is written
//! `.tmp` + rename, and the whole directory is assembled under
//! `.tmp-cp-<lsn>` and renamed into place only after every segment and
//! the manifest are synced. A crash mid-checkpoint therefore leaves
//! either the previous world (tmp orphan, cleaned up next prune) or the
//! new one — never a half checkpoint under a real name.
//!
//! Retention keeps the newest **two** checkpoints and every WAL file at
//! or above the older one: if the newest checkpoint is later damaged
//! (the chaos suite deletes a segment), recovery falls back to the
//! previous checkpoint plus a longer replay, with nothing lost.

use crate::codec::{self, Cursor};
use crate::metrics::metrics;
use crate::wal::parse_wal_file_name;
use crate::{crc, fault, segment, DurError};
use colstore::{Batch, TableStats};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST_MAGIC: &[u8; 8] = b"HQMANI01";
const MANIFEST_VERSION: u16 = 1;
const STATS_MAGIC: &[u8; 8] = b"HQSTAT01";

/// Directory name for the checkpoint capturing state through `lsn`.
pub fn checkpoint_dir_name(lsn: u64) -> String {
    format!("cp-{lsn:016x}")
}

fn parse_checkpoint_dir_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("cp-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// All committed checkpoints under `dir`, newest first.
pub fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return out };
    for entry in entries.flatten() {
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_checkpoint_dir_name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    out
}

fn encode_manifest(lsn: u64, tables: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    codec::put_u64(&mut out, lsn);
    codec::put_u32(&mut out, tables.len() as u32);
    for (table, seg) in tables {
        codec::put_string(&mut out, table);
        codec::put_string(&mut out, seg);
    }
    let sum = crc::crc32(&out);
    codec::put_u32(&mut out, sum);
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<(u64, Vec<(String, String)>), DurError> {
    let corrupt = |msg: &str| DurError::Corrupt(format!("manifest: {msg}"));
    if bytes.len() < 12 {
        return Err(corrupt("too short"));
    }
    let (covered, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc::crc32(covered) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(corrupt("checksum mismatch"));
    }
    if &covered[..8] != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut c = Cursor::new(&covered[8..]);
    let version = u16::from_le_bytes([c.u8()?, c.u8()?]);
    if version != MANIFEST_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let lsn = c.u64()?;
    let count = c.u32()? as usize;
    if count.saturating_mul(8) > c.remaining() {
        return Err(corrupt("table count larger than manifest"));
    }
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        tables.push((c.string()?, c.string()?));
    }
    if !c.is_done() {
        return Err(corrupt("trailing bytes"));
    }
    Ok((lsn, tables))
}

/// Serialize the per-table statistics sidecar: magic + count +
/// `{name, TableStats}`* + crc32 trailer.
fn encode_stats(stats: &HashMap<String, TableStats>) -> Vec<u8> {
    let mut names: Vec<&String> = stats.keys().collect();
    names.sort();
    let mut out = Vec::new();
    out.extend_from_slice(STATS_MAGIC);
    codec::put_u32(&mut out, names.len() as u32);
    for name in names {
        codec::put_string(&mut out, name);
        stats[name].encode(&mut out);
    }
    let sum = crc::crc32(&out);
    codec::put_u32(&mut out, sum);
    out
}

fn decode_stats(bytes: &[u8]) -> Option<HashMap<String, TableStats>> {
    if bytes.len() < 16 || &bytes[..8] != STATS_MAGIC {
        return None;
    }
    let (covered, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc::crc32(covered) != u32::from_le_bytes(crc_bytes.try_into().ok()?) {
        return None;
    }
    let body = &covered[8..];
    let count = u32::from_le_bytes(body.get(..4)?.try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut out = HashMap::with_capacity(count);
    for _ in 0..count {
        let nlen = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let name = String::from_utf8(body.get(pos..pos + nlen)?.to_vec()).ok()?;
        pos += nlen;
        let stats = TableStats::decode(body, &mut pos)?;
        out.insert(name, stats);
    }
    if pos != body.len() {
        return None;
    }
    Some(out)
}

/// Load the statistics sidecar of a checkpoint directory. The file is
/// optional (older checkpoints predate it) and advisory: a missing or
/// damaged sidecar yields `None` and the caller recomputes stats from
/// the recovered batches instead of failing recovery.
pub fn load_stats(dir: &Path) -> Option<HashMap<String, TableStats>> {
    decode_stats(&std::fs::read(dir.join("STATS")).ok()?)
}

/// Best-effort directory fsync (rename durability on POSIX).
fn sync_dir(dir: &Path) {
    if let Ok(f) = std::fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

/// Write a full checkpoint capturing `tables` through `lsn`. Returns
/// total segment bytes written.
pub fn write_checkpoint(
    checkpoints_dir: &Path,
    lsn: u64,
    tables: &[(String, Arc<Batch>)],
    stats: &HashMap<String, TableStats>,
) -> Result<u64, DurError> {
    std::fs::create_dir_all(checkpoints_dir)?;
    let tmp = checkpoints_dir.join(format!(".tmp-{}", checkpoint_dir_name(lsn)));
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp)?;
    }
    std::fs::create_dir_all(&tmp)?;

    let mut manifest_entries = Vec::with_capacity(tables.len());
    let mut total = 0u64;
    for (i, (name, batch)) in tables.iter().enumerate() {
        let seg_name = format!("{i:06}.seg");
        total += segment::write_segment(&tmp.join(&seg_name), name, batch)?;
        manifest_entries.push((name.clone(), seg_name));
        fault::crash_point("checkpoint.mid-segments");
    }

    // Statistics sidecar: advisory, so it is not named by the manifest
    // and its absence never fails a load — but it is written inside the
    // tmp directory, so it commits atomically with the segments.
    if !stats.is_empty() {
        let spath = tmp.join("STATS");
        let mut f = std::fs::File::create(&spath)?;
        f.write_all(&encode_stats(stats))?;
        f.sync_data()?;
    }

    let manifest = encode_manifest(lsn, &manifest_entries);
    {
        let mpath = tmp.join(".tmp-MANIFEST");
        let mut f = std::fs::File::create(&mpath)?;
        f.write_all(&manifest)?;
        f.sync_data()?;
        std::fs::rename(&mpath, tmp.join("MANIFEST"))?;
    }
    sync_dir(&tmp);
    fault::crash_point("checkpoint.before-rename");
    std::fs::rename(&tmp, checkpoints_dir.join(checkpoint_dir_name(lsn)))?;
    sync_dir(checkpoints_dir);
    metrics().checkpoint_bytes.add(total);
    metrics().checkpoints.inc();
    Ok(total)
}

/// Load one checkpoint directory: `(lsn, tables)` or a typed error if
/// anything inside it is missing or damaged.
pub fn load_checkpoint(dir: &Path) -> Result<(u64, Vec<(String, Batch)>), DurError> {
    let (lsn, entries) = decode_manifest(&std::fs::read(dir.join("MANIFEST"))?)?;
    let declared = dir
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_checkpoint_dir_name);
    if declared != Some(lsn) {
        return Err(DurError::Corrupt(format!(
            "manifest lsn {lsn} does not match directory {:?}",
            dir.file_name()
        )));
    }
    let mut tables = Vec::with_capacity(entries.len());
    for (table, seg) in entries {
        let (seg_table, batch) = segment::read_segment(&dir.join(&seg))?;
        if seg_table != table {
            return Err(DurError::Corrupt(format!(
                "segment {seg} claims table \"{seg_table}\", manifest says \"{table}\""
            )));
        }
        tables.push((table, batch));
    }
    Ok((lsn, tables))
}

/// Drop checkpoints beyond the newest two (plus any `.tmp-*` orphans),
/// then drop WAL files wholly below the older retained checkpoint.
pub fn prune(checkpoints_dir: &Path, wal_dir: &Path) -> std::io::Result<()> {
    let cps = list_checkpoints(checkpoints_dir);
    for (_, path) in cps.iter().skip(2) {
        std::fs::remove_dir_all(path)?;
    }
    if let Ok(entries) = std::fs::read_dir(checkpoints_dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(".tmp-") {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
    // Oldest LSN any retained checkpoint still needs replay from.
    let Some(&(retain_lsn, _)) = cps.get(1).or_else(|| cps.first()) else {
        return Ok(());
    };
    let mut wal_files: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(wal_dir) {
        for entry in entries.flatten() {
            if let Some(start) = entry.file_name().to_str().and_then(parse_wal_file_name) {
                wal_files.push((start, entry.path()));
            }
        }
    }
    wal_files.sort();
    // A file is disposable when the *next* file starts at or below
    // retain_lsn + 1 — every record it holds is already in the older
    // retained checkpoint. The current (last) file always stays.
    for i in 0..wal_files.len().saturating_sub(1) {
        if wal_files[i + 1].0 <= retain_lsn + 1 {
            std::fs::remove_file(&wal_files[i].1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::types::{Column, PgType};
    use colstore::{ColumnVec, Validity};

    fn batch(n: i64) -> Arc<Batch> {
        Arc::new(Batch::new(
            vec![Column::new("x", PgType::Int8)],
            vec![ColumnVec::Int((0..n).collect(), Validity::all_valid(n as usize))],
            n as usize,
        ))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hq-cp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn stats_for(tables: &[(String, Arc<Batch>)]) -> HashMap<String, TableStats> {
        tables.iter().map(|(n, b)| (n.clone(), TableStats::from_batch(b))).collect()
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = tmp_dir("rt");
        let tables = vec![("a".to_string(), batch(3)), ("b".to_string(), batch(5))];
        write_checkpoint(&dir, 42, &tables, &stats_for(&tables)).unwrap();
        let listed = list_checkpoints(&dir);
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 42);
        let (lsn, loaded) = load_checkpoint(&listed[0].1).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(loaded.len(), 2);
        assert!(loaded[0].1.structurally_equal(&tables[0].1));
        // The stats sidecar round-trips alongside the segments.
        let stats = load_stats(&listed[0].1).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats["a"].rows, 3);
        assert_eq!(stats["b"].rows, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_sidecar_is_optional_and_corruption_tolerant() {
        let dir = tmp_dir("stats");
        let tables = vec![("a".to_string(), batch(4))];
        write_checkpoint(&dir, 9, &tables, &stats_for(&tables)).unwrap();
        let cp = list_checkpoints(&dir).remove(0).1;
        // Flip a byte: the sidecar fails closed, the checkpoint loads.
        let mut bytes = std::fs::read(cp.join("STATS")).unwrap();
        bytes[10] ^= 0x40;
        std::fs::write(cp.join("STATS"), &bytes).unwrap();
        assert!(load_stats(&cp).is_none());
        assert!(load_checkpoint(&cp).is_ok());
        // Missing entirely is equally fine.
        std::fs::remove_file(cp.join("STATS")).unwrap();
        assert!(load_stats(&cp).is_none());
        assert!(load_checkpoint(&cp).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_a_typed_error() {
        let dir = tmp_dir("miss");
        let tables = vec![("a".to_string(), batch(2))];
        write_checkpoint(&dir, 7, &tables, &stats_for(&tables)).unwrap();
        let cp = list_checkpoints(&dir).remove(0).1;
        std::fs::remove_file(cp.join("000000.seg")).unwrap();
        assert!(load_checkpoint(&cp).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_two_checkpoints_and_the_wal_tail() {
        let cps = tmp_dir("prune-cp");
        let wal = tmp_dir("prune-wal");
        for lsn in [10u64, 20, 30] {
            write_checkpoint(&cps, lsn, &[("a".to_string(), batch(1))], &HashMap::new()).unwrap();
        }
        // WAL files starting at 1, 11, 21, 31 — records 1..=10 live in
        // the first file, which only the pruned cp-10 needed.
        for start in [1u64, 11, 21, 31] {
            std::fs::write(wal.join(crate::wal::wal_file_name(start)), b"").unwrap();
        }
        prune(&cps, &wal).unwrap();
        let kept: Vec<u64> = list_checkpoints(&cps).iter().map(|(l, _)| *l).collect();
        assert_eq!(kept, vec![30, 20]);
        let mut files: Vec<String> = std::fs::read_dir(&wal)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        // retain_lsn = 20: wal-1 (records ≤ 10) is droppable, wal-11
        // (records 11..=20) is droppable too since the next file starts
        // at 21 = retain_lsn + 1; wal-21 and wal-31 must stay.
        assert_eq!(
            files,
            vec![crate::wal::wal_file_name(21), crate::wal::wal_file_name(31)]
        );
        std::fs::remove_dir_all(&cps).unwrap();
        std::fs::remove_dir_all(&wal).unwrap();
    }
}
