//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Every WAL record frame and every segment file carries one of these
//! checksums; recovery treats a mismatch as "this region never finished
//! reaching the disk" (torn tail) or "this region was damaged after the
//! fact" (corruption), depending on where it sits. Implemented here
//! because the workspace builds without registry access (DESIGN §11) —
//! the polynomial is the same one zlib/PNG/Ethernet use, so golden
//! values can be checked against any external tool.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (one-shot).
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed chunks through `update` starting from
/// `0xFFFF_FFFF`, then XOR the final state with `0xFFFF_FFFF`.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_values() {
        // Standard CRC-32 check vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello durability layer";
        let mut state = 0xFFFF_FFFFu32;
        for chunk in data.chunks(5) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let mut data = b"some payload bytes".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), base, "bit {i} flip went undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}
