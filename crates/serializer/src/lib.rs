//! # serializer — XTRA trees to PostgreSQL-compatible SQL text
//!
//! The last stage of Hyper-Q's Query Translator (paper §3.4): the
//! transformed XTRA expression is serialized into one or more SQL
//! statements for the PG-compatible backend. Serialization tries to
//! produce *compact* SQL: adjacent operators that fit the shape of a
//! single `SELECT` block (scan → filter → project → aggregate → sort →
//! limit) are merged, and only genuine shape breaks (an aggregate over an
//! aggregate, a projection over window output, joins) introduce derived
//! tables.
//!
//! Generated SQL matches the paper's visible conventions: identifiers are
//! double-quoted, symbol literals are cast (`'GOOG'::varchar`), and
//! materialization emits `CREATE TEMPORARY TABLE HQ_TEMP_n AS ...`.

use xtra::scalar::SortDir;
use xtra::{RelNode, ScalarExpr, SetOpKind, SortKey, UnOp};

/// Serialize a relational plan into a complete `SELECT` statement.
pub fn serialize(plan: &RelNode) -> String {
    let mut ser = Serializer::default();
    let q = ser.render(plan);
    q.to_sql()
}

/// Serialize a `CREATE TEMPORARY TABLE <name> AS <plan>` statement
/// (physical materialization, paper §4.3).
pub fn serialize_create_temp(name: &str, plan: &RelNode) -> String {
    format!("CREATE TEMPORARY TABLE {} AS {}", quote_ident(name), serialize(plan))
}

/// Serialize a standalone scalar expression as `SELECT <expr>`.
pub fn serialize_scalar_query(e: &ScalarExpr) -> String {
    format!("SELECT {}", scalar_sql(e))
}

/// Double-quote an identifier (Hyper-Q preserves Q's case-sensitive
/// column names this way).
pub fn quote_ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// One SELECT block under construction.
#[derive(Debug, Default, Clone)]
struct Query {
    select: Vec<String>,
    from: String,
    wheres: Vec<String>,
    group_by: Vec<String>,
    order_by: Vec<String>,
    limit: Option<u64>,
    offset: u64,
    /// Select items are exactly the source's columns (mergeable).
    select_is_passthrough: bool,
    /// A GROUP BY has been placed (further projections must wrap).
    grouped: bool,
    /// Window functions present in the select list.
    windowed: bool,
    /// This block is a set operation (UNION ALL ...), not a simple SELECT.
    is_setop: bool,
}

impl Query {
    fn to_sql(&self) -> String {
        if self.is_setop {
            return self.from.clone();
        }
        let mut s = String::with_capacity(128);
        s.push_str("SELECT ");
        if self.select.is_empty() {
            s.push('*');
        } else {
            s.push_str(&self.select.join(", "));
        }
        s.push_str(" FROM ");
        s.push_str(&self.from);
        if !self.wheres.is_empty() {
            s.push_str(" WHERE ");
            s.push_str(&self.wheres.join(" AND "));
        }
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            s.push_str(&self.group_by.join(", "));
        }
        if !self.order_by.is_empty() {
            s.push_str(" ORDER BY ");
            s.push_str(&self.order_by.join(", "));
        }
        if let Some(n) = self.limit {
            s.push_str(&format!(" LIMIT {n}"));
        }
        if self.offset > 0 {
            s.push_str(&format!(" OFFSET {}", self.offset));
        }
        s
    }
}

#[derive(Debug, Default)]
struct Serializer {
    alias_seq: usize,
}

impl Serializer {
    fn next_alias(&mut self) -> String {
        self.alias_seq += 1;
        format!("hq_sub{}", self.alias_seq)
    }

    /// Wrap a query into a derived table, producing a fresh mergeable
    /// block.
    fn wrap(&mut self, q: Query) -> Query {
        let alias = self.next_alias();
        Query {
            from: format!("({}) AS {}", q.to_sql(), alias),
            select_is_passthrough: true,
            ..Default::default()
        }
    }

    fn render(&mut self, node: &RelNode) -> Query {
        match node {
            RelNode::Get { table, cols, .. } => Query {
                select: cols.iter().map(|c| quote_ident(&c.name)).collect(),
                from: quote_ident(table),
                select_is_passthrough: true,
                ..Default::default()
            },
            RelNode::Values { schema, rows } => {
                let cols: Vec<String> = schema.iter().map(|c| quote_ident(&c.name)).collect();
                let alias = self.next_alias();
                let rows_sql: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> =
                            r.iter().map(|d| d.to_sql_literal()).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                Query {
                    select: cols.clone(),
                    from: format!(
                        "(VALUES {}) AS {}({})",
                        rows_sql.join(", "),
                        alias,
                        cols.join(", ")
                    ),
                    select_is_passthrough: true,
                    ..Default::default()
                }
            }
            RelNode::Filter { input, predicate } => {
                let q = self.render(input);
                // A filter over grouped/limited/windowed output must wrap
                // (WHERE runs before GROUP BY / window evaluation), and so
                // must a filter over a projection: WHERE cannot see select
                // aliases.
                let mut q = if q.grouped
                    || q.limit.is_some()
                    || q.windowed
                    || q.is_setop
                    || !q.select_is_passthrough
                {
                    self.wrap(q)
                } else {
                    q
                };
                q.wheres.push(scalar_sql(predicate));
                q
            }
            RelNode::Project { input, items } => {
                let q = self.render(input);
                let mut q = if q.select_is_passthrough && !q.is_setop {
                    q
                } else {
                    self.wrap(q)
                };
                q.select = items
                    .iter()
                    .map(|(alias, e)| project_item(alias, e))
                    .collect();
                q.select_is_passthrough = false;
                q.windowed = items.iter().any(|(_, e)| e.contains_window());
                q
            }
            RelNode::Aggregate { input, group_by, aggs } => {
                let q = self.render(input);
                // Aggregation replaces the select list, so any existing
                // projection (e.g. a join's rename-back) must be wrapped
                // into a derived table first.
                let mut q = if q.grouped
                    || q.limit.is_some()
                    || q.windowed
                    || q.is_setop
                    || !q.select_is_passthrough
                {
                    self.wrap(q)
                } else {
                    q
                };
                let mut select = Vec::with_capacity(group_by.len() + aggs.len());
                for (alias, e) in group_by {
                    select.push(project_item(alias, e));
                    q.group_by.push(scalar_sql(e));
                }
                for (alias, e) in aggs {
                    select.push(project_item(alias, e));
                }
                q.select = select;
                q.select_is_passthrough = false;
                q.grouped = true;
                // Ordering below an aggregate is meaningless in SQL.
                q.order_by.clear();
                q
            }
            RelNode::Window { input, items } => {
                let q = self.render(input);
                let mut q = if q.select_is_passthrough && !q.is_setop {
                    q
                } else {
                    self.wrap(q)
                };
                // Window node appends columns to the passthrough set.
                let mut select = if q.select.is_empty() {
                    vec!["*".to_string()]
                } else {
                    q.select.clone()
                };
                for (alias, e) in items {
                    select.push(project_item(alias, e));
                }
                q.select = select;
                q.select_is_passthrough = false;
                q.windowed = true;
                q
            }
            RelNode::Sort { input, keys } => {
                let q = self.render(input);
                let mut q = if q.limit.is_some() || q.is_setop { self.wrap(q) } else { q };
                q.order_by = keys.iter().map(sort_key_sql).collect();
                q
            }
            RelNode::Limit { input, limit, offset } => {
                let q = self.render(input);
                let mut q = if q.limit.is_some() || q.is_setop { self.wrap(q) } else { q };
                q.limit = *limit;
                q.offset = *offset;
                q
            }
            RelNode::Join { kind, left, right, on } => {
                let lq = self.render(left);
                let rq = self.render(right);
                let la = self.next_alias();
                let ra = self.next_alias();
                let join_kw = match kind {
                    xtra::JoinKind::Inner => "INNER JOIN",
                    xtra::JoinKind::LeftOuter => "LEFT OUTER JOIN",
                    xtra::JoinKind::Cross => "CROSS JOIN",
                };
                let on_sql = scalar_sql(on);
                let from = if *kind == xtra::JoinKind::Cross {
                    format!("({}) AS {} {} ({}) AS {}", lq.to_sql(), la, join_kw, rq.to_sql(), ra)
                } else {
                    format!(
                        "({}) AS {} {} ({}) AS {} ON {}",
                        lq.to_sql(),
                        la,
                        join_kw,
                        rq.to_sql(),
                        ra,
                        on_sql
                    )
                };
                Query { from, select_is_passthrough: true, ..Default::default() }
            }
            RelNode::SetOp { kind, left, right } => {
                let l = self.render(left).to_sql();
                let r = self.render(right).to_sql();
                let op = match kind {
                    SetOpKind::UnionAll => "UNION ALL",
                    SetOpKind::Except => "EXCEPT",
                    SetOpKind::Intersect => "INTERSECT",
                };
                Query {
                    from: format!("{l} {op} {r}"),
                    is_setop: true,
                    ..Default::default()
                }
            }
        }
    }
}

fn project_item(alias: &str, e: &ScalarExpr) -> String {
    let sql = scalar_sql(e);
    // Avoid noisy `"x" AS "x"`.
    if let ScalarExpr::Column { name, .. } = e {
        if name == alias {
            return quote_ident(name);
        }
    }
    format!("{} AS {}", sql, quote_ident(alias))
}

fn sort_key_sql(k: &SortKey) -> String {
    let dir = match k.dir {
        SortDir::Asc => "ASC",
        SortDir::Desc => "DESC",
    };
    format!("{} {}", scalar_sql(&k.expr), dir)
}

/// Render a scalar XTRA expression as SQL.
pub fn scalar_sql(e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Column { name, .. } => quote_ident(name),
        ScalarExpr::Const(d) => d.to_sql_literal(),
        ScalarExpr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", scalar_sql(lhs), op.sql(), scalar_sql(rhs))
        }
        ScalarExpr::Unary { op, arg } => match op {
            UnOp::Neg => format!("(-{})", scalar_sql(arg)),
            UnOp::Not => format!("(NOT {})", scalar_sql(arg)),
            UnOp::Abs => format!("abs({})", scalar_sql(arg)),
        },
        ScalarExpr::Agg { func, arg } => {
            let inner = arg.as_ref().map(|a| scalar_sql(a)).unwrap_or_else(|| "*".to_string());
            match func {
                xtra::AggFunc::CountDistinct => format!("count(DISTINCT {inner})"),
                // Backend-toolbox aggregates for Q's order-sensitive
                // first/last (paper §5's "toolbox" of helpers).
                xtra::AggFunc::First => format!("hq_first({inner})"),
                xtra::AggFunc::Last => format!("hq_last({inner})"),
                other => format!("{}({inner})", other.sql()),
            }
        }
        ScalarExpr::Window { func, args, partition_by, order_by } => {
            let args_sql: Vec<String> = args.iter().map(scalar_sql).collect();
            let mut over = String::new();
            if !partition_by.is_empty() {
                over.push_str("PARTITION BY ");
                over.push_str(
                    &partition_by.iter().map(scalar_sql).collect::<Vec<_>>().join(", "),
                );
            }
            if !order_by.is_empty() {
                if !over.is_empty() {
                    over.push(' ');
                }
                over.push_str("ORDER BY ");
                let keys: Vec<String> = order_by
                    .iter()
                    .map(|(e, d)| {
                        format!(
                            "{} {}",
                            scalar_sql(e),
                            if *d == SortDir::Asc { "ASC" } else { "DESC" }
                        )
                    })
                    .collect();
                over.push_str(&keys.join(", "));
            }
            format!("{}({}) OVER ({over})", func.sql(), args_sql.join(", "))
        }
        ScalarExpr::Func { name, args, .. } => {
            let args_sql: Vec<String> = args.iter().map(scalar_sql).collect();
            format!("{name}({})", args_sql.join(", "))
        }
        ScalarExpr::Case { branches, else_result } => {
            let mut s = String::from("CASE");
            for (c, r) in branches {
                s.push_str(&format!(" WHEN {} THEN {}", scalar_sql(c), scalar_sql(r)));
            }
            if let Some(e) = else_result {
                s.push_str(&format!(" ELSE {}", scalar_sql(e)));
            }
            s.push_str(" END");
            s
        }
        ScalarExpr::Cast { arg, ty } => format!("({})::{}", scalar_sql(arg), ty.sql_name()),
        ScalarExpr::InList { needle, list, negated } => {
            let items: Vec<String> = list.iter().map(scalar_sql).collect();
            format!(
                "({} {}IN ({}))",
                scalar_sql(needle),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        ScalarExpr::IsNull { arg, negated } => {
            format!("({} IS {}NULL)", scalar_sql(arg), if *negated { "NOT " } else { "" })
        }
        ScalarExpr::InSubquery { needle, plan, negated } => {
            format!(
                "({} {}IN ({}))",
                scalar_sql(needle),
                if *negated { "NOT " } else { "" },
                serialize(plan)
            )
        }
    }
}

/// Count how many times `IS NOT DISTINCT FROM` appears (used by tests and
/// ablation reporting).
pub fn count_null_safe_predicates(sql: &str) -> usize {
    sql.matches("IS NOT DISTINCT FROM").count()
}

#[allow(unused_imports)]
use xtra::Datum as _DatumUsed;

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::BinOp;
    use xtra::{AggFunc, ColumnDef, Datum, JoinKind, SqlType, WinFunc, ORD_COL};

    fn trades() -> RelNode {
        RelNode::get(
            "trades",
            vec![
                ColumnDef::not_null(ORD_COL, SqlType::Int8),
                ColumnDef::new("Symbol", SqlType::Varchar),
                ColumnDef::new("Price", SqlType::Float8),
            ],
        )
    }

    #[test]
    fn get_serializes_to_plain_select() {
        let sql = serialize(&trades());
        assert_eq!(sql, r#"SELECT "ordcol", "Symbol", "Price" FROM "trades""#);
    }

    #[test]
    fn filter_merges_into_where() {
        let plan = RelNode::Filter {
            input: Box::new(trades()),
            predicate: ScalarExpr::Binary {
                op: BinOp::IsNotDistinctFrom,
                lhs: Box::new(ScalarExpr::col("Symbol", SqlType::Varchar)),
                rhs: Box::new(ScalarExpr::str("GOOG")),
            },
        };
        let sql = serialize(&plan);
        assert!(
            sql.contains(r#"WHERE ("Symbol" IS NOT DISTINCT FROM 'GOOG'::varchar)"#),
            "{sql}"
        );
        assert!(!sql.contains("hq_sub"), "no subquery needed: {sql}");
    }

    #[test]
    fn paper_section_4_3_shape() {
        // CREATE TEMPORARY TABLE HQ_TEMP_1 AS SELECT ordcol, Price FROM
        // trades WHERE Symbol IS NOT DISTINCT FROM 'GOOG' ORDER BY ordcol.
        let plan = RelNode::Sort {
            input: Box::new(RelNode::Project {
                input: Box::new(RelNode::Filter {
                    input: Box::new(trades()),
                    predicate: ScalarExpr::Binary {
                        op: BinOp::IsNotDistinctFrom,
                        lhs: Box::new(ScalarExpr::col("Symbol", SqlType::Varchar)),
                        rhs: Box::new(ScalarExpr::str("GOOG")),
                    },
                }),
                items: vec![
                    (ORD_COL.into(), ScalarExpr::col(ORD_COL, SqlType::Int8)),
                    ("Price".into(), ScalarExpr::col("Price", SqlType::Float8)),
                ],
            }),
            keys: vec![SortKey::asc(ORD_COL, SqlType::Int8)],
        };
        let sql = serialize_create_temp("HQ_TEMP_1", &plan);
        assert!(sql.starts_with(r#"CREATE TEMPORARY TABLE "HQ_TEMP_1" AS SELECT"#), "{sql}");
        assert!(sql.contains(r#"ORDER BY "ordcol" ASC"#), "{sql}");
        assert!(sql.contains("IS NOT DISTINCT FROM"), "{sql}");
    }

    #[test]
    fn aggregate_merges_group_by() {
        let plan = RelNode::Aggregate {
            input: Box::new(trades()),
            group_by: vec![("Symbol".into(), ScalarExpr::col("Symbol", SqlType::Varchar))],
            aggs: vec![(
                "mx".into(),
                ScalarExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(Box::new(ScalarExpr::col("Price", SqlType::Float8))),
                },
            )],
        };
        let sql = serialize(&plan);
        assert!(sql.contains(r#"GROUP BY "Symbol""#), "{sql}");
        assert!(sql.contains(r#"max("Price") AS "mx""#), "{sql}");
        assert!(!sql.contains("hq_sub"), "{sql}");
    }

    #[test]
    fn count_star() {
        let e = ScalarExpr::Agg { func: AggFunc::Count, arg: None };
        assert_eq!(scalar_sql(&e), "count(*)");
    }

    #[test]
    fn projection_over_aggregate_wraps() {
        let agg = RelNode::Aggregate {
            input: Box::new(trades()),
            group_by: vec![],
            aggs: vec![(
                "mx".into(),
                ScalarExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(Box::new(ScalarExpr::col("Price", SqlType::Float8))),
                },
            )],
        };
        let plan = RelNode::Project {
            input: Box::new(agg),
            items: vec![
                (
                    ORD_COL.into(),
                    ScalarExpr::Cast { arg: Box::new(ScalarExpr::i64(1)), ty: SqlType::Int4 },
                ),
                ("mx".into(), ScalarExpr::col("mx", SqlType::Float8)),
            ],
        };
        let sql = serialize(&plan);
        assert!(sql.contains("hq_sub"), "aggregate must wrap: {sql}");
        assert!(sql.contains("(1)::integer"), "{sql}");
    }

    #[test]
    fn window_function_syntax() {
        let e = ScalarExpr::Window {
            func: WinFunc::Lead,
            args: vec![ScalarExpr::col("Time", SqlType::Time)],
            partition_by: vec![ScalarExpr::col("Symbol", SqlType::Varchar)],
            order_by: vec![(ScalarExpr::col("Time", SqlType::Time), SortDir::Asc)],
        };
        assert_eq!(
            scalar_sql(&e),
            r#"lead("Time") OVER (PARTITION BY "Symbol" ORDER BY "Time" ASC)"#
        );
    }

    #[test]
    fn join_serializes_with_derived_tables() {
        let plan = RelNode::Join {
            kind: JoinKind::LeftOuter,
            left: Box::new(trades()),
            right: Box::new(RelNode::get(
                "quotes",
                vec![ColumnDef::new("hq_r_Symbol", SqlType::Varchar)],
            )),
            on: ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col("Symbol", SqlType::Varchar),
                ScalarExpr::col("hq_r_Symbol", SqlType::Varchar),
            ),
        };
        let sql = serialize(&plan);
        assert!(sql.contains("LEFT OUTER JOIN"), "{sql}");
        assert!(sql.contains("ON (\"Symbol\" = \"hq_r_Symbol\")"), "{sql}");
    }

    #[test]
    fn values_render_inline() {
        let plan = RelNode::Values {
            schema: vec![
                ColumnDef::not_null(ORD_COL, SqlType::Int8),
                ColumnDef::new("s", SqlType::Varchar),
            ],
            rows: vec![
                vec![Datum::I64(1), Datum::Str("a".into())],
                vec![Datum::I64(2), Datum::Str("b".into())],
            ],
        };
        let sql = serialize(&plan);
        assert!(sql.contains("VALUES (1, 'a'::varchar), (2, 'b'::varchar)"), "{sql}");
    }

    #[test]
    fn union_all() {
        let plan = RelNode::SetOp {
            kind: SetOpKind::UnionAll,
            left: Box::new(trades()),
            right: Box::new(trades()),
        };
        let sql = serialize(&plan);
        assert_eq!(sql.matches("UNION ALL").count(), 1, "{sql}");
    }

    #[test]
    fn case_expression() {
        let e = ScalarExpr::Case {
            branches: vec![(
                ScalarExpr::binary(
                    BinOp::Gt,
                    ScalarExpr::col("Price", SqlType::Float8),
                    ScalarExpr::i64(0),
                ),
                ScalarExpr::i64(1),
            )],
            else_result: Some(Box::new(ScalarExpr::i64(0))),
        };
        assert_eq!(scalar_sql(&e), r#"CASE WHEN ("Price" > 0) THEN 1 ELSE 0 END"#);
    }

    #[test]
    fn in_list_and_is_null() {
        let e = ScalarExpr::InList {
            needle: Box::new(ScalarExpr::col("Symbol", SqlType::Varchar)),
            list: vec![ScalarExpr::str("GOOG"), ScalarExpr::str("IBM")],
            negated: false,
        };
        assert_eq!(
            scalar_sql(&e),
            r#"("Symbol" IN ('GOOG'::varchar, 'IBM'::varchar))"#
        );
        let n = ScalarExpr::IsNull {
            arg: Box::new(ScalarExpr::col("x", SqlType::Int8)),
            negated: true,
        };
        assert_eq!(scalar_sql(&n), r#"("x" IS NOT NULL)"#);
    }

    #[test]
    fn limit_offset() {
        let plan = RelNode::Limit { input: Box::new(trades()), limit: Some(10), offset: 5 };
        let sql = serialize(&plan);
        assert!(sql.ends_with("LIMIT 10 OFFSET 5"), "{sql}");
    }

    #[test]
    fn sort_then_limit_then_sort_wraps() {
        let inner = RelNode::Limit {
            input: Box::new(RelNode::Sort {
                input: Box::new(trades()),
                keys: vec![SortKey::desc("Price", SqlType::Float8)],
            }),
            limit: Some(3),
            offset: 0,
        };
        let plan = RelNode::Sort {
            input: Box::new(inner),
            keys: vec![SortKey::asc(ORD_COL, SqlType::Int8)],
        };
        let sql = serialize(&plan);
        assert!(sql.contains("hq_sub"), "limit then re-sort needs wrapping: {sql}");
        assert!(sql.trim_end().ends_with(r#"ORDER BY "ordcol" ASC"#), "{sql}");
    }

    #[test]
    fn identifier_quoting_escapes() {
        assert_eq!(quote_ident("weird\"name"), "\"weird\"\"name\"");
    }

    #[test]
    fn null_safe_counter() {
        assert_eq!(count_null_safe_predicates("a IS NOT DISTINCT FROM b"), 1);
        assert_eq!(count_null_safe_predicates("x = y"), 0);
    }
}
