//! Shared setup for the benchmark harnesses reproducing the paper's
//! evaluation (§6).
//!
//! The measurements mirror the paper's: per-query **translation time**
//! (algebrize + optimize + serialize, metadata cache enabled) against
//! **execution time** on the backend, for the 25-query Analytical
//! Workload (Figure 6); and the split of translation time across stages
//! (Figure 7).

use hyperq::loader;
use hyperq::{HyperQSession, SessionConfig, StageTimings};
use hyperq_workload::analytical::{analytical_workload, tables, AnalyticalQuery, WorkloadSpec};
use std::time::{Duration, Instant};

/// Workload sizing used by benches and the figures harness: paper-scale
/// width (500+ columns), laptop-scale row counts.
pub fn bench_spec() -> WorkloadSpec {
    WorkloadSpec { tables: 5, metrics: 500, rows: 1500, key_cardinality: 1500, seed: 2016 }
}

/// A reduced spec for quick runs.
pub fn quick_spec() -> WorkloadSpec {
    WorkloadSpec { tables: 5, metrics: 60, rows: 60, key_cardinality: 60, seed: 2016 }
}

/// Load the workload tables into a fresh backend and open a session.
///
/// The translation cache is forced off regardless of `config`: these
/// harnesses time the translation *pipeline* (Figures 6/7 and the
/// ablations), which a cache hit would short-circuit. The cache itself
/// is measured separately by the `exec_hotpaths` bench.
pub fn prepared_session(spec: &WorkloadSpec, config: SessionConfig) -> HyperQSession {
    let db = pgdb::Db::new();
    for (name, table) in tables(spec) {
        loader::load_table_direct(&db, &name, &table).expect("load");
    }
    HyperQSession::with_direct_config(&db, SessionConfig { translation_cache: 0, ..config })
}

/// One per-query measurement row (a point on Figure 6).
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Query id (1..=25).
    pub id: usize,
    /// Tables joined.
    pub tables_joined: usize,
    /// Translation time (best of `reps`).
    pub translation: Duration,
    /// Stage split for the translation.
    pub stages: StageTimings,
    /// End-to-end execution time of the translated SQL (best of `reps`).
    pub execution: Duration,
}

impl QueryMeasurement {
    /// Translation as a fraction of total (translation + execution) —
    /// the paper's Figure 6 metric.
    pub fn overhead_ratio(&self) -> f64 {
        let total = self.translation + self.execution;
        if total.is_zero() {
            0.0
        } else {
            self.translation.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Measure the whole workload: translation and execution per query.
pub fn measure_workload(
    spec: &WorkloadSpec,
    config: SessionConfig,
    reps: usize,
) -> Vec<QueryMeasurement> {
    let mut session = prepared_session(spec, config);
    let queries = analytical_workload(spec);
    // Warm the metadata cache the way the paper's experiments do
    // ("experiments are conducted with metadata caching enabled").
    for q in &queries {
        let _ = session.translate_only(&q.text);
    }
    queries.iter().map(|q| measure_query(&mut session, q, reps)).collect()
}

/// Measure one query.
pub fn measure_query(
    session: &mut HyperQSession,
    q: &AnalyticalQuery,
    reps: usize,
) -> QueryMeasurement {
    let mut best_tr = Duration::MAX;
    let mut stages = StageTimings::default();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let trs = session.translate_only(&q.text).expect("translation");
        let dt = t0.elapsed();
        if dt < best_tr {
            best_tr = dt;
            stages = StageTimings::default();
            for tr in &trs {
                stages.add(&tr.timings);
            }
        }
    }
    // Execution: run the translated statements end to end.
    let mut best_ex = Duration::MAX;
    for _ in 0..reps.max(1) {
        let trs = session.translate_only(&q.text).expect("translation");
        let t0 = Instant::now();
        for tr in &trs {
            for stmt in &tr.statements {
                session
                    .backend()
                    .lock()
                    .unwrap()
                    .execute_sql(&stmt.sql)
                    .expect("execution");
            }
        }
        let dt = t0.elapsed();
        best_ex = best_ex.min(dt);
    }
    QueryMeasurement {
        id: q.id,
        tables_joined: q.tables_joined,
        translation: best_tr,
        stages,
        execution: best_ex,
    }
}

/// Synthetic inputs for the `exec_hotpaths` bench and the
/// `bench_exec` emitter: executor-level row sets sized to expose the
/// O(n·g) naive scans against their hash replacements.
pub mod exec_data {
    use pgdb::exec::expr::BoundCol;
    use pgdb::exec::{EquiPair, Frame};
    use pgdb::{Cell, PgType};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two-column grouping keys over `cardinality` distinct values —
    /// the high-cardinality GROUP BY shape where naive per-group scans
    /// degrade to O(rows × groups).
    pub fn grouping_keys(rows: usize, cardinality: usize, seed: u64) -> Vec<Vec<Cell>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                let k = rng.gen_range(0..cardinality as i64);
                vec![Cell::Int(k), Cell::Text(format!("g{}", k % 977))]
            })
            .collect()
    }

    /// A row set for DISTINCT/set-op benches: mixed types, a sprinkle
    /// of NULLs and duplicate keys.
    pub fn row_set(rows: usize, domain: i64, seed: u64) -> Vec<Vec<Cell>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                let k = rng.gen_range(0..domain);
                let second = match k % 7 {
                    0 => Cell::Null,
                    1 => Cell::Float(k as f64 / 2.0),
                    _ => Cell::Int(k * 3),
                };
                vec![Cell::Int(k), second]
            })
            .collect()
    }

    /// Build two joinable frames sharing a key domain, plus the equi
    /// pair list `hash_join` consumes.
    pub fn join_inputs(
        left_rows: usize,
        right_rows: usize,
        key_cardinality: i64,
        seed: u64,
    ) -> (Frame, Frame, Vec<EquiPair>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let col = |q: &str, n: &str| BoundCol {
            qualifier: Some(q.to_string()),
            name: n.to_string(),
            ty: PgType::Int8,
        };
        let l = Frame {
            cols: vec![col("l", "k"), col("l", "v")],
            rows: (0..left_rows)
                .map(|i| vec![Cell::Int(rng.gen_range(0..key_cardinality)), Cell::Int(i as i64)])
                .collect(),
        };
        let r = Frame {
            cols: vec![col("r", "k"), col("r", "w")],
            rows: (0..right_rows)
                .map(|i| vec![Cell::Int(rng.gen_range(0..key_cardinality)), Cell::Int(-(i as i64))])
                .collect(),
        };
        (l, r, vec![EquiPair { left: 0, right: 0, nulls_match: false }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_measures_all_queries() {
        let ms = measure_workload(&quick_spec(), SessionConfig::default(), 1);
        assert_eq!(ms.len(), 25);
        for m in &ms {
            assert!(m.translation > Duration::ZERO);
            assert!(m.execution > Duration::ZERO);
        }
    }

    #[test]
    // Meaningful only with optimizations: debug builds skew the
    // translation/execution ratio. Runs under `cargo test --release` /
    // `cargo bench`.
    #[cfg_attr(debug_assertions, ignore)]
    fn figure6_shape_translation_is_minor_overhead() {
        // The paper's headline: translation is a small fraction of
        // end-to-end time (avg ≈0.5%, max ≈4% on their testbed). Shape
        // check: average overhead stays in single-digit percent here.
        let ms = measure_workload(&bench_spec(), SessionConfig::default(), 3);
        let avg: f64 = ms.iter().map(|m| m.overhead_ratio()).sum::<f64>() / ms.len() as f64;
        assert!(avg < 0.25, "translation should be minor overhead, got avg {avg:.3}");
    }

    #[test]
    fn figure6_shape_join_heavy_queries_translate_slowest() {
        let ms = measure_workload(&quick_spec(), SessionConfig::default(), 3);
        let quartet_avg: f64 = ms
            .iter()
            .filter(|m| matches!(m.id, 10 | 18 | 19 | 20))
            .map(|m| m.translation.as_secs_f64())
            .sum::<f64>()
            / 4.0;
        let rest_avg: f64 = ms
            .iter()
            .filter(|m| !matches!(m.id, 10 | 18 | 19 | 20))
            .map(|m| m.translation.as_secs_f64())
            .sum::<f64>()
            / 21.0;
        assert!(
            quartet_avg > rest_avg,
            "5-way-join queries must translate slower: quartet {quartet_avg:.6}s vs rest {rest_avg:.6}s"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore)]
    fn figure7_shape_optimize_and_serialize_dominate() {
        // Paper: "The optimization and serialization stages consume most
        // of the time."
        let ms = measure_workload(&bench_spec(), SessionConfig::default(), 2);
        let mut total = StageTimings::default();
        for m in &ms {
            total.add(&m.stages);
        }
        let opt_ser = total.optimize + total.serialize;
        let parse_alg = total.parse + total.algebrize;
        assert!(
            opt_ser > parse_alg,
            "optimize+serialize ({opt_ser:?}) should dominate parse+algebrize ({parse_alg:?})"
        );
    }
}
