//! Collate every `BENCH_*.json` at the repo root into one
//! `BENCH_summary.json`: suite name → headline numbers →
//! skipped_reason. The per-suite emitters write heterogeneous shapes
//! (flat scalars, nested sections, benchmark arrays), so the summary
//! flattens scalars into dotted keys and reduces arrays to counts and
//! min/max speedups — enough for a machine-readable perf trajectory
//! across PRs without fixing every emitter's schema.
//!
//! The tree has no JSON dependency, so this carries a minimal
//! recursive-descent parser. Number lexemes are kept verbatim (never
//! re-formatted through f64) so the summary reproduces the source
//! digits exactly.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their source lexeme.
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { b: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.b.get(self.i).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a value at byte {start}"));
        }
        Ok(Json::Num(String::from_utf8_lossy(&self.b[start..self.i]).into_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => out.push(c as char),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] but found {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} but found {:?}", other as char)),
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Flatten a suite's report into `(dotted_key, raw_json_scalar)` pairs:
/// scalars pass through, nested objects flatten one dot level per
/// depth, and arrays reduce to a count plus min/max of any per-entry
/// `speedup` and a pass count of any per-entry `meets_target`.
fn headline(prefix: &str, v: &Json, out: &mut Vec<(String, String)>) {
    match v {
        Json::Num(n) => out.push((prefix.to_string(), n.clone())),
        Json::Bool(b) => out.push((prefix.to_string(), b.to_string())),
        Json::Str(s) => out.push((prefix.to_string(), format!("\"{}\"", escape(s)))),
        Json::Null => out.push((prefix.to_string(), "null".to_string())),
        Json::Obj(fields) => {
            for (k, fv) in fields {
                let key = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                headline(&key, fv, out);
            }
        }
        Json::Arr(items) => {
            out.push((format!("{prefix}.count"), items.len().to_string()));
            let speedups: Vec<f64> = items
                .iter()
                .filter_map(|it| match it {
                    Json::Obj(fields) => fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                        ("speedup", Json::Num(n)) => n.parse::<f64>().ok(),
                        _ => None,
                    }),
                    _ => None,
                })
                .collect();
            if !speedups.is_empty() {
                let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                out.push((format!("{prefix}.speedup_min"), format!("{min:.2}")));
                out.push((format!("{prefix}.speedup_max"), format!("{max:.2}")));
            }
            let gated: Vec<bool> = items
                .iter()
                .filter_map(|it| match it {
                    Json::Obj(fields) => fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                        ("meets_target", Json::Bool(b)) => Some(*b),
                        _ => None,
                    }),
                    _ => None,
                })
                .collect();
            if !gated.is_empty() {
                let met = gated.iter().filter(|b| **b).count();
                out.push((
                    format!("{prefix}.targets_met"),
                    format!("\"{met}/{}\"", gated.len()),
                ));
            }
        }
    }
}

fn main() {
    let mut suites: Vec<(String, String)> = Vec::new(); // (name, rendered entry)
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(".").expect("read repo root") {
        let name = entry.expect("dir entry").file_name().to_string_lossy().into_owned();
        if let Some(suite) = name.strip_prefix("BENCH_").and_then(|n| n.strip_suffix(".json")) {
            if suite != "summary" {
                names.push(suite.to_string());
            }
        }
    }
    names.sort();

    for suite in &names {
        let path = format!("BENCH_{suite}.json");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping {path}: {e}");
                continue;
            }
        };
        let parsed = match Parser::new(&text).value() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("skipping {path}: parse error: {e}");
                continue;
            }
        };
        let mut pairs = Vec::new();
        headline("", &parsed, &mut pairs);
        let skipped = pairs
            .iter()
            .find(|(k, _)| k == "skipped_reason")
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| "null".to_string());
        let mut entry = String::new();
        let _ = write!(entry, "    {{\n      \"name\": \"{}\",\n      \"headline\": {{", suite);
        let mut first = true;
        for (k, v) in &pairs {
            if k == "skipped_reason" {
                continue;
            }
            if !first {
                entry.push(',');
            }
            first = false;
            let _ = write!(entry, "\n        \"{}\": {v}", escape(k));
        }
        let _ = write!(entry, "\n      }},\n      \"skipped_reason\": {skipped}\n    }}");
        println!("{suite}: {} headline numbers, skipped_reason={skipped}", pairs.len());
        suites.push((suite.clone(), entry));
    }

    let mut out = String::from("{\n  \"suites\": [\n");
    out.push_str(
        &suites.iter().map(|(_, e)| e.as_str()).collect::<Vec<_>>().join(",\n"),
    );
    out.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_summary.json", &out).expect("write BENCH_summary.json");
    println!("wrote BENCH_summary.json ({} suites)", suites.len());
}
