//! Emit `BENCH_parallel.json`: morsel-driven parallel execution against
//! the serial path, same statements, same data (DESIGN §12).
//!
//!     cargo run --release --bin bench_parallel
//!
//! Measures, each best-of-N wall clock, three 10M-row shapes through
//! the full `pgdb` engine (`Session::execute_batch`) at 1 worker vs 4
//! workers, pinned per session via `Session::set_exec_threads` so the
//! comparison never depends on `HQ_EXEC_THREADS`:
//!
//! * compound float predicate filter (`WHERE v > a AND v < b`);
//! * 1k-group `GROUP BY k, sum/count` (per-worker partial tables
//!   merged in canonical morsel order);
//! * 10M × 1M equi-join (shared built table, probes partitioned).
//!
//! Also drains the same filter through `Session::execute_stream` and
//! records the peak resident chunk: the streaming acceptance bar is
//! peak ≤ 1/8 of the full result, and it holds on any hardware. The
//! ≥2.5× speedup bar on two of the three shapes is only *enforced*
//! (exit 1) when the machine actually has ≥4 cores — a 1-core
//! container cannot physically exhibit a parallel speedup, so there
//! the numbers and core count are recorded and the gate is marked
//! hardware-skipped.
//!
//! `BENCH_PARALLEL_ROWS` overrides the 10M default for smoke runs.

use colstore::{Batch, ColumnVec, Validity};
use pgdb::{BatchQueryResult, Column, Db, PgType, Session, StreamQueryResult, MORSEL_ROWS};
use std::time::{Duration, Instant};

const DEFAULT_ROWS: usize = 10_000_000;
const PARALLEL_WORKERS: usize = 4;
const GROUPS: i64 = 1_000;
const JOIN_KEYS: usize = 1_000_000;

fn rows_target() -> usize {
    std::env::var("BENCH_PARALLEL_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_ROWS)
}

/// `big`: n rows of (k: group key, v: float payload, j: join key).
/// Deterministic mixed-congruential fill — no RNG state to carry, and
/// identical across serial/parallel runs by construction.
fn big_table(n: usize) -> Batch {
    let mut k = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut j = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as i64).wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        k.push(h.rem_euclid(GROUPS));
        v.push((h.rem_euclid(1_000_000) as f64) / 1_000_000.0);
        j.push(h.rem_euclid(JOIN_KEYS as i64));
    }
    Batch::new(
        vec![
            Column::new("k", PgType::Int8),
            Column::new("v", PgType::Float8),
            Column::new("j", PgType::Int8),
        ],
        vec![
            ColumnVec::Int(k, Validity::all_valid(n)),
            ColumnVec::Float(v, Validity::all_valid(n)),
            ColumnVec::Int(j, Validity::all_valid(n)),
        ],
        n,
    )
}

/// `dim`: one row per join key — every `big` probe matches exactly once.
fn dim_table() -> Batch {
    let n = JOIN_KEYS;
    Batch::new(
        vec![Column::new("jk", PgType::Int8), Column::new("dv", PgType::Int8)],
        vec![
            ColumnVec::Int((0..n as i64).collect(), Validity::all_valid(n)),
            ColumnVec::Int((0..n as i64).map(|x| x * 3).collect(), Validity::all_valid(n)),
        ],
        n,
    )
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn run_batch(session: &mut Session, sql: &str) -> Batch {
    match session.execute_batch(sql).expect("bench SQL executes") {
        BatchQueryResult::Batch(b) => b,
        other => panic!("expected batch, got {other:?}"),
    }
}

struct Entry {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
    result_rows: usize,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 { self.serial_s / self.parallel_s } else { f64::INFINITY }
    }
}

fn main() {
    let rows = rows_target();
    let available_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("building {rows}-row fixture ({available_cores} cores available)...");

    let db = Db::new();
    db.put_table_batch("big", big_table(rows));
    db.put_table_batch("dim", dim_table());

    let mut serial = db.session();
    serial.set_exec_threads(Some(1));
    let mut parallel = db.session();
    parallel.set_exec_threads(Some(PARALLEL_WORKERS));

    let shapes: [(&'static str, &'static str); 3] = [
        ("filter_compound_predicate", "SELECT k, v FROM big WHERE v > 0.2 AND v < 0.8"),
        (
            "group_by_1k_groups",
            "SELECT k, sum(v) AS sv, count(*) AS n FROM big GROUP BY k",
        ),
        ("equi_join_1m_keys", "SELECT big.j, dim.dv FROM big JOIN dim ON big.j = dim.jk"),
    ];

    let mut entries = Vec::new();
    for (name, sql) in shapes {
        // Same answer before any timing: parallel execution must be
        // bit-identical to serial (canonical morsel merge order).
        let want = run_batch(&mut serial, sql);
        let got = run_batch(&mut parallel, sql);
        assert!(want.structurally_equal(&got), "{name}: parallel result diverged from serial");
        let result_rows = want.rows();
        drop((want, got));

        let serial_t = best_of(3, || run_batch(&mut serial, sql));
        let parallel_t = best_of(3, || run_batch(&mut parallel, sql));
        let e = Entry {
            name,
            serial_s: serial_t.as_secs_f64(),
            parallel_s: parallel_t.as_secs_f64(),
            result_rows,
        };
        println!(
            "{:<28} serial {:>9.3}ms   {}-thread {:>9.3}ms   speedup {:>6.2}x   ({} rows)",
            e.name,
            e.serial_s * 1e3,
            PARALLEL_WORKERS,
            e.parallel_s * 1e3,
            e.speedup(),
            e.result_rows,
        );
        entries.push(e);
    }

    // Streaming: drain the filter shape chunk-at-a-time and record the
    // largest batch ever resident — the point of the stream is that it
    // stays morsel-sized no matter how large the result.
    let (stream_total, stream_peak, stream_chunks) =
        match parallel.execute_stream(shapes[0].1).expect("stream executes") {
            StreamQueryResult::Stream(batches) => {
                let mut total = 0usize;
                let mut peak = 0usize;
                let mut chunks = 0usize;
                for chunk in batches {
                    let b = chunk.expect("stream chunk");
                    total += b.rows();
                    peak = peak.max(b.rows());
                    chunks += 1;
                }
                (total, peak, chunks)
            }
            other => panic!("expected stream, got {other:?}"),
        };
    assert_eq!(stream_total, entries[0].result_rows, "stream dropped rows");
    assert!(stream_peak <= MORSEL_ROWS, "stream chunk exceeded a morsel");
    let streaming_gate_applicable = stream_total >= 8 * stream_peak.max(1);
    println!(
        "streaming filter: {stream_total} rows in {stream_chunks} chunks, peak resident {stream_peak} \
         (1/{} of full result)",
        stream_total.checked_div(stream_peak).unwrap_or(0),
    );

    let at_bar = entries.iter().filter(|e| e.speedup() >= 2.5).count();
    let speedup_gate_enforced = available_cores >= PARALLEL_WORKERS;

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"available_cores\": {available_cores},\n"));
    json.push_str(&format!("  \"parallel_workers\": {PARALLEL_WORKERS},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"result_rows\": {}}}{}\n"
            ),
            e.name,
            e.serial_s,
            e.parallel_s,
            e.speedup(),
            e.result_rows,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"shapes_at_2_5x_or_better\": {at_bar},\n"));
    json.push_str(&format!("  \"speedup_gate_enforced\": {speedup_gate_enforced},\n"));
    if !speedup_gate_enforced {
        // Machine-readable marker so downstream tooling can tell "the
        // gate passed" apart from "the gate could not run here".
        json.push_str("  \"skipped_reason\": \"insufficient_cores\",\n");
        json.push_str(&format!(
            "  \"speedup_gate_note\": \"hardware-skipped: {available_cores} core(s) < {PARALLEL_WORKERS}\",\n"
        ));
    }
    json.push_str(&format!(
        concat!(
            "  \"streaming\": {{\"statement\": \"{}\", \"result_rows\": {}, ",
            "\"peak_resident_rows\": {}, \"chunks\": {}, \"meets_one_eighth\": {}}}\n"
        ),
        entries[0].name,
        stream_total,
        stream_peak,
        stream_chunks,
        8 * stream_peak <= stream_total,
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");

    // The streaming bar holds on any hardware (only applicable once the
    // result is at least 8 chunks deep — a smoke-sized run under
    // BENCH_PARALLEL_ROWS cannot meaningfully measure it).
    if streaming_gate_applicable && 8 * stream_peak > stream_total {
        eprintln!(
            "streaming gate: peak resident {stream_peak} rows > 1/8 of {stream_total}-row result"
        );
        std::process::exit(1);
    }
    if speedup_gate_enforced && at_bar < 2 {
        eprintln!("acceptance: need >=2 shapes at >=2.5x with {PARALLEL_WORKERS} workers, got {at_bar}");
        std::process::exit(1);
    }
    if !speedup_gate_enforced {
        eprintln!(
            "speedup gate skipped: {available_cores} core(s) available, gate needs {PARALLEL_WORKERS}"
        );
    }
}
