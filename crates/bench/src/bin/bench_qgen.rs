//! Emit `BENCH_qgen.json`: throughput of the differential-fuzz
//! subsystem, so fuzz-budget sizing in CI rests on measured numbers.
//!
//!     cargo run --release --bin bench_qgen
//!
//! Measures wall clock for:
//! * **generation** — seeded datasets + grammar-driven programs, no
//!   execution (how fast the generator alone can feed the loop);
//! * **differential checking** — the full tri-executor loop (reference
//!   interpreter + cache-cold pipeline + cache-warm pipeline) over a
//!   fixed budget, i.e. the per-program cost the CI gate pays.

use hyperq::BatchDriver;
use qgen::{gen_dataset, Coverage, FuzzConfig, ProgramGen};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const GEN_DATASETS: usize = 200;
const GEN_PROGRAMS_PER_DATASET: usize = 10;
const CHECK_BUDGET: usize = 200;

fn main() {
    // 1. Pure generation throughput.
    let mut programs = 0usize;
    let mut statements = 0usize;
    let mut cov = Coverage::default();
    let t0 = Instant::now();
    for seed in 0..GEN_DATASETS as u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen_dataset(&mut rng);
        let mut pg = ProgramGen::default();
        for _ in 0..GEN_PROGRAMS_PER_DATASET {
            let prog = pg.gen_program(&mut rng, &ds, &mut cov);
            programs += 1;
            statements += prog.stmts.len();
            std::hint::black_box(&prog);
        }
    }
    let gen_t = t0.elapsed();

    // 2. Tri-executor differential checking over a fixed budget. Same
    // shape as the CI gate (fresh driver every PROGRAMS_PER_DATASET
    // programs), minus shrinking — the clean-run path.
    let cfg = FuzzConfig { seed: 42, budget: CHECK_BUDGET, corpus_dir: None, shrink: false };
    let t0 = Instant::now();
    let report = qgen::run_fuzz(&cfg);
    let check_t = t0.elapsed();
    assert_eq!(report.programs, CHECK_BUDGET);
    assert!(
        report.bugs.is_empty(),
        "bench expects a divergence-free run, got {} bug(s)",
        report.bugs.len()
    );

    // 3. Single-program check latency on a small fixed program, the
    // marginal cost of growing the budget by one.
    let mut rng = StdRng::seed_from_u64(7);
    let ds = gen_dataset(&mut rng);
    let prog = ProgramGen::default().gen_program(&mut rng, &ds, &mut cov);
    let stmts: Vec<String> = prog.stmts.iter().map(|s| s.render()).collect();
    let t0 = Instant::now();
    let mut driver = BatchDriver::new(&ds.tables).expect("driver");
    std::hint::black_box(driver.run_program(&stmts));
    let single_t = t0.elapsed();

    let gen_rate = programs as f64 / gen_t.as_secs_f64();
    let check_rate = report.programs as f64 / check_t.as_secs_f64();
    let json = format!(
        concat!(
            "{{\n",
            "  \"generation\": {{\"programs\": {}, \"statements\": {}, ",
            "\"seconds\": {:.6}, \"programs_per_s\": {:.1}}},\n",
            "  \"differential_check\": {{\"programs\": {}, \"statements\": {}, ",
            "\"seconds\": {:.6}, \"programs_per_s\": {:.1}}},\n",
            "  \"single_program_check_s\": {:.6}\n",
            "}}\n"
        ),
        programs,
        statements,
        gen_t.as_secs_f64(),
        gen_rate,
        report.programs,
        report.statements,
        check_t.as_secs_f64(),
        check_rate,
        single_t.as_secs_f64(),
    );
    std::fs::write("BENCH_qgen.json", &json).expect("write BENCH_qgen.json");
    println!("wrote BENCH_qgen.json");
    println!(
        "generation: {gen_rate:.0} programs/s; differential check: {check_rate:.0} programs/s"
    );
}
