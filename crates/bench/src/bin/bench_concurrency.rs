//! Emit `BENCH_concurrency.json`: 10k concurrent QIPC sessions through
//! the readiness-multiplexed connection layer (DESIGN §15).
//!
//!     cargo run --release --bin bench_concurrency
//!
//! The binary runs twice: the parent process hosts the multiplexed
//! [`QipcEndpoint`] (4 dispatch workers), then re-executes itself as a
//! child process that ramps up the client swarm in waves — one thread
//! and one live TCP connection per session, with think-time between
//! statements so sessions park between dispatches. The process split is
//! load-bearing: with a 20k file-descriptor limit, server and swarm
//! sides of 10k sockets must not share a process.
//!
//! Measured: per-statement round-trip p50/p99 (client-side), the peak
//! OS thread count of the *server* process (read from
//! `/proc/self/status`), and the peak `net_sessions_active` /
//! `net_worker_busy` gauges. The headline claim is structural, not a
//! speed number: ten thousand concurrent sessions are parked state in
//! one poller — the server never grows a thread per connection.
//!
//! Gates: the structural bars (zero errors, every session concurrently
//! live, server thread count bounded regardless of session count) are
//! enforced on any hardware; the p99 latency bar only on machines with
//! enough cores to make latency meaningful, and is otherwise recorded
//! with the repo's `"skipped_reason": "insufficient_cores"` marker.
//!
//! `BENCH_CONCURRENCY_SESSIONS` overrides the 10k default for smoke
//! runs (CI uses 1000).

use hyperq::endpoint::{EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::{loader, HyperQSession};
use netpool::IoModel;
use qlang::value::{Table, Value};
use std::io::Read as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const DEFAULT_SESSIONS: usize = 10_000;
const STATEMENTS_PER_SESSION: usize = 3;
/// Connections ramped per wave, and the pause between waves — gentle
/// enough that the accept backlog never overflows.
const WAVE: usize = 250;
const WAVE_GAP: Duration = Duration::from_millis(5);
const NET_WORKERS: usize = 4;

// Thresholds (also recorded in the JSON).
const P99_MS_MAX: f64 = 250.0;
const PEAK_THREADS_MAX: usize = 64;
const MIN_CORES_FOR_P99_GATE: usize = 4;

fn sessions_target() -> usize {
    std::env::var("BENCH_CONCURRENCY_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_SESSIONS)
}

fn main() {
    if std::env::var("BENCH_CONCURRENCY_ROLE").as_deref() == Ok("client") {
        client_main();
    } else {
        server_main();
    }
}

// ---------------------------------------------------------------------
// Child process: the client swarm.
// ---------------------------------------------------------------------

fn client_main() {
    let addr = std::env::var("BENCH_CONCURRENCY_ADDR").expect("BENCH_CONCURRENCY_ADDR not set");
    let sessions = sessions_target();
    // Every session holds its connection through this barrier: the
    // measured phase only starts once ALL of them are live at once.
    let all_connected = Arc::new(Barrier::new(sessions));
    let latencies = Arc::new(Mutex::new(Vec::<u64>::with_capacity(
        sessions * STATEMENTS_PER_SESSION,
    )));
    let errors = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::with_capacity(sessions);
    for i in 0..sessions {
        if i > 0 && i % WAVE == 0 {
            std::thread::sleep(WAVE_GAP);
        }
        let addr = addr.clone();
        let all_connected = Arc::clone(&all_connected);
        let latencies = Arc::clone(&latencies);
        let errors = Arc::clone(&errors);
        let h = std::thread::Builder::new()
            .name(format!("swarm-{i}"))
            .stack_size(192 * 1024)
            .spawn(move || {
                let mut c = match QipcClient::connect(&addr, "bench", "") {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("session {i}: connect failed: {e:?}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        all_connected.wait();
                        return;
                    }
                };
                // Warm-up (untimed): prove the session answers.
                if c.query("1+1").is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                all_connected.wait();
                let mut mine = Vec::with_capacity(STATEMENTS_PER_SESSION);
                for _ in 0..STATEMENTS_PER_SESSION {
                    // Think time, staggered per session so the statement
                    // load spreads instead of arriving as one thundering
                    // herd — the session parks in the server's poller
                    // for the whole pause.
                    std::thread::sleep(Duration::from_millis(20 + (i % 100) as u64));
                    let t0 = Instant::now();
                    match c.query("select Price from trades where Symbol=`GOOG") {
                        Ok(_) => mine.push(t0.elapsed().as_micros() as u64),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(mine);
            })
            .expect("spawn swarm thread");
        handles.push(h);
    }
    for h in handles {
        h.join().unwrap();
    }

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        lat[((lat.len() - 1) as f64 * p) as usize] as f64 / 1000.0
    };
    // One machine-readable line for the parent.
    println!(
        "{{\"sessions\": {sessions}, \"statements\": {}, \"errors\": {}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        lat.len(),
        errors.load(Ordering::Relaxed),
        pct(0.50),
        pct(0.99),
    );
}

// ---------------------------------------------------------------------
// Parent process: the multiplexed server, sampling its own shape.
// ---------------------------------------------------------------------

/// Current OS thread count of this process, from `/proc/self/status`.
fn current_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Pull a numeric field out of the child's one-line JSON report.
fn field(report: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = report.find(&pat).unwrap_or_else(|| panic!("{key} missing in {report}")) + pat.len();
    let rest = &report[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().unwrap_or_else(|_| panic!("bad {key} in {report}"))
}

fn server_main() {
    let sessions = sessions_target();
    let available_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let db = pgdb::Db::new();
    {
        let mut s = HyperQSession::with_direct(&db);
        let trades = Table::new(
            vec!["Symbol".into(), "Price".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into(), "AAPL".into(), "MSFT".into()]),
                Value::Floats(vec![100.0, 50.0, 25.0, 75.0]),
            ],
        )
        .unwrap();
        loader::load_table(&mut s, "trades", &trades).unwrap();
    }
    let ep = QipcEndpoint::start(
        db,
        "127.0.0.1:0",
        EndpointConfig {
            io_model: IoModel::Multiplexed,
            net_workers: NET_WORKERS,
            max_connections: sessions + 64,
            ..EndpointConfig::default()
        },
    )
    .expect("start endpoint");
    eprintln!(
        "multiplexed endpoint at {} ({NET_WORKERS} workers, {available_cores} cores); \
         ramping {sessions} sessions in a child process...",
        ep.addr
    );

    let t0 = Instant::now();
    let mut child = std::process::Command::new(std::env::current_exe().expect("current_exe"))
        .env("BENCH_CONCURRENCY_ROLE", "client")
        .env("BENCH_CONCURRENCY_ADDR", ep.addr.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn client swarm");

    let reg = obs::global_registry();
    let mut peak_active = 0i64;
    let mut peak_busy = 0i64;
    let mut peak_threads = 0usize;
    let status = loop {
        if let Some(st) = child.try_wait().expect("wait for swarm") {
            break st;
        }
        peak_active = peak_active.max(reg.gauge("net_sessions_active").get());
        peak_busy = peak_busy.max(reg.gauge("net_worker_busy").get());
        peak_threads = peak_threads.max(current_threads());
        std::thread::sleep(Duration::from_millis(25));
    };
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(status.success(), "client swarm exited with {status}");
    let mut report = String::new();
    child.stdout.take().expect("swarm stdout").read_to_string(&mut report).expect("read report");
    let report = report.trim().to_string();

    let statements = field(&report, "statements") as u64;
    let errors = field(&report, "errors") as u64;
    let p50_ms = field(&report, "p50_ms");
    let p99_ms = field(&report, "p99_ms");
    let sessions_per_worker = sessions as f64 / NET_WORKERS as f64;
    let p99_gate_enforced = available_cores >= MIN_CORES_FOR_P99_GATE;

    println!(
        "{sessions} sessions ({peak_active} peak concurrent) × {STATEMENTS_PER_SESSION} statements \
         in {wall_s:.1}s: p50 {p50_ms:.2}ms p99 {p99_ms:.2}ms, {errors} errors"
    );
    println!(
        "server shape: {peak_threads} peak threads, {NET_WORKERS} workers \
         (peak busy {peak_busy}), {sessions_per_worker:.0} sessions/worker"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"sessions\": {sessions},\n"));
    json.push_str(&format!("  \"workers\": {NET_WORKERS},\n"));
    json.push_str(&format!("  \"sessions_per_worker\": {sessions_per_worker:.1},\n"));
    json.push_str(&format!("  \"statements\": {statements},\n"));
    json.push_str(&format!("  \"errors\": {errors},\n"));
    json.push_str(&format!("  \"p50_ms\": {p50_ms:.3},\n"));
    json.push_str(&format!("  \"p99_ms\": {p99_ms:.3},\n"));
    json.push_str(&format!("  \"wall_s\": {wall_s:.2},\n"));
    json.push_str(&format!("  \"peak_threads\": {peak_threads},\n"));
    json.push_str(&format!("  \"peak_sessions_active\": {peak_active},\n"));
    json.push_str(&format!("  \"peak_worker_busy\": {peak_busy},\n"));
    json.push_str(&format!("  \"available_cores\": {available_cores},\n"));
    json.push_str(&format!(
        "  \"thresholds\": {{\"p99_ms_max\": {P99_MS_MAX}, \"peak_threads_max\": {PEAK_THREADS_MAX}, \
         \"min_cores_for_p99_gate\": {MIN_CORES_FOR_P99_GATE}}},\n"
    ));
    json.push_str(&format!("  \"p99_gate_enforced\": {p99_gate_enforced}"));
    if !p99_gate_enforced {
        json.push_str(",\n  \"skipped_reason\": \"insufficient_cores\",\n");
        json.push_str(&format!(
            "  \"p99_gate_note\": \"hardware-skipped: {available_cores} core(s) < {MIN_CORES_FOR_P99_GATE}\"\n"
        ));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    println!("wrote BENCH_concurrency.json");

    // Structural gates: hold on any hardware, or the connection layer
    // is broken.
    if errors > 0 {
        eprintln!("acceptance: {errors} statement/connect error(s) under concurrency");
        std::process::exit(1);
    }
    if (peak_active as usize) < sessions {
        eprintln!("acceptance: peak concurrent sessions {peak_active} < {sessions} ramped");
        std::process::exit(1);
    }
    if peak_threads > PEAK_THREADS_MAX {
        eprintln!(
            "acceptance: server grew {peak_threads} threads for {sessions} sessions \
             (bar: {PEAK_THREADS_MAX}) — sessions are leaking threads"
        );
        std::process::exit(1);
    }
    // Latency gate: only meaningful with real parallelism under the
    // swarm; recorded-but-skipped elsewhere.
    if p99_gate_enforced && p99_ms > P99_MS_MAX {
        eprintln!("acceptance: p99 {p99_ms:.2}ms > {P99_MS_MAX}ms");
        std::process::exit(1);
    }
    if !p99_gate_enforced {
        eprintln!(
            "p99 gate skipped: {available_cores} core(s) available, gate needs {MIN_CORES_FOR_P99_GATE}"
        );
    }
    ep.detach();
}
