//! Emit `BENCH_columnar.json`: the columnar executor against the
//! retained row-at-a-time oracle, same statements, same data
//! (EXPERIMENTS.md, DESIGN §10).
//!
//!     cargo run --release --bin bench_columnar
//!
//! Measures, each best-of-N wall clock, over a source holding *both*
//! representations pre-built (so neither side pays a conversion tax at
//! scan time — exactly what `pgdb`'s engine stores):
//!
//! * 200k-row predicate filter (`WHERE v > c`);
//! * 100k-row / 1k-group `GROUP BY k, sum/avg`;
//! * 50k × 50k equi-join over a 10k key domain;
//! * end-to-end pivot: SELECT over 100k rows all the way to a Q table
//!   (columnar: `run_select_batch` → `pivot_batch` column hand-off;
//!   rows: `run_select_rows` → per-cell transpose pivot).
//!
//! The acceptance bar is a ≥2× columnar speedup on at least two of the
//! four shapes.

use algebrizer::ResultShape;
use hyperq::pivot::{pivot, pivot_batch};
use pgdb::exec::columnar::run_select_batch;
use pgdb::exec::{run_select_rows, TableSource};
use pgdb::sql::ast::Stmt;
use pgdb::sql::parse_statement;
use pgdb::{Batch, Cell, Column, PgType, Rows};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};

type DualTable = (Vec<Column>, Vec<Vec<Cell>>, Batch);

/// Both representations of every table, pre-built — the engine's own
/// storage is columnar and the row path transposes on scan, so handing
/// each executor its native representation isolates execution cost.
struct DualSource {
    tables: HashMap<String, DualTable>,
}

impl DualSource {
    fn new() -> Self {
        DualSource { tables: HashMap::new() }
    }

    fn put(&mut self, name: &str, columns: Vec<Column>, rows: Vec<Vec<Cell>>) {
        let batch =
            Batch::from_rows(Rows { columns: columns.clone(), data: rows.clone() });
        self.tables.insert(name.to_string(), (columns, rows, batch));
    }
}

impl TableSource for DualSource {
    fn get_table(&self, name: &str) -> Option<(Vec<Column>, Vec<Vec<Cell>>)> {
        let (columns, rows, _) = self.tables.get(name)?;
        Some((columns.clone(), rows.clone()))
    }

    fn get_table_batch(&self, name: &str) -> Option<Batch> {
        let (_, _, batch) = self.tables.get(name)?;
        Some(batch.clone())
    }
}

fn select(sql: &str) -> pgdb::sql::ast::SelectStmt {
    match parse_statement(sql).expect("bench SQL parses") {
        Stmt::Select(s) => s,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

struct Entry {
    name: &'static str,
    row_s: f64,
    columnar_s: f64,
    target_speedup: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.columnar_s > 0.0 { self.row_s / self.columnar_s } else { f64::INFINITY }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut src = DualSource::new();

    // t: 200k rows, int key + int value + symbol tag.
    let t_cols = vec![
        Column::new("k", PgType::Int8),
        Column::new("v", PgType::Int8),
        Column::new("s", PgType::Varchar),
    ];
    let t_rows: Vec<Vec<Cell>> = (0..200_000)
        .map(|_| {
            let k = rng.gen_range(0..1_000i64);
            vec![Cell::Int(k), Cell::Int(rng.gen_range(0..1_000_000)), Cell::Text(format!("s{}", k % 97))]
        })
        .collect();
    src.put("t", t_cols, t_rows);

    // l/r: 50k rows each over a 10k key domain.
    let join_cols = |v: &str| {
        vec![Column::new("k", PgType::Int8), Column::new(v, PgType::Int8)]
    };
    let join_rows = |rng: &mut StdRng, n: usize| -> Vec<Vec<Cell>> {
        (0..n)
            .map(|i| vec![Cell::Int(rng.gen_range(0..10_000i64)), Cell::Int(i as i64)])
            .collect()
    };
    let lr = join_rows(&mut rng, 50_000);
    let rr = join_rows(&mut rng, 50_000);
    src.put("l", join_cols("lv"), lr);
    src.put("r", join_cols("rv"), rr);

    let mut entries = Vec::new();
    let bench = |name: &'static str, sql: &str, target: f64, entries: &mut Vec<Entry>| {
        let stmt = select(sql);
        let columnar = best_of(5, || run_select_batch(&src, &stmt).expect(name));
        let row = best_of(3, || run_select_rows(&src, &stmt).expect(name));
        // Same answer before the same timing.
        let a = run_select_batch(&src, &stmt).unwrap();
        let b = Batch::from_rows(run_select_rows(&src, &stmt).unwrap());
        assert!(a.structurally_equal(&b), "{name}: executors disagree");
        entries.push(Entry {
            name,
            row_s: row.as_secs_f64(),
            columnar_s: columnar.as_secs_f64(),
            target_speedup: target,
        });
    };

    bench("filter_200k_int_predicate", "SELECT v FROM t WHERE v > 500000", 2.0, &mut entries);
    bench(
        "group_by_100k_1k_groups",
        "SELECT k, sum(v) AS sv, avg(v) AS av, count(*) AS n FROM t GROUP BY k",
        2.0,
        &mut entries,
    );
    bench(
        "equi_join_50k_x_50k",
        "SELECT l.k, l.lv, r.rv FROM l JOIN r ON l.k = r.k",
        1.0,
        &mut entries,
    );

    // End to end: SELECT through the executor AND the pivot into a Q
    // table — the full internal-backend result path.
    let stmt = select("SELECT k, v, s FROM t");
    let columnar = best_of(5, || {
        let batch = run_select_batch(&src, &stmt).expect("pivot select");
        pivot_batch(batch, ResultShape::Table).expect("pivot")
    });
    let row = best_of(3, || {
        let rows = run_select_rows(&src, &stmt).expect("pivot select");
        pivot(&rows, ResultShape::Table).expect("pivot")
    });
    entries.push(Entry {
        name: "end_to_end_pivot_100k_to_q_table",
        row_s: row.as_secs_f64(),
        columnar_s: columnar.as_secs_f64(),
        target_speedup: 2.0,
    });

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"row_s\": {:.6}, \"columnar_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"target_speedup\": {:.1}, \"meets_target\": {}}}{}\n"
            ),
            e.name,
            e.row_s,
            e.columnar_s,
            e.speedup(),
            e.target_speedup,
            e.speedup() >= e.target_speedup,
            if i + 1 < entries.len() { "," } else { "" },
        ));
        println!(
            "{:<36} row {:>10.3}ms   columnar {:>10.3}ms   speedup {:>8.2}x (target {:.0}x)",
            e.name,
            e.row_s * 1e3,
            e.columnar_s * 1e3,
            e.speedup(),
            e.target_speedup,
        );
    }
    let at_least_2x = entries.iter().filter(|e| e.speedup() >= 2.0).count();
    json.push_str("  ],\n");
    json.push_str(&format!("  \"shapes_at_2x_or_better\": {at_least_2x}\n}}\n"));
    std::fs::write("BENCH_columnar.json", &json).expect("write BENCH_columnar.json");
    println!("wrote BENCH_columnar.json");

    let failed: Vec<&str> = entries
        .iter()
        .filter(|e| e.speedup() < e.target_speedup)
        .map(|e| e.name)
        .collect();
    if !failed.is_empty() {
        eprintln!("targets missed: {failed:?}");
        std::process::exit(1);
    }
    if at_least_2x < 2 {
        eprintln!("acceptance: need >=2 shapes at >=2x, got {at_least_2x}");
        std::process::exit(1);
    }
}
