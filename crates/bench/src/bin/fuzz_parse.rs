//! Fuzz driver: throw random printable strings at the Q and SQL parsers
//! and flag hangs (a regression guard beyond the proptest suite).
fn main() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let chars: Vec<char> = (32u8..127).map(|c| c as char).collect();
    let n: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    for i in 0..n {
        let len = rng.gen_range(0..60);
        let s: String = (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect();
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            let _ = qlang::parse(&s2);
            let _ = pgdb::sql::parse_statement(&s2);
        });
        let t0 = std::time::Instant::now();
        while !h.is_finished() {
            if t0.elapsed().as_secs() > 3 {
                println!("HANG at iter {i}: {s:?}");
                std::process::exit(1);
            }
            std::thread::yield_now();
        }
    }
    println!("fuzzed {n} inputs: no hangs, no panics");
}
