//! Emit `BENCH_durability.json`: what durability costs on the ingest
//! path, and what recovery costs on restart (DESIGN §13).
//!
//!     cargo run --release --bin bench_durability
//!
//! Ingest: the same batched `INSERT` stream (1000-row VALUES lists)
//! through four engine configurations —
//!
//! * `baseline` — in-memory engine, durability compiled out of the path;
//! * `off` — WAL written, never fsynced (survives process death, not
//!   power loss);
//! * `group_5ms` — group commit: one fsync per 5 ms window covers every
//!   commit in it;
//! * `always` — fsync before every acknowledgement.
//!
//! Recovery: the `off` run leaves a WAL tail holding the entire ingest
//! (checkpoints disabled); reopening the engine replays it all — the
//! worst-case restart — and the wall clock is recorded.
//!
//! `BENCH_DURABILITY_ROWS` overrides the 1M default for smoke runs.

use pgdb::{Db, DurabilityOptions, FsyncPolicy};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DEFAULT_ROWS: usize = 1_000_000;
const BATCH_ROWS: usize = 1_000;

fn rows_target() -> usize {
    std::env::var("BENCH_DURABILITY_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_ROWS)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hq-bench-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Drive `rows` through batched INSERTs and return the ingest wall
/// clock (table creation excluded).
fn ingest(db: &Db, rows: usize) -> Duration {
    let mut session = db.session();
    session.execute("CREATE TABLE t (x bigint, v float8)").expect("create");
    let t0 = Instant::now();
    let mut done = 0usize;
    let mut sql = String::with_capacity(BATCH_ROWS * 16);
    while done < rows {
        let n = BATCH_ROWS.min(rows - done);
        sql.clear();
        sql.push_str("INSERT INTO t VALUES ");
        for k in 0..n {
            let id = (done + k) as i64;
            if k > 0 {
                sql.push(',');
            }
            let _ = write!(sql, "({id}, {}.25)", id % 97);
        }
        session.execute(&sql).expect("insert batch");
        done += n;
    }
    t0.elapsed()
}

struct IngestEntry {
    policy: &'static str,
    seconds: f64,
    rows_per_s: f64,
}

fn main() {
    let rows = rows_target();
    eprintln!("ingesting {rows} rows per policy...");

    let policies: [(&'static str, Option<FsyncPolicy>); 4] = [
        ("baseline", None),
        ("off", Some(FsyncPolicy::Off)),
        ("group_5ms", Some(FsyncPolicy::Group(Duration::from_millis(5)))),
        ("always", Some(FsyncPolicy::Always)),
    ];

    let mut entries = Vec::new();
    let mut recovery_dir: Option<PathBuf> = None;
    for (name, policy) in policies {
        let (db, dir) = match policy {
            None => (Db::new(), None),
            Some(fsync) => {
                let dir = fresh_dir(name);
                let opts = DurabilityOptions {
                    data_dir: dir.clone(),
                    fsync,
                    // No checkpoints: the recovery leg below wants the
                    // whole ingest as a WAL tail, the worst case.
                    checkpoint_every: 0,
                };
                (Db::open(&opts).expect("open durable engine"), Some(dir))
            }
        };
        let took = ingest(&db, rows);
        drop(db);
        let e = IngestEntry {
            policy: name,
            seconds: took.as_secs_f64(),
            rows_per_s: rows as f64 / took.as_secs_f64().max(1e-9),
        };
        println!(
            "ingest {:<10} {:>8.3}s   {:>12.0} rows/s",
            e.policy, e.seconds, e.rows_per_s
        );
        entries.push(e);
        match (name, dir) {
            ("off", Some(d)) => recovery_dir = Some(d), // kept for the recovery leg
            (_, Some(d)) => {
                let _ = std::fs::remove_dir_all(&d);
            }
            _ => {}
        }
    }

    // Recovery: reopen the engine over the full WAL tail and prove the
    // data came back before timing is trusted.
    let dir = recovery_dir.expect("off policy ran");
    let t0 = Instant::now();
    let recovered = Db::open(&DurabilityOptions {
        data_dir: dir.clone(),
        fsync: FsyncPolicy::Off,
        checkpoint_every: 0,
    })
    .expect("recovery");
    let recovery = t0.elapsed();
    let got_rows = recovered
        .get_table_snapshot("t")
        .map(|t| t.batch.rows())
        .unwrap_or(0);
    assert_eq!(got_rows, rows, "recovery lost rows");
    drop(recovered);
    println!(
        "recovery: {rows}-row WAL tail replayed in {:.3}s ({:.0} rows/s)",
        recovery.as_secs_f64(),
        rows as f64 / recovery.as_secs_f64().max(1e-9),
    );
    let _ = std::fs::remove_dir_all(&dir);

    let baseline = entries[0].rows_per_s;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"batch_rows\": {BATCH_ROWS},");
    json.push_str("  \"ingest\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"seconds\": {:.6}, \"rows_per_s\": {:.0}, \"vs_baseline\": {:.3}}}{}",
            e.policy,
            e.seconds,
            e.rows_per_s,
            e.rows_per_s / baseline.max(1e-9),
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"wal_rows\": {rows}, \"seconds\": {:.6}, \"rows_per_s\": {:.0}}}",
        recovery.as_secs_f64(),
        rows as f64 / recovery.as_secs_f64().max(1e-9),
    );
    json.push_str("}\n");
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("wrote BENCH_durability.json");
}
