//! Emit `BENCH_exec.json`: the executor hot-path speedups and the
//! translation-cache effect quoted in EXPERIMENTS.md.
//!
//!     cargo run --release --bin bench_exec
//!
//! Measures, each best-of-N wall clock:
//! * 100k-row / 50k-group GROUP BY — `group_indices` (hash) vs the
//!   retained naive per-group scan (target ≥10×);
//! * 10k × 10k EXCEPT — `except_rows` (hash) vs the naive scan
//!   (target ≥5×);
//! * 20k × 20k equi-join — `CellKey`-keyed `hash_join` vs the former
//!   per-row formatted-String keying;
//! * repeated translation of one analytical query with the translation
//!   cache off vs on.

use hyperq::SessionConfig;
use hyperq_bench::exec_data::{grouping_keys, join_inputs, row_set};
use hyperq_bench::{prepared_session, quick_spec};
use hyperq_workload::analytical::analytical_workload;
use pgdb::exec::{except_rows, group_indices, hash_join, reference};
use pgdb::sql::ast::JoinType;
use std::time::{Duration, Instant};

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

struct Entry {
    name: &'static str,
    baseline_s: f64,
    fast_s: f64,
    target_speedup: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.fast_s > 0.0 { self.baseline_s / self.fast_s } else { f64::INFINITY }
    }
}

fn main() {
    let mut entries = Vec::new();

    // 1. High-cardinality GROUP BY, 100k rows over ~50k groups.
    let keys = grouping_keys(100_000, 50_000, 7);
    let hash = best_of(3, || group_indices(keys.clone()));
    let naive = best_of(1, || reference::group_indices_naive(keys.clone()));
    entries.push(Entry {
        name: "group_by_100k_rows_50k_groups",
        baseline_s: naive.as_secs_f64(),
        fast_s: hash.as_secs_f64(),
        target_speedup: 10.0,
    });

    // 2. EXCEPT over two 10k-row sets.
    let l = row_set(10_000, 8_000, 11);
    let r = row_set(10_000, 8_000, 13);
    let hash = best_of(3, || {
        let mut lhs = l.clone();
        except_rows(&mut lhs, &r);
        lhs
    });
    let naive = best_of(1, || {
        let mut lhs = l.clone();
        reference::except_rows_naive(&mut lhs, &r);
        lhs
    });
    entries.push(Entry {
        name: "except_10k_x_10k",
        baseline_s: naive.as_secs_f64(),
        fast_s: hash.as_secs_f64(),
        target_speedup: 5.0,
    });

    // 3. Join keying: CellKey vs the formatted-String key it replaced.
    let (lf, rf, pairs) = join_inputs(20_000, 20_000, 5_000, 17);
    let cellkey = best_of(3, || {
        let mut out = Vec::new();
        hash_join(&lf, &rf, &pairs, JoinType::Inner, &mut out);
        out
    });
    let stringkey = best_of(3, || {
        let mut out = Vec::new();
        reference::hash_join_string_keyed(&lf, &rf, &pairs, JoinType::Inner, &mut out);
        out
    });
    entries.push(Entry {
        name: "join_20k_x_20k_cellkey_vs_string",
        baseline_s: stringkey.as_secs_f64(),
        fast_s: cellkey.as_secs_f64(),
        target_speedup: 1.0,
    });

    // 4. Repeated translation, cache off vs on (100 repeats each).
    let spec = quick_spec();
    let q = analytical_workload(&spec)[0].text.clone();
    let mut off = prepared_session(&spec, SessionConfig::default());
    off.translate_only(&q).unwrap();
    let t0 = Instant::now();
    for _ in 0..100 {
        std::hint::black_box(off.translate_only(&q).unwrap());
    }
    let off_t = t0.elapsed();

    let mut on = prepared_session(&spec, SessionConfig::default());
    on.set_translation_cache(256);
    on.translate_only(&q).unwrap();
    let t0 = Instant::now();
    for _ in 0..100 {
        std::hint::black_box(on.translate_only(&q).unwrap());
    }
    let on_t = t0.elapsed();
    let stats = on.translation_cache_stats();
    assert_eq!(stats.hits, 100, "all repeats must hit the cache");
    entries.push(Entry {
        name: "repeated_translation_100x_cache",
        baseline_s: off_t.as_secs_f64(),
        fast_s: on_t.as_secs_f64(),
        target_speedup: 1.0,
    });

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"baseline_s\": {:.6}, \"fast_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"target_speedup\": {:.1}, \"meets_target\": {}}}{}\n"
            ),
            e.name,
            e.baseline_s,
            e.fast_s,
            e.speedup(),
            e.target_speedup,
            e.speedup() >= e.target_speedup,
            if i + 1 < entries.len() { "," } else { "" },
        ));
        println!(
            "{:<36} baseline {:>10.3}ms   fast {:>10.3}ms   speedup {:>8.2}x (target {:.0}x)",
            e.name,
            e.baseline_s * 1e3,
            e.fast_s * 1e3,
            e.speedup(),
            e.target_speedup,
        );
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"cache_stats\": {{\"hits\": {}, \"misses\": {}}}\n}}\n",
        stats.hits, stats.misses
    ));
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("wrote BENCH_exec.json");

    // Snapshot of the observability registry alongside the timings:
    // execute the workload query once for real so the query/stage
    // metrics reflect this run, then dump Prometheus text.
    on.execute(&q).expect("workload query executes");
    std::fs::write("BENCH_metrics.prom", obs::global_registry().render_prometheus())
        .expect("write BENCH_metrics.prom");
    println!("wrote BENCH_metrics.prom");

    let failed: Vec<&str> =
        entries.iter().filter(|e| e.speedup() < e.target_speedup).map(|e| e.name).collect();
    if !failed.is_empty() {
        eprintln!("targets missed: {failed:?}");
        std::process::exit(1);
    }
}
